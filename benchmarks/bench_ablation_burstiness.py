"""Ablation: bursty vs paced frame transmission (§3.1).

The paper motivates qShort/maxBurstSize with the observation that RTC
senders burst each frame's packets out together. This ablation runs the
same trace with bursty and paced senders and reports (a) the Fortune
Teller's accuracy and (b) end-to-end tails — pacing smooths arrivals,
shrinking the transient the estimators must capture.
"""

from repro.experiments.drivers.format import format_table, ms, pct
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.stats import percentile
from repro.traces.synthetic import make_trace


def run_cases(duration=40.0, seed=1):
    trace = make_trace("W1", duration=duration, seed=seed)
    rows = []
    for paced in (False, True):
        config = ScenarioConfig(trace=trace, protocol="rtp",
                                ap_mode="zhuge", duration=duration,
                                seed=seed, record_predictions=True,
                                paced_sender=paced)
        result = run_scenario(config)
        errors = [abs(p - a) for p, a in result.prediction_pairs]
        rows.append(("paced" if paced else "bursty",
                     percentile(errors, 50) if errors else 0.0,
                     percentile(errors, 90) if errors else 0.0,
                     result.rtt.tail_ratio(),
                     result.frames.delayed_ratio()))
    return rows


def test_ablation_burstiness(once):
    rows = once(run_cases)
    table = [(name, ms(med, 2), ms(p90, 1), pct(tail), pct(delayed))
             for name, med, p90, tail, delayed in rows]
    print()
    print(format_table(
        "Ablation — bursty vs paced sender (Zhuge AP, trace W1)",
        ("sender", "median |err|", "P90 |err|", "RTT>200ms",
         "frame>400ms"),
        table))
    by_name = {r[0]: r for r in rows}
    # Both sending patterns must keep the median prediction error small
    # (the burst corrections exist precisely to absorb burstiness).
    assert by_name["bursty"][1] < 0.020
    assert by_name["paced"][1] < 0.020
