"""Ablation: Fortune Teller estimator variants (DESIGN.md §5, items 1/4/5).

Compares the full qLong+qShort+tx decomposition against the naive
``qSize/avg(txRate)`` strawman, with/without the maxBurstSize
correction, and across sliding-window lengths.
"""

from repro.experiments.drivers.ablation import estimator_ablation
from repro.experiments.drivers.format import format_table


def test_estimator_ablation(once):
    rows = once(estimator_ablation, duration=30.0, trace_name="W1")
    table = [(r.estimator, f"{r.window_ms:g}", f"{r.median_abs_error_ms:.2f}",
              f"{r.p90_abs_error_ms:.2f}", r.samples)
             for r in rows]
    print()
    print(format_table(
        "Ablation — estimator variants (abs prediction error, ms)",
        ("estimator", "window(ms)", "median", "P90", "samples"),
        table))

    by_name = {r.estimator: r for r in rows}
    full = by_name["zhuge(40ms)"]
    naive = by_name["naive(qSize/txRate)"]
    assert full.samples > 1000
    # The decomposition's win is in the typical case: the naive
    # estimator's window-lag shows up as a consistently biased median,
    # while qShort keeps Zhuge's median error to well under a frame
    # interval. (At the P90 both are dominated by deep-fade transients,
    # where the paper itself notes predictions are inaccurate but
    # directionally sufficient — Fig. 19b.)
    assert full.median_abs_error_ms < naive.median_abs_error_ms
    assert full.median_abs_error_ms < 5.0
