"""Ablation: Feedback Updater variants (DESIGN.md §5, items 2/3).

Distributional sampling vs direct per-ACK deltas, and the token bank
on/off. Without tokens, a zero-mean delta stream drifts the injected
ACK delay upward (chronic RTT overestimation).
"""

from repro.experiments.drivers.ablation import feedback_ablation
from repro.experiments.drivers.format import format_table


def test_feedback_ablation(once):
    rows = once(feedback_ablation, acks=5000)
    table = [(r.variant, f"{r.mean_injected_ms:.2f}",
              f"{r.p99_injected_ms:.2f}", f"{r.drift_ms:+.2f}")
             for r in rows]
    print()
    print(format_table(
        "Ablation — feedback updater variants (injected ACK delay, ms)",
        ("variant", "mean", "P99", "drift"),
        table))

    by_name = {r.variant: r for r in rows}
    with_tokens = by_name["distributional+tokens"]
    without_tokens = by_name["distributional,no-tokens"]
    # Tokens keep the injected delay bounded; without them it drifts.
    assert with_tokens.mean_injected_ms < without_tokens.mean_injected_ms
    assert abs(with_tokens.drift_ms) < without_tokens.drift_ms + 1.0
