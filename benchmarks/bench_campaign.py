"""Campaign runner: pooled sweep timing + bit-identity + cache hits.

Times a small Fig. 11-style (scheme x seed) sweep through the process
pool, then asserts the two properties the campaign subsystem promises:
the pooled summaries are bit-identical to in-process execution, and a
warm re-run is served entirely from the content-addressed cache.
"""

from repro.campaign import ResultCache, execute_spec, run_campaign, run_specs
from repro.experiments.drivers.format import format_table
from repro.experiments.drivers.traces_eval import (SCHEMES_BY_NAME,
                                                   scheme_specs)


def _sweep_specs():
    specs = []
    for scheme in ("Gcc+FIFO", "Gcc+Zhuge"):
        specs.extend(scheme_specs("W2", SCHEMES_BY_NAME[scheme],
                                  duration=20.0, seeds=(1, 2)))
    return specs


def test_campaign_pool_and_cache(once, tmp_path):
    specs = _sweep_specs()
    cache = ResultCache(root=tmp_path)

    serial = [execute_spec(spec).as_dict() for spec in specs]
    pooled = once(run_specs, specs, jobs=2, cache=cache)
    assert [s.as_dict() for s in pooled] == serial

    warm = run_campaign(specs, jobs=2, cache=cache)
    assert warm.cached == len(specs)
    assert [c.summary.as_dict() for c in warm.cells] == serial

    print()
    print(format_table(
        f"campaign — {len(specs)} cells (W2, 20 s, 2 schemes x 2 seeds)",
        ("mode", "wall", "cached"),
        [("pool jobs=2", "benchmark timer", "0"),
         ("warm re-run", f"{warm.wall_s * 1e3:.0f} ms",
          f"{warm.cached}/{len(specs)}")]))
