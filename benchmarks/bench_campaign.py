"""Campaign runner: pooled sweep timing + bit-identity + cache hits.

Times a small Fig. 11-style (scheme x seed) sweep through the process
pool, then asserts the two properties the campaign subsystem promises:
the pooled summaries are bit-identical to in-process execution, and a
warm re-run is served entirely from the content-addressed cache.

``test_campaign_journal_overhead`` guards the crash-safety tax: the
same sweep with the JSONL journal + checkpoint cadence enabled must
cost <= 3% extra wall time over the bare run (min of interleaved
rounds, so a noisy neighbour inflating one round cannot fake a
regression in either direction).  Full runs append the measurement to
``BENCH_hotpath.json``; ``REPRO_BENCH_SMOKE=1`` keeps a loose
structural bound only — on tiny smoke cells the per-cell fsync is not
amortized and a 3% bound would be pure noise.
"""

import os
import time
from pathlib import Path

from repro.campaign import ResultCache, execute_spec, run_campaign, run_specs
from repro.experiments.drivers.format import format_table
from repro.experiments.drivers.hotpath import write_results
from repro.experiments.drivers.traces_eval import (SCHEMES_BY_NAME,
                                                   scheme_specs)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
#: Acceptance bound: journal + checkpoint may cost at most 3% wall time.
MAX_OVERHEAD = 0.03


def _sweep_specs(duration=20.0, seeds=(1, 2)):
    specs = []
    for scheme in ("Gcc+FIFO", "Gcc+Zhuge"):
        specs.extend(scheme_specs("W2", SCHEMES_BY_NAME[scheme],
                                  duration=duration, seeds=seeds))
    return specs


def test_campaign_pool_and_cache(once, tmp_path):
    specs = _sweep_specs()
    cache = ResultCache(root=tmp_path)

    serial = [execute_spec(spec).as_dict() for spec in specs]
    pooled = once(run_specs, specs, jobs=2, cache=cache)
    assert [s.as_dict() for s in pooled] == serial

    warm = run_campaign(specs, jobs=2, cache=cache)
    assert warm.cached == len(specs)
    assert [c.summary.as_dict() for c in warm.cells] == serial

    print()
    print(format_table(
        f"campaign — {len(specs)} cells (W2, 20 s, 2 schemes x 2 seeds)",
        ("mode", "wall", "cached"),
        [("pool jobs=2", "benchmark timer", "0"),
         ("warm re-run", f"{warm.wall_s * 1e3:.0f} ms",
          f"{warm.cached}/{len(specs)}")]))


def _journaled_wall(specs, cache_root, journal_path=None):
    """Wall time of one cold serial campaign (fresh cache root each
    call — the CLI default config); the journaled variant mirrors the
    city driver's use: per-cell record + checkpoint cadence."""
    folded = []
    kwargs = {}
    if journal_path is not None:
        if journal_path.exists():
            journal_path.unlink()
        kwargs = dict(journal=journal_path,
                      checkpoint_state=lambda: {"folded": list(folded)},
                      checkpoint_every=2)
    start = time.perf_counter()
    result = run_campaign(specs, cache=ResultCache(root=cache_root),
                          consume=lambda c: folded.append(c.index),
                          **kwargs)
    wall = time.perf_counter() - start
    assert result.failed == 0
    return wall


def test_campaign_journal_overhead(tmp_path):
    if SMOKE:
        specs, rounds, bound = _sweep_specs(duration=6.0, seeds=(1,)), 2, 0.5
    else:
        specs, rounds, bound = _sweep_specs(), 3, MAX_OVERHEAD

    # Interleave the two configurations so a load spike hits both; the
    # min over rounds is the least-perturbed sample of each.
    bare, journaled = [], []
    for round_index in range(rounds):
        bare.append(_journaled_wall(
            specs, tmp_path / f"cache-bare-{round_index}"))
        journaled.append(_journaled_wall(
            specs, tmp_path / f"cache-journal-{round_index}",
            tmp_path / "bench.journal"))
    bare_s, journaled_s = min(bare), min(journaled)
    overhead = journaled_s / bare_s - 1.0

    print()
    print(format_table(
        f"campaign journal overhead — {len(specs)} cells, "
        f"min of {rounds} interleaved rounds",
        ("mode", "wall", "overhead"),
        [("bare", f"{bare_s * 1e3:.0f} ms", "—"),
         ("journal + checkpoint", f"{journaled_s * 1e3:.0f} ms",
          f"{overhead * 100:+.2f}%")]))

    if not SMOKE:
        write_results(RESULTS_PATH, {
            "note": "campaign journal+checkpoint overhead "
                    "(min of interleaved rounds)",
            "campaign_journal": {
                "cells": len(specs),
                "rounds": rounds,
                "checkpoint_every": 2,
                "bare_s": bare_s,
                "journaled_s": journaled_s,
                "overhead_pct": overhead * 100,
            }})
    assert overhead <= bound, (
        f"journal overhead {overhead * 100:.2f}% exceeds "
        f"{bound * 100:.0f}% bound ({journaled_s:.3f}s vs {bare_s:.3f}s)")
