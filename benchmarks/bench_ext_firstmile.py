"""Extension bench: first-mile Zhuge (§6 discussion).

Not a paper figure — the paper only argues the mechanism transfers to
the client side. We verify: with the uplink wireless as the bottleneck,
the client-local fortune loop (zero network traversal) reacts to uplink
collapses at least as fast as waiting for server feedback, without
giving up steady-state bitrate.
"""

from repro.experiments.drivers.format import format_table, mbps, pct, seconds
from repro.experiments.firstmile import FirstMileConfig, run_first_mile
from repro.traces.synthetic import drop_trace, make_trace


def run_cases():
    rows = []
    # Trace-driven uplink.
    trace = make_trace("W1", duration=40, seed=2)
    for zhuge in (False, True):
        result = run_first_mile(FirstMileConfig(trace=trace, duration=40,
                                                client_zhuge=zhuge))
        rows.append(("W1 uplink", "client-zhuge" if zhuge else "baseline",
                     result.rtt.tail_ratio(), result.frames.delayed_ratio(),
                     result.mean_bitrate_bps, None))
    # Single uplink collapse.
    collapse = drop_trace(20e6, k=10, drop_at=12.0, duration=27.0)
    for zhuge in (False, True):
        result = run_first_mile(FirstMileConfig(trace=collapse, duration=27,
                                                warmup=2.0, max_bps=8e6,
                                                client_zhuge=zhuge))
        rows.append(("10x collapse", "client-zhuge" if zhuge else "baseline",
                     result.rtt.tail_ratio(), result.frames.delayed_ratio(),
                     result.mean_bitrate_bps,
                     result.rtt.degradation_duration(0.2, start=12.0)))
    return rows


def test_ext_firstmile(once):
    rows = once(run_cases)
    table = [(scenario, scheme, pct(tail), pct(delayed), mbps(rate),
              seconds(dur) if dur is not None else "-")
             for scenario, scheme, tail, delayed, rate, dur in rows]
    print()
    print(format_table(
        "Extension — first-mile (uplink) Zhuge",
        ("scenario", "scheme", "RTT>200ms", "frame>400ms", "bitrate",
         "drop degr."),
        table))

    by_key = {(r[0], r[1]): r for r in rows}
    base = by_key[("10x collapse", "baseline")]
    zhuge = by_key[("10x collapse", "client-zhuge")]
    assert zhuge[5] <= base[5] + 0.25       # reacts at least as fast
    w1_base = by_key[("W1 uplink", "baseline")]
    w1_zhuge = by_key[("W1 uplink", "client-zhuge")]
    assert w1_zhuge[4] >= 0.5 * w1_base[4]  # bitrate kept
    assert w1_zhuge[2] <= w1_base[2] + 0.02
