"""Extension bench: Zhuge over encrypted QUIC (§6 scalability).

Not a paper figure — the paper argues Zhuge keeps working when the
transport encrypts everything, because the out-of-band updater reads
only five-tuples and manipulates ACK timing. We run video-over-QUIC
(sealed headers) through plain and Zhuge APs and check parity-or-better
tails with frames intact.
"""

from repro.experiments.drivers.format import format_table, mbps, pct
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.traces.synthetic import make_trace


def run_cases(duration=40.0):
    rows = []
    for trace_name, seed in (("W1", 2), ("C2", 3)):
        trace = make_trace(trace_name, duration=duration, seed=seed)
        for mode in ("none", "zhuge"):
            result = run_scenario(ScenarioConfig(
                trace=trace, protocol="quic", cca="copa", ap_mode=mode,
                duration=duration, seed=seed))
            rows.append((trace_name, mode, result.rtt.tail_ratio(),
                         result.frames.delayed_ratio(),
                         result.frames.count,
                         result.flows[0].goodput_bps))
    return rows


def test_ext_quic(once):
    rows = once(run_cases)
    table = [(trace, mode, pct(tail), pct(delayed), frames, mbps(goodput))
             for trace, mode, tail, delayed, frames, goodput in rows]
    print()
    print(format_table(
        "Extension — Zhuge over encrypted QUIC",
        ("trace", "AP", "RTT>200ms", "frame>400ms", "frames", "goodput"),
        table))

    by_key = {(r[0], r[1]): r for r in rows}
    for trace in ("W1", "C2"):
        base = by_key[(trace, "none")]
        zhuge = by_key[(trace, "zhuge")]
        assert zhuge[2] <= base[2] + 0.02, trace     # tail parity or better
        assert zhuge[4] >= base[4] * 0.8, trace      # frames keep flowing
        assert zhuge[5] >= base[5] * 0.7, trace      # goodput kept
