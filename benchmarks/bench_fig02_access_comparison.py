"""Fig. 2: RTT / frame delay tails by access network type.

Paper: wireless users see median RTT comparable to Ethernet but a ~4x
heavier P99, ~2x more delayed frames, and far more low-frame-rate
seconds. We regenerate the same comparison over synthetic Ethernet /
WiFi / 4G access channels.
"""

from repro.experiments.drivers.access import fig2_access_comparison
from repro.experiments.drivers.format import format_table, ms, pct


def test_fig2_access_comparison(once):
    rows = once(fig2_access_comparison, duration=45.0, seeds=(1, 2))
    table = [(r.access, ms(r.median_rtt), ms(r.p99_rtt),
              pct(r.delayed_frame_ratio), pct(r.low_fps_ratio))
             for r in rows]
    print()
    print(format_table(
        "Fig. 2 — access-network comparison (RTC flow)",
        ("access", "median RTT", "P99 RTT", "frames>400ms", "fps<10"),
        table))

    by_access = {r.access: r for r in rows}
    eth, wifi, cell = by_access["Ethernet"], by_access["WiFi"], by_access["4G"]
    # Medians comparable (within 2x)...
    assert wifi.median_rtt < eth.median_rtt * 2.5
    # ...but the wireless tail is much heavier.
    assert wifi.p99_rtt > eth.p99_rtt * 1.5
    assert cell.p99_rtt > eth.p99_rtt * 1.5
    assert (wifi.delayed_frame_ratio >= eth.delayed_frame_ratio)
