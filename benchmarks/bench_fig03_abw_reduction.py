"""Fig. 3b: distribution of available-bandwidth reduction ratios.

Paper: for all wireless traces, 0.6-7.3% of 200 ms windows show a >=10x
ABW reduction; wired access shows <0.1%.
"""

from repro.experiments.drivers.format import format_table, pct
from repro.traces import ethernet_trace, make_trace, reduction_tail_fraction
from repro.traces.synthetic import TRACE_NAMES


def compute_rows(duration=1200.0, seed=3):
    rows = []
    for name in TRACE_NAMES:
        trace = make_trace(name, duration=duration, seed=seed)
        rows.append((name,
                     pct(reduction_tail_fraction(trace, 2.0)),
                     pct(reduction_tail_fraction(trace, 5.0)),
                     pct(reduction_tail_fraction(trace, 10.0)),
                     reduction_tail_fraction(trace, 10.0)))
    eth = ethernet_trace(duration=duration, seed=seed)
    rows.append(("eth",
                 pct(reduction_tail_fraction(eth, 2.0)),
                 pct(reduction_tail_fraction(eth, 5.0)),
                 pct(reduction_tail_fraction(eth, 10.0)),
                 reduction_tail_fraction(eth, 10.0)))
    return rows


def test_fig3b_abw_reduction(once):
    rows = once(compute_rows)
    print()
    print(format_table(
        "Fig. 3b — ABW reduction ratio tails (200 ms windows)",
        ("trace", "P(>=2x)", "P(>=5x)", "P(>=10x)"),
        [r[:4] for r in rows]))
    wireless = [r for r in rows if r[0] != "eth"]
    for name, _, _, _, fraction in wireless:
        assert 0.002 <= fraction <= 0.073, (name, fraction)
    eth_fraction = rows[-1][4]
    assert eth_fraction < 0.001
