"""Fig. 4: convergence duration after a k-fold bandwidth drop.

Paper: CUBIC/BBR/Copa/GCC, with FIFO or CoDel, all suffer seconds of
RTT degradation once the drop factor reaches ~10x — the inflated
control loop is CCA-independent. CoDel barely helps the delay-based
CCAs (Copa, GCC).
"""

from repro.experiments.drivers.convergence import fig4_cca_convergence
from repro.experiments.drivers.format import format_table, seconds


def test_fig4_cca_convergence(once):
    rows = once(fig4_cca_convergence, ks=(2, 10, 50))
    table = [(r.scheme, f"{r.k:g}x", seconds(r.rtt_degradation_s),
              seconds(r.rate_reconvergence_s))
             for r in rows]
    print()
    print(format_table(
        "Fig. 4 — convergence duration after bandwidth drop",
        ("scheme", "k", "RTT>200ms dur", "re-convergence"),
        table))

    def duration(scheme, k):
        return next(r.rtt_degradation_s for r in rows
                    if r.scheme == scheme and r.k == k)

    # Deep drops hurt the buffer-sensitive CCAs for seconds (the
    # paper's core claim); Copa's tiny standing queue keeps its RTT
    # lower, but every CCA degrades more at 50x than at 2x.
    for cca in ("Cubic", "Bbr", "Gcc"):
        for queue in ("FIFO", "CoDel"):
            assert duration(f"{cca}+{queue}", 50) >= 1.0, (cca, queue)
    # Aggregate monotonicity: deep drops hurt more than mild ones
    # (individual schemes can be noisy — BBR's probe cycles can trip the
    # threshold even at k=2 when CoDel drops its probes).
    schemes = {r.scheme for r in rows}
    assert (sum(duration(s, 2) for s in schemes)
            <= sum(duration(s, 50) for s in schemes))
    # CoDel does not rescue the delay-based CCAs (§2.2): its benefit on
    # GCC is at best partial.
    assert duration("Gcc+CoDel", 50) >= 1.0
