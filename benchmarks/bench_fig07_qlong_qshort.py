"""Fig. 7: qLong and qShort response to an ABW drop at t=5 ms.

Paper: right after the drop, qShort dominates the rise of the predicted
delay (the queue and the windowed txRate need time to react); once the
queue has built, qLong takes over and gives a stable estimate.
"""

from repro.experiments.drivers.accuracy import fig7_qlong_qshort
from repro.experiments.drivers.format import format_table


def test_fig7_qlong_qshort(once):
    points = once(fig7_qlong_qshort, drop_at_ms=5.0, duration_ms=30.0)
    table = [(f"{p.time_ms:.1f}", f"{p.q_long_ms:.2f}", f"{p.q_short_ms:.2f}",
              f"{p.tx_rate_mbps:.1f}", f"{p.queue_kb:.1f}")
             for p in points[::4]]
    print()
    print(format_table(
        "Fig. 7 — estimator response to ABW drop at 5 ms",
        ("t (ms)", "qLong (ms)", "qShort (ms)", "txRate (Mbps)", "queue (kB)"),
        table))

    early = [p for p in points if 7.0 <= p.time_ms <= 13.0]
    late = [p for p in points if 22.0 <= p.time_ms <= 30.0]
    assert early and late
    # Early after the drop, qShort carries the signal...
    assert max(p.q_short_ms for p in early) > 2.0
    mean_early_short = sum(p.q_short_ms for p in early) / len(early)
    mean_early_long = sum(p.q_long_ms for p in early) / len(early)
    assert mean_early_short > mean_early_long
    # ...while later the built-up queue makes qLong dominate.
    mean_late_long = sum(p.q_long_ms for p in late) / len(late)
    assert mean_late_long > mean_early_long
    assert mean_late_long > 5.0
