"""Fig. 11: trace-driven evaluation over RTP/RTCP.

Paper: Gcc+Zhuge reduces the long-RTT ratio by 45-75% against the best
baseline and the delayed-frame ratio by 38-92%, across all five traces.
We assert the aggregate shape: Zhuge's tail metrics beat the best
baseline on average and never lose badly on any single trace.
"""

from repro.experiments.drivers.format import format_table, mbps, pct
from repro.experiments.drivers.traces_eval import fig11_rtp_traces


def test_fig11_rtp_traces(once):
    rows = once(fig11_rtp_traces, duration=60.0, seeds=(1, 2))
    table = [(r.trace, r.scheme, pct(r.rtt_tail_ratio),
              pct(r.delayed_frame_ratio), pct(r.low_fps_ratio),
              mbps(r.mean_bitrate_bps))
             for r in rows]
    print()
    print(format_table(
        "Fig. 11 — RTP/RTCP trace-driven evaluation",
        ("trace", "scheme", "RTT>200ms", "frame>400ms", "fps<10",
         "bitrate"),
        table))

    def metric(trace, scheme, attr):
        return next(getattr(r, attr) for r in rows
                    if r.trace == trace and r.scheme == scheme)

    traces = sorted({r.trace for r in rows})
    zhuge_rtt, best_base_rtt = [], []
    zhuge_fd, best_base_fd = [], []
    for trace in traces:
        zhuge_rtt.append(metric(trace, "Gcc+Zhuge", "rtt_tail_ratio"))
        best_base_rtt.append(min(
            metric(trace, "Gcc+FIFO", "rtt_tail_ratio"),
            metric(trace, "Gcc+CoDel", "rtt_tail_ratio")))
        zhuge_fd.append(metric(trace, "Gcc+Zhuge", "delayed_frame_ratio"))
        best_base_fd.append(min(
            metric(trace, "Gcc+FIFO", "delayed_frame_ratio"),
            metric(trace, "Gcc+CoDel", "delayed_frame_ratio")))

    # Aggregate: Zhuge cuts the mean tail ratios against the best baseline.
    assert sum(zhuge_rtt) < sum(best_base_rtt), (zhuge_rtt, best_base_rtt)
    # Per trace: never catastrophically worse.
    for z, b, trace in zip(zhuge_rtt, best_base_rtt, traces):
        assert z <= b + 0.02, (trace, z, b)
