"""Fig. 12: trace-driven evaluation over TCP.

Paper: Copa+Zhuge beats Copa and Copa+FastAck on tail latency across
traces and is comparable to ABC (which needs modified end hosts).
"""

from repro.experiments.drivers.format import format_table, mbps, pct
from repro.experiments.drivers.traces_eval import fig12_tcp_traces


def test_fig12_tcp_traces(once):
    rows = once(fig12_tcp_traces, duration=60.0, seeds=(1, 2))
    table = [(r.trace, r.scheme, pct(r.rtt_tail_ratio),
              pct(r.delayed_frame_ratio), pct(r.low_fps_ratio),
              mbps(r.mean_bitrate_bps))
             for r in rows]
    print()
    print(format_table(
        "Fig. 12 — TCP trace-driven evaluation",
        ("trace", "scheme", "RTT>200ms", "frame>400ms", "fps<10",
         "bitrate"),
        table))

    def metric(trace, scheme, attr="rtt_tail_ratio"):
        return next(getattr(r, attr) for r in rows
                    if r.trace == trace and r.scheme == scheme)

    traces = sorted({r.trace for r in rows})
    zhuge = [metric(t, "Copa+Zhuge") for t in traces]
    plain = [metric(t, "Copa") for t in traces]
    fastack = [metric(t, "Copa+FastAck") for t in traces]

    # Zhuge as good as or better than the pure AP-based alternatives in
    # aggregate.
    assert sum(zhuge) <= sum(plain) + 0.01
    assert sum(zhuge) <= sum(fastack) + 0.01
    # And never catastrophically worse on a single trace.
    for z, p, t in zip(zhuge, plain, traces):
        assert z <= p + 0.02, (t, z, p)
