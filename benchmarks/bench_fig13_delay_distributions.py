"""Fig. 13: tail distributions (1-CDF) of RTT, frame delay, frame rate.

Paper (trace W1): Zhuge reduces the P99 RTT from ~400 ms to ~170 ms and
shrinks the delayed-frame tail at every percentile.
"""

from repro.experiments.drivers.format import format_table, ms
from repro.experiments.drivers.traces_eval import fig13_distributions


def _tail_at(curve, probability):
    """Smallest value whose CCDF is below ``probability``."""
    for value, p in curve:
        if p <= probability:
            return value
    return curve[-1][0] if curve else float("nan")


def test_fig13_delay_distributions(once):
    curves = once(fig13_distributions, trace_name="W1", duration=60.0,
                  seeds=(1, 2))
    table = []
    for scheme, data in curves.items():
        table.append((scheme,
                      ms(_tail_at(data["rtt_ccdf"], 0.01)),
                      ms(_tail_at(data["rtt_ccdf"], 0.001)),
                      ms(_tail_at(data["frame_delay_ccdf"], 0.01))))
    print()
    print(format_table(
        "Fig. 13 — tail percentiles on trace W1",
        ("scheme", "P99 RTT", "P99.9 RTT", "P99 frame delay"),
        table))

    p99_zhuge = _tail_at(curves["Gcc+Zhuge"]["rtt_ccdf"], 0.01)
    p99_fifo = _tail_at(curves["Gcc+FIFO"]["rtt_ccdf"], 0.01)
    assert p99_zhuge <= p99_fifo * 1.05
    fd99_zhuge = _tail_at(curves["Gcc+Zhuge"]["frame_delay_ccdf"], 0.01)
    fd99_fifo = _tail_at(curves["Gcc+FIFO"]["frame_delay_ccdf"], 0.01)
    assert fd99_zhuge <= fd99_fifo * 1.2
