"""Fig. 14: RTP schemes under a k-fold bandwidth drop.

Paper: Gcc+Zhuge cuts the degradation durations (RTT > 200 ms, frame
delay > 400 ms, frame rate < 10 fps) by at least 50% across a wide k
range against Gcc+FIFO / Gcc+CoDel.
"""

from repro.experiments.drivers.convergence import fig14_rtp_drop
from repro.experiments.drivers.format import format_table, seconds


def test_fig14_rtp_abw_drop(once):
    rows = once(fig14_rtp_drop, ks=(2, 10, 20, 50))
    table = [(r.scheme, f"{r.k:g}x", seconds(r.rtt_degradation_s),
              seconds(r.frame_delay_degradation_s),
              seconds(r.low_fps_duration_s))
             for r in rows]
    print()
    print(format_table(
        "Fig. 14 — RTP under ABW drop (degradation durations)",
        ("scheme", "k", "RTT>200ms", "frame>400ms", "fps<10"),
        table))

    def dur(scheme, k, attr="rtt_degradation_s"):
        return next(getattr(r, attr) for r in rows
                    if r.scheme == scheme and r.k == k)

    # Aggregate over the congesting drops: Zhuge's total degradation is
    # below the best baseline's.
    congesting = (20, 50)
    zhuge = sum(dur("Gcc+Zhuge", k) for k in congesting)
    fifo = sum(dur("Gcc+FIFO", k) for k in congesting)
    codel = sum(dur("Gcc+CoDel", k) for k in congesting)
    assert zhuge <= min(fifo, codel) + 0.5, (zhuge, fifo, codel)

    zhuge_fd = sum(dur("Gcc+Zhuge", k, "frame_delay_degradation_s")
                   for k in congesting)
    fifo_fd = sum(dur("Gcc+FIFO", k, "frame_delay_degradation_s")
                  for k in congesting)
    assert zhuge_fd <= fifo_fd + 0.5

    # Mild drops (capacity still above the video rate) degrade nobody.
    assert dur("Gcc+Zhuge", 2) < 1.0
    assert dur("Gcc+FIFO", 2) < 1.0
