"""Fig. 15: TCP schemes under a k-fold bandwidth drop.

Paper: Copa+Zhuge cuts the high-RTT duration by 14-64% for k < 30; at
k >= 30 the degradation is bounded by TCP's RTO, so the advantage
shrinks. ABC (host-router co-design) can win at extreme k.
"""

from repro.experiments.drivers.convergence import fig15_tcp_drop
from repro.experiments.drivers.format import format_table, seconds


def test_fig15_tcp_abw_drop(once):
    rows = once(fig15_tcp_drop, ks=(2, 10, 20, 50))
    table = [(r.scheme, f"{r.k:g}x", seconds(r.rtt_degradation_s),
              seconds(r.frame_delay_degradation_s),
              seconds(r.low_fps_duration_s))
             for r in rows]
    print()
    print(format_table(
        "Fig. 15 — TCP under ABW drop (degradation durations)",
        ("scheme", "k", "RTT>200ms", "frame>400ms", "fps<10"),
        table))

    def dur(scheme, k, attr="rtt_degradation_s"):
        return next(getattr(r, attr) for r in rows
                    if r.scheme == scheme and r.k == k)

    congesting = (20, 50)
    zhuge = sum(dur("Copa+Zhuge", k) for k in congesting)
    plain = sum(dur("Copa", k) for k in congesting)
    fastack = sum(dur("Copa+FastAck", k) for k in congesting)
    # Zhuge no worse than the pure AP-based alternatives in aggregate.
    assert zhuge <= plain + 1.0, (zhuge, plain)
    assert zhuge <= fastack + 1.0, (zhuge, fastack)
    # Mild drops degrade nobody.
    for scheme in ("Copa", "Copa+Zhuge"):
        assert dur(scheme, 2) < 1.0, scheme
