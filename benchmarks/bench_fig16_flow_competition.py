"""Fig. 16: RTC flow competing with CUBIC bulk flows at the same AP.

Paper: Zhuge reduces degradation durations by up to 40% under
competition; degradation grows with the number of competitors.
"""

from repro.experiments.drivers.competition import fig16_flow_competition
from repro.experiments.drivers.format import format_table, seconds


def test_fig16_flow_competition(once):
    rows = once(fig16_flow_competition, flow_counts=(0, 2, 5, 10),
                duration=40.0)
    table = [(r.scheme, r.flows, seconds(r.rtt_degradation_s),
              seconds(r.frame_delay_degradation_s),
              seconds(r.low_fps_duration_s))
             for r in rows]
    print()
    print(format_table(
        "Fig. 16 — degradation under CUBIC flow competition",
        ("scheme", "flows", "RTT>200ms", "frame>400ms", "fps<10"),
        table))

    def dur(scheme, flows, attr="rtt_degradation_s"):
        return next(getattr(r, attr) for r in rows
                    if r.scheme == scheme and r.flows == flows)

    # Competition destroys the shared-FIFO baseline's RTT...
    assert dur("Gcc+FIFO", 10) > dur("Gcc+FIFO", 0)
    # ...while Zhuge (on the flow-isolating default discipline, §4.1)
    # keeps the RTC flow's RTT degradation over an order of magnitude
    # lower than FIFO's.
    for n in (5, 10):
        assert dur("Gcc+Zhuge", n) < dur("Gcc+FIFO", n) / 5, n
    # Total degradation (RTT + frame delay + low-fps) with Zhuge stays
    # far below FIFO's in aggregate. (Our shared-queue CoDel posts zeros
    # here — stronger than the paper's CoDel; recorded in
    # EXPERIMENTS.md — so the FIFO margin is the asserted claim.)
    def total(scheme):
        return sum(dur(scheme, n, a)
                   for n in (2, 5, 10)
                   for a in ("rtt_degradation_s",
                             "frame_delay_degradation_s",
                             "low_fps_duration_s"))

    assert total("Gcc+Zhuge") < total("Gcc+FIFO") / 5
