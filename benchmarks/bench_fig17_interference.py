"""Fig. 17: RTC flow under co-channel interference from other APs.

Paper: with 5-40 interferers, Zhuge cuts the *frequency* of network and
application degradation by at least 50%; contention is continuous, so
ratios (not per-event durations) are reported.

Since the :mod:`repro.topology` layer the driver runs a genuine two-AP
graph (bulk stations on AP-B contend for AP-A's airtime through a
shared channel group); see ``interference_topology``.
"""

from repro.experiments.drivers.competition import fig17_interference
from repro.experiments.drivers.format import format_table, pct


def test_fig17_interference(once):
    rows = once(fig17_interference, interferer_counts=(0, 10, 30),
                duration=40.0)
    table = [(r.scheme, r.interferers, pct(r.rtt_tail_ratio),
              pct(r.delayed_frame_ratio), pct(r.low_fps_ratio))
             for r in rows]
    print()
    print(format_table(
        "Fig. 17 — degradation frequency under interference",
        ("scheme", "interferers", "RTT>200ms", "frame>400ms", "fps<10"),
        table))

    def ratio(scheme, count):
        return next(r.rtt_tail_ratio for r in rows
                    if r.scheme == scheme and r.interferers == count)

    # Zhuge's aggregate tail ratio across contended settings does not
    # exceed the best baseline's.
    zhuge = sum(ratio("Gcc+Zhuge", n) for n in (10, 30))
    best = min(sum(ratio("Gcc+FIFO", n) for n in (10, 30)),
               sum(ratio("Gcc+CoDel", n) for n in (10, 30)))
    assert zhuge <= best + 0.02, (zhuge, best)
