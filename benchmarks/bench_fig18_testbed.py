"""Fig. 18: testbed scenarios (scp / mcs / raw).

Paper: against Gcc+FIFO and Gcc+CoDel, Zhuge improves the network-RTT
tail by 17-95% and frame delay by 9-67% in all three scenarios while
keeping the average bitrate (Fig. 18c).
"""

from repro.experiments.drivers.format import format_table, mbps, pct
from repro.experiments.drivers.testbed import fig18_testbed


def test_fig18_testbed(once):
    rows = once(fig18_testbed, duration=60.0, seeds=(1, 2))
    table = [(r.scenario, r.scheme, pct(r.rtt_tail_ratio),
              pct(r.delayed_frame_ratio), mbps(r.mean_bitrate_bps))
             for r in rows]
    print()
    print(format_table(
        "Fig. 18 — testbed scenarios",
        ("scenario", "scheme", "RTT>200ms", "frame>400ms", "bitrate"),
        table))

    def get(scenario, scheme):
        return next(r for r in rows
                    if r.scenario == scenario and r.scheme == scheme)

    for scenario in ("scp", "mcs", "raw"):
        zhuge = get(scenario, "Gcc+Zhuge")
        fifo = get(scenario, "Gcc+FIFO")
        codel = get(scenario, "Gcc+CoDel")
        best_tail = min(fifo.rtt_tail_ratio, codel.rtt_tail_ratio)
        # Tail improvement (or parity when the baseline tail is ~0).
        assert zhuge.rtt_tail_ratio <= best_tail + 0.01, scenario
        # Fig. 18c: the steady-state bitrate is not sacrificed.
        assert zhuge.mean_bitrate_bps >= 0.6 * fifo.mean_bitrate_bps, scenario
