"""Fig. 19: Fortune Teller prediction accuracy.

Paper: prediction error is well below the 50 ms experiment RTT in most
cases; low predictions (1-64 ms) are accurate, and when the prediction
is high (>64 ms) the real delay is also high — high enough to trigger
the sender anyway.
"""

from repro.experiments.drivers.accuracy import (_BINS,
                                                fig19_prediction_accuracy)
from repro.experiments.drivers.format import format_table, ms


def test_fig19_prediction_accuracy(once):
    results = once(fig19_prediction_accuracy, traces=("W1", "W2", "C1"),
                   duration=40.0)
    table = [(r.trace, r.pairs, ms(r.median_error, 1), ms(r.p90_error, 1))
             for r in results]
    print()
    print(format_table(
        "Fig. 19a — prediction error by trace",
        ("trace", "packets", "median |err|", "P90 |err|"),
        table))

    # Heatmap for the first trace (Fig. 19b).
    heat = results[0].heatmap
    bins = len(_BINS)
    header = ["pred\\real"] + [ms(edge) for edge in _BINS]
    lines = []
    for pred_bin in range(bins):
        row_total = sum(heat.get((pred_bin, rb), 0) for rb in range(bins))
        cells = []
        for real_bin in range(bins):
            count = heat.get((pred_bin, real_bin), 0)
            cells.append(f"{count / row_total:.2f}" if row_total else "-")
        lines.append([ms(_BINS[pred_bin])] + cells)
    print()
    print(format_table("Fig. 19b — predicted vs real delay "
                       f"(rows normalized), trace {results[0].trace}",
                       header, lines))

    for result in results:
        assert result.pairs > 500
        # Median error well under the 50 ms experiment RTT.
        assert result.median_error < 0.050, result.trace

    # Diagonal dominance: when the prediction is low (<=16 ms), the
    # real delay is usually low too.
    low_bins = (0, 1, 2)
    low_total = sum(v for (p, r), v in heat.items() if p in low_bins)
    low_diag = sum(v for (p, r), v in heat.items()
                   if p in low_bins and r <= 3)
    assert low_total == 0 or low_diag / low_total > 0.8
