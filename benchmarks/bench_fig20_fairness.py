"""Fig. 20: internal and external fairness of Zhuge.

Paper: (a) two plain flows, (b) one optimized + one plain, (c) both
optimized — bitrate differences stay tiny (<3% between the two flows in
bar b), for both GCC/RTP and Copa/TCP.
"""

from repro.experiments.drivers.fairness import fig20_fairness
from repro.experiments.drivers.format import format_table, mbps, pct


def test_fig20_fairness(once):
    rows = once(fig20_fairness, duration=60.0)
    table = [(r.protocol, r.bar, mbps(r.flow_goodputs_bps[0]),
              mbps(r.flow_goodputs_bps[1]), f"{r.jain_index:.3f}",
              pct(r.bitrate_gap_ratio, 1))
             for r in rows]
    print()
    print(format_table(
        "Fig. 20 — fairness (two RTC flows at one AP)",
        ("protocol", "bar", "flow1", "flow2", "Jain", "gap"),
        table))

    for row in rows:
        # Both flows always make real progress.
        assert min(row.flow_goodputs_bps) > 100e3, row

    # The paper's claim is comparative: enabling Zhuge (bars b and c)
    # must not degrade the fairness the CCA itself provides (bar a).
    # Copa-vs-Copa convergence is itself imperfect in our transport, so
    # we assert against the baseline bar, not against an absolute 1.0.
    by_key = {(r.protocol, r.bar[0]): r for r in rows}
    for protocol in ("rtp", "tcp"):
        base = by_key[(protocol, "a")]
        for bar in ("b", "c"):
            row = by_key[(protocol, bar)]
            assert row.jain_index >= base.jain_index - 0.20, row
        # External fairness (bar b): the plain flow is not starved —
        # it keeps at least a third of what it gets without Zhuge.
        bar_b = by_key[(protocol, "b")]
        plain_share = bar_b.flow_goodputs_bps[1]
        base_share = base.flow_goodputs_bps[1]
        assert plain_share >= base_share / 3, (protocol, plain_share)
