"""Fig. 21: CPU overhead of Zhuge vs concurrent flows.

Paper: two decade-old APs sustain 5 concurrent Zhuge flows. We measure
the per-packet wall-clock cost of the full Zhuge datapath and project
router-class utilization (DESIGN.md documents the substitution). The
claims preserved: cost grows ~linearly with flows, and five flows fit
in the budget.
"""

from repro.experiments.drivers.format import format_table, pct
from repro.experiments.drivers.overhead import (fig21_cpu_overhead,
                                                measure_component_costs,
                                                measure_per_packet_cost)


def test_fig21_cpu_overhead(once):
    rows = once(fig21_cpu_overhead, flow_counts=(1, 2, 3, 4, 5))
    table = [(r.router, r.flows, f"{r.per_packet_us:.1f}us",
              pct(r.projected_cpu_utilization, 1))
             for r in rows]
    print()
    print(format_table(
        "Fig. 21 — projected CPU utilization",
        ("router", "flows", "per-packet", "CPU"),
        table))

    per_router: dict[str, list] = {}
    for row in rows:
        per_router.setdefault(row.router, []).append(row)
    for router, series in per_router.items():
        series.sort(key=lambda r: r.flows)
        utils = [r.projected_cpu_utilization for r in series]
        # Monotone growth in flows, and 5 flows fit the budget.
        assert all(a <= b + 1e-9 for a, b in zip(utils, utils[1:])), router
        assert utils[-1] < 1.0, router


def test_per_component_cost_breakdown(once):
    """Where the per-packet budget goes: cost + counters per stage."""
    reports = once(measure_component_costs, packets=5000)
    table = [(r.stage, f"{r.seconds_per_call * 1e6:.2f}us",
              f"{r.ops_per_sec:,.0f}/s",
              r.stats["predictions"], r.stats["cache_hits"],
              r.stats["estimator_ops"])
             for r in reports]
    print()
    print(format_table(
        "Fig. 21 — per-component per-packet cost",
        ("stage", "cost", "throughput", "pred", "cachehit", "est-ops"),
        table))
    for report in reports:
        # Each stage must stay well under the 1 ms/packet budget the
        # Fig. 21 projection assumes.
        assert report.seconds_per_call < 0.001, report.stage
    # The estimators really ran: every data packet made a prediction and
    # touched all four estimators of the Fortune Teller.
    data = reports[0].stats
    assert data["predictions"] == 5000
    assert data["estimator_ops"] >= 4 * 5000


def test_per_packet_cost_benchmark(benchmark):
    """Raw per-packet datapath cost (the quantity Fig. 21 scales)."""
    cost = benchmark.pedantic(measure_per_packet_cost,
                              kwargs=dict(packets=5000),
                              rounds=3, iterations=1)
    assert cost < 0.001  # well under 1 ms per packet even in Python
