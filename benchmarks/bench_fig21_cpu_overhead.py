"""Fig. 21: CPU overhead of Zhuge vs concurrent flows.

Paper: two decade-old APs sustain 5 concurrent Zhuge flows. We measure
the per-packet wall-clock cost of the full Zhuge datapath and project
router-class utilization (DESIGN.md documents the substitution). The
claims preserved: cost grows ~linearly with flows, and five flows fit
in the budget.
"""

from repro.experiments.drivers.format import format_table, pct
from repro.experiments.drivers.overhead import (fig21_cpu_overhead,
                                                measure_per_packet_cost)


def test_fig21_cpu_overhead(once):
    rows = once(fig21_cpu_overhead, flow_counts=(1, 2, 3, 4, 5))
    table = [(r.router, r.flows, f"{r.per_packet_us:.1f}us",
              pct(r.projected_cpu_utilization, 1))
             for r in rows]
    print()
    print(format_table(
        "Fig. 21 — projected CPU utilization",
        ("router", "flows", "per-packet", "CPU"),
        table))

    per_router: dict[str, list] = {}
    for row in rows:
        per_router.setdefault(row.router, []).append(row)
    for router, series in per_router.items():
        series.sort(key=lambda r: r.flows)
        utils = [r.projected_cpu_utilization for r in series]
        # Monotone growth in flows, and 5 flows fit the budget.
        assert all(a <= b + 1e-9 for a, b in zip(utils, utils[1:])), router
        assert utils[-1] < 1.0, router


def test_per_packet_cost_benchmark(benchmark):
    """Raw per-packet datapath cost (the quantity Fig. 21 scales)."""
    cost = benchmark.pedantic(measure_per_packet_cost,
                              kwargs=dict(packets=5000),
                              rounds=3, iterations=1)
    assert cost < 0.001  # well under 1 ms per packet even in Python
