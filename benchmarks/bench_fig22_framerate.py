"""Fig. 22: low-frame-rate ratios over the five traces (RTP and TCP).

Paper: Zhuge achieves the smallest (or near-smallest) ratio of
per-second frame rate below 10 fps among all baselines.
"""

from repro.experiments.drivers.format import format_table, pct
from repro.experiments.drivers.traces_eval import fig22_framerate


def test_fig22_framerate(once):
    rows = once(fig22_framerate, duration=60.0, seeds=(1,))
    table = [(r.trace, r.scheme, pct(r.low_fps_ratio))
             for r in rows]
    print()
    print(format_table(
        "Fig. 22 — P(frame rate < 10 fps) over traces",
        ("trace", "scheme", "fps<10"),
        table))

    def ratio(trace, scheme):
        return next(r.low_fps_ratio for r in rows
                    if r.trace == trace and r.scheme == scheme)

    traces = sorted({r.trace for r in rows})
    # RTP: Zhuge at or near the best in aggregate.
    zhuge = sum(ratio(t, "Gcc+Zhuge") for t in traces)
    fifo = sum(ratio(t, "Gcc+FIFO") for t in traces)
    codel = sum(ratio(t, "Gcc+CoDel") for t in traces)
    assert zhuge <= min(fifo, codel) + 0.05
    # TCP: Zhuge not worse than plain Copa in aggregate.
    zhuge_tcp = sum(ratio(t, "Copa+Zhuge") for t in traces)
    plain_tcp = sum(ratio(t, "Copa") for t in traces)
    assert zhuge_tcp <= plain_tcp + 0.05
