"""Hot-path perf-regression harness (BENCH_hotpath.json).

Guards the amortized-O(1) rewrite of the sliding-window estimators:
each optimized estimator must beat its naive re-scan reference (the
seed implementation, kept in ``repro.core.sliding_window_reference``)
by >= 3x on query throughput, and the full AP datapath must scale
near-linearly from 1 to 100 concurrent flows. Every run appends its
numbers to ``BENCH_hotpath.json`` at the repo root so future PRs have a
perf trajectory to compare against (see also
``benchmarks/run_hotpath_regression.py`` for running this outside
pytest).
"""

from pathlib import Path

from repro.experiments.drivers.format import format_table
from repro.experiments.drivers.hotpath import (run_hotpath_bench,
                                               write_results)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
# The acceptance floor: optimized DelayDeltaHistory.sample and
# DequeueIntervalEstimator.average_interval must be >= 3x the naive
# re-scan throughput.
MIN_SPEEDUP = 3.0
GUARDED = ("DelayDeltaHistory.sample",
           "DequeueIntervalEstimator.average_interval")


def test_hotpath_regression(once):
    payload = once(run_hotpath_bench, queries=20_000, packets=20_000)
    write_results(RESULTS_PATH, payload)

    micro = {row["name"]: row for row in payload["micro"]}
    table = [(name, f"{row['optimized_ops_per_sec']:,.0f}/s",
              f"{row['reference_ops_per_sec']:,.0f}/s",
              f"{row['speedup']:.1f}x")
             for name, row in micro.items()]
    print()
    print(format_table(
        "Hot path — optimized vs naive re-scan (window fill 256)",
        ("estimator", "optimized", "reference", "speedup"),
        table))

    datapath = payload["datapath"]
    table = [(d["flows"], f"{d['predict_ops_per_sec']:,.0f}/s",
              f"{d['on_data_packet_ops_per_sec']:,.0f}/s",
              f"{d['ack_delay_ops_per_sec']:,.0f}/s")
             for d in datapath]
    print(format_table(
        "Hot path — datapath throughput vs concurrent flows",
        ("flows", "predict", "on_data_packet", "ack_delay"),
        table))

    for name in GUARDED:
        assert micro[name]["speedup"] >= MIN_SPEEDUP, (
            f"{name}: {micro[name]['speedup']:.2f}x < {MIN_SPEEDUP}x")

    # Per-packet cost must not blow up with concurrent flows (Fig. 21's
    # near-linear scaling claim): 100 flows may cost at most 3x the
    # per-packet time of 1 flow on the prediction path.
    by_flows = {d["flows"]: d for d in datapath}
    assert (by_flows[100]["on_data_packet_ops_per_sec"]
            >= by_flows[1]["on_data_packet_ops_per_sec"] / 3.0)

    assert RESULTS_PATH.exists()
