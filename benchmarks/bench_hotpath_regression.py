"""Hot-path perf-regression harness (BENCH_hotpath.json).

Guards the amortized-O(1) rewrite of the sliding-window estimators:
each optimized estimator must beat its naive re-scan reference (the
seed implementation, kept in ``repro.core.sliding_window_reference``)
by >= 3x on query throughput, and the full AP datapath must scale
near-linearly from 1 to 100 concurrent flows.  The end-to-end family
drives the whole simulated datapath (scheduler, WAN link, AP, AMPDU
txops, ACK path) and is the number the ROADMAP's packets/sec target is
measured against.  Every run appends its numbers to
``BENCH_hotpath.json`` at the repo root so future PRs have a perf
trajectory to compare against (see also
``benchmarks/run_hotpath_regression.py`` for running this outside
pytest).

Set ``REPRO_BENCH_SMOKE=1`` for check mode (the CI ``bench-smoke``
job): small workloads, no trajectory write, and only the relative /
structural guards — absolute ops/sec floors would be hopelessly flaky
on shared CI runners.
"""

import os
from pathlib import Path

from repro.experiments.drivers.format import format_table
from repro.experiments.drivers.hotpath import (run_hotpath_bench,
                                               write_results)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
# The acceptance floor: optimized DelayDeltaHistory.sample and
# DequeueIntervalEstimator.average_interval must be >= 3x the naive
# re-scan throughput.
MIN_SPEEDUP = 3.0
GUARDED = ("DelayDeltaHistory.sample",
           "DequeueIntervalEstimator.average_interval")
#: Check mode: CI smoke run — small counts, no BENCH write.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def test_hotpath_regression(once):
    if SMOKE:
        payload = once(run_hotpath_bench, queries=4_000, packets=4_000,
                       e2e_packets=6_000, e2e_repeats=2)
    else:
        payload = once(run_hotpath_bench, queries=20_000, packets=20_000)
        write_results(RESULTS_PATH, payload)

    micro = {row["name"]: row for row in payload["micro"]}
    table = [(name, f"{row['optimized_ops_per_sec']:,.0f}/s",
              f"{row['reference_ops_per_sec']:,.0f}/s",
              f"{row['speedup']:.1f}x")
             for name, row in micro.items()]
    print()
    print(format_table(
        "Hot path — optimized vs naive re-scan (window fill 256)",
        ("estimator", "optimized", "reference", "speedup"),
        table))

    datapath = payload["datapath"]
    table = [(d["flows"], f"{d['predict_ops_per_sec']:,.0f}/s",
              f"{d['on_data_packet_ops_per_sec']:,.0f}/s",
              f"{d['ack_delay_ops_per_sec']:,.0f}/s")
             for d in datapath]
    print(format_table(
        "Hot path — datapath throughput vs concurrent flows",
        ("flows", "predict", "on_data_packet", "ack_delay"),
        table))

    e2e = payload["end_to_end"]
    print(format_table(
        "Hot path — end-to-end simulated datapath (per event model)",
        ("model", "packets", "delivered", "events/pkt", "packets/s",
         "events/s"),
        [(model, cell["packets"], cell["delivered"],
          f"{cell['events_per_packet']:.2f}",
          f"{cell['packets_per_sec']:,.0f}/s",
          f"{cell['events_per_sec']:,.0f}/s")
         for model, cell in e2e.items()]))

    for name in GUARDED:
        assert micro[name]["speedup"] >= MIN_SPEEDUP, (
            f"{name}: {micro[name]['speedup']:.2f}x < {MIN_SPEEDUP}x")

    # Per-packet cost must not blow up with concurrent flows (Fig. 21's
    # near-linear scaling claim): 100 flows may cost at most 3x the
    # per-packet time of 1 flow on the prediction path.
    by_flows = {d["flows"]: d for d in datapath}
    assert (by_flows[100]["on_data_packet_ops_per_sec"]
            >= by_flows[1]["on_data_packet_ops_per_sec"] / 3.0)

    # End-to-end structural guards, per event model: every data packet
    # must survive the trip (the paced sender stays under capacity — a
    # drop means the batching changed queue occupancy), and each model
    # must stay within its event budget per delivered packet.
    budgets = {"classic": 5.0, "macro": 3.0}
    for model, cell in e2e.items():
        assert cell["delivered"] == cell["packets"], (
            f"{model}: end-to-end dropped packets: "
            f"{cell['delivered']}/{cell['packets']}")
        assert cell["events_per_packet"] < budgets[model], (
            f"{model}: event amplification regressed: "
            f"{cell['events_per_packet']:.2f} events/packet "
            f">= {budgets[model]}")
    # The macro model must deliver the identical workload through fewer
    # events — the whole point of the fused dispatch.  (Wall-clock
    # throughput is noisy on shared runners, so the dispatch-count
    # ratio is the guard; the non-smoke trajectory records both.)
    assert (e2e["macro"]["events_per_packet"]
            < e2e["classic"]["events_per_packet"]), (
        f"macro is not cheaper in events/packet: "
        f"{e2e['macro']['events_per_packet']:.2f} vs "
        f"{e2e['classic']['events_per_packet']:.2f}")
    # ...and must not be *slower* than classic.  Smoke mode gets a 10%
    # noise allowance (shared CI runners, tiny workloads); the full run
    # is best-of-5 per mode and must win outright.
    floor = 0.9 if SMOKE else 1.0
    assert (e2e["macro"]["packets_per_sec"]
            >= e2e["classic"]["packets_per_sec"] * floor), (
        f"macro end-to-end slower than classic: "
        f"{e2e['macro']['packets_per_sec']:,.0f}/s vs "
        f"{e2e['classic']['packets_per_sec']:,.0f}/s")

    # GREEN-steady controller cell: on a healthy datapath the control
    # loop must never leave GREEN (no voter flaps), drop nothing, and
    # — off shared CI runners — cost under its pinned ceiling.
    ctrl = payload["controller"]
    print(format_table(
        "Hot path — GREEN-steady controller overhead (end-to-end)",
        ("packets", "watchdog-only", "controlled", "overhead", "state"),
        [(ctrl["packets"], f"{ctrl['plain_best_pps']:,.0f}/s",
          f"{ctrl['controlled_best_pps']:,.0f}/s",
          f"{ctrl['overhead_ratio'] * 100:.1f}%",
          ctrl["controller_state"])]))
    assert ctrl["controller_state"] == "green", (
        f"controller left GREEN on a healthy datapath: "
        f"{ctrl['controller_state']}")
    assert ctrl["control_transitions"] == 0
    assert ctrl["delivered"] == ctrl["packets"]
    if not SMOKE:
        assert ctrl["overhead_ratio"] < ctrl["ceiling"], (
            f"GREEN-steady controller overhead "
            f"{ctrl['overhead_ratio'] * 100:.1f}% >= "
            f"{ctrl['ceiling'] * 100:.0f}%")
        assert RESULTS_PATH.exists()
