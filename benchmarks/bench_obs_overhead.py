"""Disabled-tracing overhead guard (the ``repro.obs`` <2% contract).

The instrumented datapath with ``trace = None`` must cost at most
``OVERHEAD_CEILING`` (1.02x) of a probe-free copy of the same code,
measured over paired interleaved rounds (see
``repro.experiments.drivers.obs_overhead`` for why paired-in-process
is the only measurement that survives this container's +-15% run-to-run
jitter). The numbers join the ``BENCH_hotpath.json`` trajectory.
"""

from pathlib import Path

from repro.experiments.drivers.format import format_table
from repro.experiments.drivers.hotpath import write_results
from repro.experiments.drivers.obs_overhead import (OVERHEAD_CEILING,
                                                    run_overhead_bench)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def test_obs_disabled_overhead(once):
    result = once(run_overhead_bench)
    write_results(RESULTS_PATH, {"obs_overhead": result})

    print()
    print(format_table(
        "Tracing disabled — instrumented vs probe-free datapath",
        ("packets", "rounds", "instrumented", "probe-free", "overhead"),
        [(result["packets"], result["repeats"],
          f"{result['instrumented_disabled_best_s'] * 1e3:.1f} ms",
          f"{result['probe_free_best_s'] * 1e3:.1f} ms",
          f"{(result['overhead_ratio'] - 1) * 100:+.2f}%")]))

    assert result["overhead_ratio"] < OVERHEAD_CEILING, (
        f"disabled-tracing overhead {result['overhead_ratio']:.4f}x "
        f"exceeds the {OVERHEAD_CEILING}x ceiling")
    assert RESULTS_PATH.exists()
