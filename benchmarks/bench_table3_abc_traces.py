"""Table 3 (Appendix B): legacy low-bandwidth cellular traces.

Paper: on the ABC paper's decade-old traces (order of magnitude lower
bandwidth), ABC performs best on application metrics, but Copa+Zhuge
improves plain Copa substantially (~67%) and stays comparable to ABC —
without touching end hosts.
"""

from repro.experiments.drivers.format import format_table, pct
from repro.experiments.drivers.traces_eval import table3_abc_traces


def test_table3_abc_traces(once):
    rows = once(table3_abc_traces, duration=60.0, seeds=(1, 2))
    table = [(r.scheme, pct(r.rtt_tail_ratio), pct(r.delayed_frame_ratio),
              pct(r.low_fps_ratio))
             for r in rows]
    print()
    print(format_table(
        "Table 3 — ABC-legacy traces",
        ("scheme", "RTT>200ms", "frame>400ms", "fps<10"),
        table))

    def get(scheme):
        return next(r for r in rows if r.scheme == scheme)

    copa, zhuge = get("Copa"), get("Copa+Zhuge")
    # Zhuge must not regress plain Copa on the legacy traces.
    assert zhuge.rtt_tail_ratio <= copa.rtt_tail_ratio + 0.02
    assert zhuge.delayed_frame_ratio <= copa.delayed_frame_ratio + 0.05
