"""Shared helpers for the benchmark harness.

Each bench runs its experiment exactly once under pytest-benchmark
(``rounds=1``) — the timing is the experiment's wall-clock cost, and the
printed table is the reproduced figure/table. Durations and seed counts
are scaled down from the paper's hours-long runs so the full suite
finishes in minutes; the *shape* of each result is what we assert.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark timer and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return runner
