#!/usr/bin/env python
"""Standalone runner for the hot-path regression bench.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_hotpath_regression.py [out.json]

Runs the micro (optimized vs naive re-scan estimators) and datapath
(1/10/100-flow ZhugeAP throughput) benches and appends one run to the
trajectory file (default ``BENCH_hotpath.json`` at the repo root).
The pytest wrapper ``bench_hotpath_regression.py`` runs the same code
and additionally asserts the >= 3x speedup floor.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.drivers.hotpath import (run_hotpath_bench,  # noqa: E402
                                               write_results)

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def main(argv: list[str]) -> int:
    out = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    payload = run_hotpath_bench()
    doc = write_results(out, payload)
    run = doc["runs"][-1]
    print(f"wrote run {len(doc['runs'])} to {out}")
    for row in run["micro"]:
        print(f"  {row['name']:<45} {row['speedup']:6.1f}x "
              f"({row['optimized_ops_per_sec']:,.0f}/s vs "
              f"{row['reference_ops_per_sec']:,.0f}/s)")
    for d in run["datapath"]:
        print(f"  datapath @ {d['flows']:>3} flows: "
              f"predict {d['predict_ops_per_sec']:,.0f}/s, "
              f"on_data_packet {d['on_data_packet_ops_per_sec']:,.0f}/s, "
              f"ack_delay {d['ack_delay_ops_per_sec']:,.0f}/s")
    e2e = run["end_to_end"]
    print(f"  end_to_end: {e2e['packets_per_sec']:,.0f} packets/s "
          f"({e2e['events_per_packet']:.2f} events/pkt, "
          f"{e2e['events_per_sec']:,.0f} events/s, "
          f"{e2e['delivered']}/{e2e['packets']} delivered)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
