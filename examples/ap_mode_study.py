#!/usr/bin/env python3
"""Mini Fig. 11: sweep AP modes across trace families.

Runs a WebRTC-style session over each synthetic trace family with a
plain FIFO AP, a CoDel AP, and a Zhuge AP, and prints the paper's tail
metrics per cell — a compact version of the trace-driven evaluation
that finishes in about a minute.

Usage::

    python examples/ap_mode_study.py [duration_seconds]
"""

import sys

from repro import ScenarioConfig, make_trace, run_scenario

SCHEMES = (
    ("FIFO", dict(ap_mode="none", queue_kind="fifo")),
    ("CoDel", dict(ap_mode="none", queue_kind="codel")),
    ("Zhuge", dict(ap_mode="zhuge", queue_kind="fifo")),
)


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 30.0
    print(f"RTP/GCC video, {duration:.0f} s per cell\n")
    print(f"{'trace':8s}{'AP':8s}{'RTT>200ms':>12s}{'frame>400ms':>14s}"
          f"{'bitrate':>10s}")
    for trace_name in ("W1", "W2", "C1", "C2", "C3"):
        trace = make_trace(trace_name, duration=duration, seed=1)
        for label, overrides in SCHEMES:
            config = ScenarioConfig(trace=trace, protocol="rtp",
                                    duration=duration, seed=1, **overrides)
            result = run_scenario(config)
            flow = result.flows[0]
            print(f"{trace_name:8s}{label:8s}"
                  f"{flow.rtt.tail_ratio() * 100:11.2f}%"
                  f"{flow.frames.delayed_ratio() * 100:13.2f}%"
                  f"{flow.mean_bitrate_bps / 1e6:9.2f}M")
        print()


if __name__ == "__main__":
    main()
