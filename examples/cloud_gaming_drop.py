#!/usr/bin/env python3
"""Cloud gaming through a sudden bandwidth collapse.

Models the paper's Fig. 3a story on a cloud-gaming-style stream (video
over a TCP-like transport with Copa): the wireless link loses 10x of
its bandwidth mid-session (a neighbour's microwave, an elevator door, a
handover). Shows how long the session stays degraded with a plain AP,
a FastAck AP, and a Zhuge AP.

Usage::

    python examples/cloud_gaming_drop.py [k]
"""

import sys

from repro import ScenarioConfig, run_scenario
from repro.traces.synthetic import drop_trace


def main() -> None:
    # Default k=10: 30/10 = 3 Mbps is well below the 8 Mbps the stream
    # can demand, so the drop congests the session.
    k = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    drop_at, duration = 15.0, 30.0
    trace = drop_trace(30e6, k=k, drop_at=drop_at, duration=duration)
    print(f"30 Mbps wireless link loses {k:g}x of its bandwidth at "
          f"t={drop_at:.0f}s.")
    print(f"{'AP mode':16s}{'RTT>200ms dur':>16s}{'frame>400ms dur':>18s}"
          f"{'fps<10 dur':>14s}")

    schemes = (
        ("plain TCP/Copa", dict(protocol="tcp", cca="copa", ap_mode="none")),
        ("FastAck TCP", dict(protocol="tcp", cca="copa", ap_mode="fastack")),
        ("plain RTP/GCC", dict(protocol="rtp", ap_mode="none")),
        ("Zhuge RTP/GCC", dict(protocol="rtp", ap_mode="zhuge")),
    )
    for label, overrides in schemes:
        config = ScenarioConfig(trace=trace, duration=duration,
                                wan_delay=0.025, max_bps=8e6, warmup=2.0,
                                **overrides)
        result = run_scenario(config)
        flow = result.flows[0]
        rtt_dur = flow.rtt.degradation_duration(0.200, start=drop_at)
        frame_dur = flow.frames.delay_degradation_duration(0.400,
                                                           start=drop_at)
        fps_dur = flow.frames.low_fps_duration(duration - drop_at,
                                               start=drop_at)
        print(f"{label:16s}{rtt_dur:>14.2f}s {frame_dur:>16.2f}s "
              f"{fps_dur:>12.1f}s")


if __name__ == "__main__":
    main()
