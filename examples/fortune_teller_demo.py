#!/usr/bin/env python3
"""Watch the Fortune Teller read a queue's future (paper Fig. 7).

Streams packets through a wireless link whose capacity collapses 20x at
t = 5 ms, and prints the per-packet delay prediction decomposed into
qLong / qShort / tx, next to the queue state. The punchline: qShort
carries the signal within ~2 ms of the drop, long before the windowed
txRate (and hence qLong) has caught up.

Usage::

    python examples/fortune_teller_demo.py
"""

from repro.experiments.drivers.accuracy import fig7_qlong_qshort


def main() -> None:
    points = fig7_qlong_qshort(drop_at_ms=5.0, duration_ms=30.0)
    print("ABW drops 20x at t = 5 ms")
    print(f"{'t (ms)':>8s}{'qLong':>10s}{'qShort':>10s}"
          f"{'txRate':>12s}{'queue':>10s}")
    for p in points[::2]:
        marker = "  <-- drop" if abs(p.time_ms - 5.0) < 0.3 else ""
        print(f"{p.time_ms:8.1f}{p.q_long_ms:9.2f}m{p.q_short_ms:9.2f}m"
              f"{p.tx_rate_mbps:10.1f}M{p.queue_kb:9.1f}k{marker}")

    early = [p for p in points if 6.0 <= p.time_ms <= 12.0]
    late = [p for p in points if 24.0 <= p.time_ms <= 30.0]
    early_short = sum(p.q_short_ms for p in early) / len(early)
    early_long = sum(p.q_long_ms for p in early) / len(early)
    late_long = sum(p.q_long_ms for p in late) / len(late)
    print(f"\n6-12 ms after the drop: qShort averages {early_short:.1f} ms "
          f"vs qLong {early_long:.1f} ms  (qShort leads)")
    print(f"24-30 ms after the drop: qLong averages {late_long:.1f} ms "
          f"(the built-up queue now dominates)")


if __name__ == "__main__":
    main()
