#!/usr/bin/env python3
"""Quickstart: one RTC flow over a crowded-restaurant WiFi AP,
with and without Zhuge.

Runs the same 40-second WebRTC-style (RTP/GCC) session twice — once
through a plain AP and once through an AP running Zhuge — and prints
the paper's three metrics side by side.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro import ScenarioConfig, make_trace, run_scenario
from repro.metrics.stats import percentile


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    duration = 40.0
    trace = make_trace("W1", duration=duration, seed=seed)
    print(f"Trace W1 (restaurant WiFi): mean "
          f"{trace.mean_bps / 1e6:.1f} Mbps, seed {seed}")
    print(f"{'':16s}{'plain AP':>14s}{'Zhuge AP':>14s}")

    results = {}
    for mode in ("none", "zhuge"):
        config = ScenarioConfig(trace=trace, protocol="rtp", ap_mode=mode,
                                duration=duration, seed=seed)
        results[mode] = run_scenario(config)

    rows = [
        ("P50 RTT", lambda r: f"{percentile(r.rtt.rtts, 50) * 1000:.0f} ms"),
        ("P99 RTT", lambda r: f"{percentile(r.rtt.rtts, 99) * 1000:.0f} ms"),
        ("RTT>200ms", lambda r: f"{r.rtt.tail_ratio() * 100:.2f}%"),
        ("frames>400ms", lambda r: f"{r.frames.delayed_ratio() * 100:.2f}%"),
        ("frames decoded", lambda r: f"{r.frames.count}"),
        ("bitrate", lambda r:
         f"{r.flows[0].mean_bitrate_bps / 1e6:.2f} Mbps"),
    ]
    for label, fmt in rows:
        print(f"{label:16s}{fmt(results['none']):>14s}"
              f"{fmt(results['zhuge']):>14s}")


if __name__ == "__main__":
    main()
