#!/usr/bin/env python3
"""A client walks from one AP to the next mid-call.

Builds the two-AP roaming graph (``repro.topology``): the client starts
on AP-A, and at t=3 s a ``roam`` fault performs a real 802.11-style
handoff to AP-B — the old wireless edges flush and go down, routes
recompute, and (with Zhuge APs) the feedback-release floor carries over
so release times stay monotone while the new AP's Fortune Teller
relearns the channel. Downlink packets the WAN delivered to AP-A during
the blackout are forwarded to AP-B over the distribution system instead
of being stranded, so TCP rides through the handoff without an RTO
stall.

Usage::

    python examples/roaming_handoff.py
"""

from repro import ScenarioConfig, run_scenario, make_trace
from repro.faults.spec import FaultPlan
from repro.metrics.stats import percentile
from repro.topology import roaming_topology

ROAM_AT, BLACKOUT, DURATION = 3.0, 0.4, 12.0


def main() -> None:
    trace = make_trace("W2", duration=DURATION, seed=1)
    print(f"TCP/Copa call on Zhuge APs; optional roam ap-a -> ap-b at "
          f"t={ROAM_AT:g}s ({BLACKOUT * 1000:.0f} ms blackout).")
    print(f"{'scenario':14s}{'P50 RTT':>10s}{'P99 RTT':>10s}"
          f"{'RTT>200ms':>12s}{'post-roam P50':>16s}  faults")
    for label, faults in (("stay on ap-a", None),
                          ("roam to ap-b", FaultPlan.parse(
                              f"roam@{ROAM_AT:g}+{BLACKOUT:g}"
                              f"/client:ap-b"))):
        config = ScenarioConfig(
            trace=trace, protocol="tcp", cca="copa", ap_mode="zhuge",
            queue_kind="fq_codel", duration=DURATION, warmup=1.0,
            topology=roaming_topology(ap_mode="zhuge",
                                      queue_kind="fq_codel"),
            faults=faults)
        result = run_scenario(config)
        flow = result.flows[0]
        post = [s for t, s in zip(flow.rtt.times, flow.rtt.rtts)
                if t > ROAM_AT + BLACKOUT]
        post_p50 = percentile(post, 50) if post else float("nan")
        log = ",".join(f"{kind}:{phase}@{t:.1f}s"
                       for t, kind, phase in result.fault_log) or "-"
        print(f"{label:14s}{percentile(flow.rtt.rtts, 50) * 1e3:>8.1f}ms"
              f"{percentile(flow.rtt.rtts, 99) * 1e3:>8.1f}ms"
              f"{flow.rtt.tail_ratio() * 100:>11.2f}%"
              f"{post_p50 * 1e3:>14.1f}ms  {log}")


if __name__ == "__main__":
    main()
