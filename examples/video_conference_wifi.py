#!/usr/bin/env python3
"""Video conferencing on a busy home WiFi: RTC vs a family of competitors.

Models the intro's motivating workload: a WebRTC call (RTP/GCC) sharing
the home AP with bulk downloads (CUBIC flows that toggle on and off,
like someone starting a cloud backup mid-call). Compares plain FIFO,
CoDel, and Zhuge APs on call quality over time.

Usage::

    python examples/video_conference_wifi.py
"""

from repro import ScenarioConfig, make_trace, run_scenario


def describe(result, label: str) -> None:
    flow = result.flows[0]
    duration = result.measured_duration()
    print(f"\n--- {label} ---")
    print(f"  RTT > 200 ms:        {flow.rtt.tail_ratio() * 100:6.2f}% "
          f"of packets")
    print(f"  frame delay > 400ms: {flow.frames.delayed_ratio() * 100:6.2f}% "
          f"of frames")
    print(f"  seconds under 10fps: "
          f"{flow.frames.low_fps_duration(duration, start=5.0):6.1f} s")
    print(f"  video bitrate:       "
          f"{flow.mean_bitrate_bps / 1e6:6.2f} Mbps")


def main() -> None:
    duration = 60.0
    trace = make_trace("W2", duration=duration, seed=3)
    print("Scenario: WebRTC call over office WiFi (trace W2), one CUBIC")
    print("bulk flow toggling every 15 s, 30 s of wall-clock per AP mode.")

    schemes = (
        ("Gcc + FIFO AP", dict(ap_mode="none", queue_kind="fifo")),
        ("Gcc + CoDel AP", dict(ap_mode="none", queue_kind="codel")),
        ("Gcc + Zhuge AP", dict(ap_mode="zhuge", queue_kind="fifo")),
    )
    for label, overrides in schemes:
        config = ScenarioConfig(trace=trace, protocol="rtp",
                                duration=duration, seed=3,
                                competitors=1, competitor_period=15.0,
                                **overrides)
        describe(run_scenario(config), label)


if __name__ == "__main__":
    main()
