"""repro: reproduction of Zhuge (SIGCOMM 2022).

Zhuge achieves consistent low latency for wireless real-time
communications by shortening the congestion-control loop at the
last-mile access point: a Fortune Teller predicts each packet's delay on
AP arrival, and a Feedback Updater carries that prediction back to the
sender immediately -- by delaying ACKs (out-of-band protocols) or by
constructing TWCC feedback at the AP (in-band protocols).

Quick start::

    from repro import ScenarioConfig, run_scenario, make_trace

    config = ScenarioConfig(trace=make_trace("W1", duration=30),
                            protocol="rtp", ap_mode="zhuge")
    result = run_scenario(config)
    print(result.rtt.tail_ratio(), result.frames.delayed_ratio())
"""

from repro.core import (
    FortuneTeller,
    OutOfBandFeedbackUpdater,
    InBandFeedbackUpdater,
    ZhugeAP,
    FeedbackKind,
)
from repro.campaign import (
    ScenarioSpec,
    ScenarioSummary,
    TraceSpec,
    run_campaign,
    run_specs,
)
from repro.experiments import ScenarioConfig, ScenarioResult, run_scenario
from repro.traces import BandwidthTrace, make_trace, ethernet_trace

__version__ = "1.0.0"

__all__ = [
    "FortuneTeller",
    "OutOfBandFeedbackUpdater",
    "InBandFeedbackUpdater",
    "ZhugeAP",
    "FeedbackKind",
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "ScenarioSpec",
    "ScenarioSummary",
    "TraceSpec",
    "run_campaign",
    "run_specs",
    "BandwidthTrace",
    "make_trace",
    "ethernet_trace",
    "__version__",
]
