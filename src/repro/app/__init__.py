"""Application models: video streaming (RTC) and bulk transfer."""

from repro.app.video import VideoEncoder, VideoFrame, RtpVideoApp, TcpVideoApp
from repro.app.bulk import BulkSenderApp, PeriodicBulkApp

__all__ = [
    "VideoEncoder",
    "VideoFrame",
    "RtpVideoApp",
    "TcpVideoApp",
    "BulkSenderApp",
    "PeriodicBulkApp",
]
