"""Bulk-transfer applications (competitors and interferers).

``BulkSenderApp`` is an always-backlogged TCP flow (the CUBIC
competitors of §7.4). ``PeriodicBulkApp`` toggles the transfer on and
off on a period — the ``scp`` scenario of §7.5 (30 s on / 30 s off).
"""

from __future__ import annotations

from repro.sim.engine import Simulator, Timer
from repro.transport.tcp import TcpSender


class BulkSenderApp:
    """Keeps a TcpSender permanently backlogged."""

    def __init__(self, sim: Simulator, sender: TcpSender):
        self.sim = sim
        self.sender = sender
        sender.unlimited = True
        # Kick off transmission.
        sim.schedule(0.0, sender._try_send)

    def stop(self) -> None:
        self.sender.unlimited = False


class PeriodicBulkApp:
    """Bulk flow toggled every ``period`` seconds (scp on/off)."""

    def __init__(self, sim: Simulator, sender: TcpSender,
                 period: float = 30.0, start_active: bool = True):
        if period <= 0:
            raise ValueError(f"period must be positive: {period}")
        self.sim = sim
        self.sender = sender
        self.active = start_active
        sender.unlimited = start_active
        if start_active:
            sim.schedule(0.0, sender._try_send)
        self._timer = Timer(sim, period, self._toggle)

    def _toggle(self) -> None:
        self.active = not self.active
        self.sender.unlimited = self.active
        if self.active:
            self.sender._try_send()

    def stop(self) -> None:
        self._timer.stop()
        self.sender.unlimited = False
