"""Video over a QUIC-style transport (Table 2's QUIC application family).

Each frame is written as one stream chunk; the transport splits it into
packets with sealed payload descriptors. The receiver counts delivered
chunks per frame; a frame decodes when all of its chunks have arrived
and every previous frame has decoded (same §7.2 semantics as the other
apps). QUIC's per-packet delivery (no head-of-line byte stream across
writes) means a lost packet only stalls its own frame.
"""

from __future__ import annotations

import math

from repro.app.video import VideoEncoder, _FrameTracker
from repro.metrics.recorder import FrameRecorder
from repro.sim.engine import Simulator, Timer
from repro.transport.quic import QuicReceiver, QuicSender


class QuicVideoApp:
    """Rate-adaptive video streamed over :class:`QuicSender`."""

    def __init__(self, sim: Simulator, sender: QuicSender,
                 receiver: QuicReceiver, encoder: VideoEncoder,
                 rate_headroom: float = 0.85,
                 max_rate_bps: float = 20e6, min_rate_bps: float = 150e3,
                 max_decode_lag: float = 0.6):
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.encoder = encoder
        self.rate_headroom = rate_headroom
        self.max_rate_bps = max_rate_bps
        self.min_rate_bps = min_rate_bps
        self.max_decode_lag = max_decode_lag
        self.tracker = _FrameTracker()
        self.frames_sent = 0
        self.frames_dropped_at_encoder = 0
        receiver.on_deliver = self._on_deliver
        self._timer = Timer(sim, 1.0 / encoder.fps, self._encode_tick,
                            first_delay=0.0)
        self._gc_timer = Timer(sim, 0.1, self._gc_tick)

    @property
    def frame_recorder(self) -> FrameRecorder:
        return self.tracker.recorder

    def current_target_bps(self) -> float:
        rate = self.sender.estimated_rate_bps() * self.rate_headroom
        return min(self.max_rate_bps, max(self.min_rate_bps, rate))

    def _encode_tick(self) -> None:
        target = self.current_target_bps()
        if self.sender.buffered_bytes * 8 > target * 0.5:
            self.frames_dropped_at_encoder += 1
            return
        frame = self.encoder.next_frame(self.sim.now, target)
        chunks = max(1, math.ceil(frame.size_bytes / self.sender.mss))
        meta = {
            "frame_id": frame.frame_id,
            "frame_encoded_at": frame.encoded_at,
            "frame_packets": chunks,
        }
        self.frames_sent += 1
        self.sender.write(frame.size_bytes, meta)

    def _on_deliver(self, payload: dict, now: float) -> None:
        frame_id = payload.get("frame_id")
        if frame_id is None:
            return
        self.tracker.on_packet(frame_id, payload["frame_encoded_at"],
                               payload["frame_packets"], now)

    def _gc_tick(self) -> None:
        stale_before = None
        for frame_id, frame in sorted(self.tracker.frames.items()):
            if self.sim.now - frame.encoded_at > self.max_decode_lag:
                stale_before = frame_id + 1
            else:
                break
        if stale_before is not None:
            self.tracker.skip_missing_before(stale_before, self.sim.now)

    def stop(self) -> None:
        self._timer.stop()
        self._gc_timer.stop()
