"""Video application model (encoder, packetizer, receiver).

The paper's workload: 1080p 24 fps video at ~2 Mbps average bitrate,
sent burstily frame-by-frame (§3.1: "senders tend to burstily send
packets of the same frame out"). The encoder adapts its per-frame size
to the CCA's current rate estimate. The receiver reassembles frames:
a frame decodes only when all of its packets have arrived *and* every
previous frame has been decoded (the frame-delay definition of §7.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.metrics.recorder import FrameRecorder
from repro.net.packet import Packet, RTP_PAYLOAD_SIZE
from repro.sim.engine import Simulator, Timer
from repro.sim.random import DeterministicRandom
from repro.transport.rtp import RtpReceiver, RtpSender
from repro.transport.tcp import TcpReceiver, TcpSender


@dataclass
class VideoFrame:
    """One encoded frame."""

    frame_id: int
    encoded_at: float
    size_bytes: int
    keyframe: bool = False
    packet_count: int = 0
    arrived_packets: int = 0
    decoded_at: Optional[float] = None


class VideoEncoder:
    """Rate-adaptive frame generator.

    Each tick (1/fps) it produces a frame sized to the current target
    bitrate, with lognormal size variation and periodically larger
    keyframes — giving the bursty arrivals the Fortune Teller must cope
    with.
    """

    def __init__(self, fps: float = 24.0, rng: Optional[DeterministicRandom] = None,
                 keyframe_interval: int = 48, keyframe_scale: float = 3.0,
                 size_sigma: float = 0.25, min_frame_bytes: int = 400):
        if fps <= 0:
            raise ValueError(f"fps must be positive: {fps}")
        self.fps = fps
        self.rng = rng or DeterministicRandom(0)
        self.keyframe_interval = keyframe_interval
        self.keyframe_scale = keyframe_scale
        self.size_sigma = size_sigma
        self.min_frame_bytes = min_frame_bytes
        self._frame_id = 0

    def next_frame(self, now: float, target_bps: float) -> VideoFrame:
        """Encode the next frame against ``target_bps``."""
        base_bytes = target_bps / 8.0 / self.fps
        keyframe = (self._frame_id % self.keyframe_interval == 0)
        scale = self.keyframe_scale if keyframe else 1.0
        # Keep the average at base_bytes: non-key frames shrink slightly.
        if self.keyframe_interval > 1:
            extra = (self.keyframe_scale - 1.0) / self.keyframe_interval
            if not keyframe:
                scale = max(0.1, 1.0 - extra)
        noise = self.rng.lognormal(0.0, self.size_sigma)
        noise /= math.exp(self.size_sigma ** 2 / 2)  # unit-mean correction
        size = max(self.min_frame_bytes, int(base_bytes * scale * noise))
        frame = VideoFrame(self._frame_id, now, size, keyframe)
        self._frame_id += 1
        return frame


class _FrameTracker:
    """Receiver-side frame completion and decode-dependency logic."""

    def __init__(self) -> None:
        self.frames: dict[int, VideoFrame] = {}
        self.recorder = FrameRecorder()
        self._next_to_decode = 0

    def register(self, frame_id: int, encoded_at: float,
                 packet_count: int) -> None:
        if frame_id not in self.frames:
            self.frames[frame_id] = VideoFrame(frame_id, encoded_at, 0,
                                               packet_count=packet_count)

    def on_packet(self, frame_id: int, encoded_at: float,
                  packet_count: int, now: float) -> None:
        self.register(frame_id, encoded_at, packet_count)
        frame = self.frames[frame_id]
        frame.arrived_packets += 1
        self._try_decode(now)

    def _try_decode(self, now: float) -> None:
        while True:
            frame = self.frames.get(self._next_to_decode)
            if frame is None or frame.arrived_packets < frame.packet_count:
                return
            frame.decoded_at = now
            self.recorder.record(now, now - frame.encoded_at)
            del self.frames[self._next_to_decode]
            self._next_to_decode += 1

    def skip_missing_before(self, frame_id: int, now: float) -> None:
        """Give up frames older than ``frame_id`` (loss concealment)."""
        while self._next_to_decode < frame_id:
            self.frames.pop(self._next_to_decode, None)
            self._next_to_decode += 1
        self._try_decode(now)


class RtpVideoApp:
    """Video over RTP: encoder + per-frame burst packetizer + receiver.

    Binds an :class:`RtpSender`/:class:`RtpReceiver` pair. Frames are
    packetized into RTP packets and sent as a tight burst (with a small
    inter-packet pacing gap) at encode time. Frames older than
    ``max_decode_lag`` with missing packets are skipped, so one lost
    packet stalls the stream only briefly (mirroring NACK/PLI recovery).
    """

    def __init__(self, sim: Simulator, sender: RtpSender,
                 receiver: RtpReceiver, encoder: VideoEncoder,
                 burst_gap: float = 0.0005, max_decode_lag: float = 0.6,
                 paced: bool = False):
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.encoder = encoder
        self.burst_gap = burst_gap
        self.max_decode_lag = max_decode_lag
        # §3.1: real senders burst a frame's packets out together to
        # minimize latency. ``paced=True`` instead spreads them across
        # the frame interval (a WebRTC pacer at ~1x rate) — used by the
        # burstiness ablation to show what bursts do to the estimators.
        self.paced = paced
        self.tracker = _FrameTracker()
        self.frames_sent = 0
        receiver.on_media = self._on_media
        self._timer = Timer(sim, 1.0 / encoder.fps, self._encode_tick,
                            first_delay=0.0)
        self._gc_timer = Timer(sim, 0.1, self._gc_tick)

    @property
    def frame_recorder(self) -> FrameRecorder:
        return self.tracker.recorder

    def _encode_tick(self) -> None:
        frame = self.encoder.next_frame(self.sim.now, self.sender.cca.target_bps)
        packet_count = max(1, math.ceil(frame.size_bytes / RTP_PAYLOAD_SIZE))
        frame.packet_count = packet_count
        self.frames_sent += 1
        remaining = frame.size_bytes
        if self.paced:
            # Spread the frame across ~80% of the frame interval.
            gap = 0.8 / (self.encoder.fps * packet_count)
        else:
            gap = self.burst_gap
        for index in range(packet_count):
            size = min(RTP_PAYLOAD_SIZE, max(1, remaining))
            remaining -= size
            headers = {
                "frame_id": frame.frame_id,
                "frame_encoded_at": frame.encoded_at,
                "frame_packets": packet_count,
            }
            self.sim.schedule(index * gap, lambda s=size, h=headers:
                              self.sender.send_packet(s, h))

    def _on_media(self, packet: Packet) -> None:
        frame_id = packet.headers.get("frame_id")
        if frame_id is None:
            return
        self.tracker.on_packet(frame_id,
                               packet.headers["frame_encoded_at"],
                               packet.headers["frame_packets"],
                               self.sim.now)

    def _gc_tick(self) -> None:
        """Skip frames that will never complete (lost packets)."""
        stale_before = None
        for frame_id, frame in sorted(self.tracker.frames.items()):
            if self.sim.now - frame.encoded_at > self.max_decode_lag:
                stale_before = frame_id + 1
            else:
                break
        if stale_before is not None:
            self.tracker.skip_missing_before(stale_before, self.sim.now)

    def stop(self) -> None:
        self._timer.stop()
        self._gc_timer.stop()
        self.receiver.stop()


class TcpVideoApp:
    """Video over a TCP-like stream (cloud-gaming / remote-desktop style).

    The encoder picks its bitrate from the transport's ``cwnd/srtt``
    estimate (with headroom), writes frame bytes into the stream, and
    the receiver decodes a frame when its last byte is delivered
    in-order. TCP's reliability means frames never get skipped; they
    arrive late instead — which is what the frame-delay tail measures.
    """

    def __init__(self, sim: Simulator, sender: TcpSender,
                 receiver: TcpReceiver, encoder: VideoEncoder,
                 rate_headroom: float = 0.85,
                 max_rate_bps: float = 20e6, min_rate_bps: float = 150e3):
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.encoder = encoder
        self.rate_headroom = rate_headroom
        self.max_rate_bps = max_rate_bps
        self.min_rate_bps = min_rate_bps
        self.tracker = _FrameTracker()
        self.frames_sent = 0
        self.frames_dropped_at_encoder = 0
        receiver.on_deliver = self._on_deliver
        self._timer = Timer(sim, 1.0 / encoder.fps, self._encode_tick,
                            first_delay=0.0)

    @property
    def frame_recorder(self) -> FrameRecorder:
        return self.tracker.recorder

    def current_target_bps(self) -> float:
        rate = self.sender.estimated_rate_bps() * self.rate_headroom
        return min(self.max_rate_bps, max(self.min_rate_bps, rate))

    def _encode_tick(self) -> None:
        # Encoder-side frame dropping: if the send buffer already holds
        # more than ~0.5 s of video, encoding another frame only adds
        # latency; real encoders skip instead.
        target = self.current_target_bps()
        if self.sender.buffered_bytes * 8 > target * 0.5:
            self.frames_dropped_at_encoder += 1
            return
        frame = self.encoder.next_frame(self.sim.now, target)
        meta = {
            "frame_id": frame.frame_id,
            "frame_encoded_at": frame.encoded_at,
        }
        self.frames_sent += 1
        self.sender.write(frame.size_bytes, meta)

    def _on_deliver(self, seq: int, end_seq: int, meta: dict,
                    now: float) -> None:
        frame_id = meta.get("frame_id")
        if frame_id is None:
            return
        # TCP delivery is in-order, so when the final segment of a frame's
        # write is delivered, the entire frame (and every previous frame)
        # has been delivered — the frame decodes now.
        if meta.get("last_of_write"):
            self.tracker.on_packet(frame_id, meta["frame_encoded_at"], 1, now)

    def stop(self) -> None:
        self._timer.stop()
