"""Active queue management disciplines.

All disciplines expose the :class:`~repro.net.queue.DropTailQueue`
interface so links and the Zhuge Fortune Teller can observe them
uniformly. ``FifoQueue`` is plain drop-tail; ``CoDelQueue`` implements
head-dropping CoDel; ``FqCoDelQueue`` isolates flows by five-tuple with
deficit round-robin and a per-flow CoDel state.
"""

from repro.aqm.fifo import FifoQueue
from repro.aqm.codel import CoDelQueue
from repro.aqm.fq_codel import FqCoDelQueue

__all__ = ["FifoQueue", "CoDelQueue", "FqCoDelQueue", "make_queue"]


def make_queue(kind: str, capacity_bytes: int = 375_000, name: str = "q"):
    """Factory used by scenario builders. ``kind`` in {fifo, codel, fq_codel}."""
    kinds = {
        "fifo": FifoQueue,
        "codel": CoDelQueue,
        "fq_codel": FqCoDelQueue,
    }
    if kind not in kinds:
        raise ValueError(f"unknown queue kind {kind!r}; expected one of {sorted(kinds)}")
    return kinds[kind](capacity_bytes=capacity_bytes, name=name)
