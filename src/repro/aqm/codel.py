"""CoDel (Controlled Delay) AQM, after Nichols & Jacobson (CACM 2012).

Head-drop variant: on dequeue, if the sojourn time of the head packet has
exceeded ``target`` for at least ``interval``, the queue enters dropping
state and drops head packets at a rate increasing with the square root of
the drop count (the control-law schedule from the reference
implementation / RFC 8289).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue


class CoDelQueue(DropTailQueue):
    """Byte-bounded queue with CoDel head dropping."""

    def __init__(self, capacity_bytes: int = 375_000, name: str = "codel",
                 target: float = 0.005, interval: float = 0.100):
        super().__init__(capacity_bytes=capacity_bytes, name=name)
        if target <= 0 or interval <= 0:
            raise ValueError("CoDel target and interval must be positive")
        self.target = target
        self.interval = interval
        self._first_above_time = 0.0
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self._last_drop_count = 0

    def _sojourn_ok(self, packet: Packet, now: float) -> bool:
        """True when the packet's sojourn time is below target."""
        if packet.enqueued_at is None:
            return True
        return (now - packet.enqueued_at) < self.target

    def _should_enter_drop(self, now: float, packet: Packet) -> bool:
        """Track how long sojourn time has stayed above target."""
        if self._sojourn_ok(packet, now) or self._bytes_below_mtu():
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def _bytes_below_mtu(self) -> bool:
        return self.byte_length <= 1500

    def _control_law(self, t: float) -> float:
        return t + self.interval / math.sqrt(self._drop_count)

    def _drop_popped(self, packet: Packet) -> None:
        """Drop a packet already removed via ``_pop_head``.

        ``_pop_head`` counted it as dequeued; reverse that so the stats
        conserve packets (enqueued == dequeued + dropped + queued).
        """
        self.stats.dequeued -= 1
        self.stats.bytes_dequeued -= packet.size
        self._drop(packet, "codel")

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = self._pop_head(now)
        if packet is None:
            self._dropping = False
            return None

        if self._dropping:
            if self._sojourn_ok(packet, now) or self._bytes_below_mtu():
                self._dropping = False
                self._first_above_time = 0.0
            else:
                while (self._dropping and now >= self._drop_next
                       and packet is not None):
                    self._drop_popped(packet)
                    self._drop_count += 1
                    packet = self._pop_head(now)
                    if packet is None:
                        self._dropping = False
                        break
                    if self._sojourn_ok(packet, now) or self._bytes_below_mtu():
                        self._dropping = False
                    else:
                        self._drop_next = self._control_law(self._drop_next)
        elif self._should_enter_drop(now, packet):
            self._drop_popped(packet)
            packet = self._pop_head(now)
            self._dropping = True
            # Start closer to the last drop rate if we re-enter quickly.
            delta = self._drop_count - self._last_drop_count
            if delta > 1 and now - self._drop_next < 16 * self.interval:
                self._drop_count = delta
            else:
                self._drop_count = 1
            self._drop_next = self._control_law(now)
            self._last_drop_count = self._drop_count

        if packet is not None:
            for callback in self.on_departure:
                callback(packet, self)
        return packet
