"""Plain FIFO (drop-tail) queue — the paper's baseline discipline."""

from repro.net.queue import DropTailQueue


class FifoQueue(DropTailQueue):
    """Alias of :class:`DropTailQueue` under the name used in scenarios."""
