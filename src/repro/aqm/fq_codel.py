"""FQ-CoDel: per-flow isolation with deficit round-robin + CoDel.

The paper notes (§4.1, "Calculation with queue disciplines") that real
systems default to fq_codel, so the Fortune Teller must read the
statistics of *the RTC flow's own sub-queue*. This class therefore
exposes ``flow_queue(five_tuple)`` so Zhuge can observe a single flow.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.aqm.codel import CoDelQueue
from repro.net.packet import FiveTuple, Packet
from repro.net.queue import DropTailQueue


class FqCoDelQueue(DropTailQueue):
    """Flow-isolating queue aggregate.

    Each five-tuple gets its own :class:`CoDelQueue`; dequeue serves
    sub-queues in deficit round-robin with a per-round ``quantum``.
    The aggregate presents the DropTailQueue interface: ``byte_length``
    and ``packet_length`` sum the sub-queues, ``front_wait_time`` reports
    the wait of the packet that would be dequeued next.
    """

    def __init__(self, capacity_bytes: int = 375_000, name: str = "fq_codel",
                 quantum: int = 1514, target: float = 0.005,
                 interval: float = 0.100):
        super().__init__(capacity_bytes=capacity_bytes, name=name)
        self.quantum = quantum
        self._target = target
        self._interval = interval
        self._flows: dict[FiveTuple, CoDelQueue] = {}
        self._active: deque[FiveTuple] = deque()
        self._deficit: dict[FiveTuple, int] = {}

    # -- flow access (used by Zhuge per §4.1) ------------------------------

    def flow_queue(self, flow: FiveTuple) -> Optional[CoDelQueue]:
        """The sub-queue holding ``flow``'s packets, if it exists."""
        return self._flows.get(flow)

    @property
    def flow_count(self) -> int:
        return len(self._flows)

    # -- aggregate state ---------------------------------------------------

    @property
    def byte_length(self) -> int:
        return sum(q.byte_length for q in self._flows.values())

    @property
    def packet_length(self) -> int:
        return sum(q.packet_length for q in self._flows.values())

    @property
    def is_empty(self) -> bool:
        return not self._active

    def front(self) -> Optional[Packet]:
        flow = self._next_flow_peek()
        if flow is None:
            return None
        return self._flows[flow].front()

    def front_wait_time(self, now: float) -> float:
        head = self.front()
        if head is None or head.enqueued_at is None:
            return 0.0
        return max(0.0, now - head.enqueued_at)

    def _next_flow_peek(self) -> Optional[FiveTuple]:
        for flow in self._active:
            if not self._flows[flow].is_empty:
                return flow
        return None

    # -- mutation ----------------------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> bool:
        if self.byte_length + packet.size > self.capacity_bytes:
            self._drop(packet, "tail-overflow")
            return False
        flow = packet.flow
        sub = self._flows.get(flow)
        if sub is None:
            sub = CoDelQueue(capacity_bytes=self.capacity_bytes,
                             name=f"{self.name}[{flow.src_port}]",
                             target=self._target, interval=self._interval)
            sub.on_drop.append(lambda p, reason: self._sub_drop(p, reason))
            self._flows[flow] = sub
        if flow not in self._deficit:
            self._deficit[flow] = self.quantum
            self._active.append(flow)
        accepted = sub.enqueue(packet, now)
        if accepted:
            self.stats.enqueued += 1
            self.stats.bytes_enqueued += packet.size
            for callback in self.on_arrival:
                callback(packet, self)
        return accepted

    def _sub_drop(self, packet: Packet, reason: str) -> None:
        self.stats.record_drop(packet, reason)
        for callback in self.on_drop:
            callback(packet, reason)

    def dequeue(self, now: float) -> Optional[Packet]:
        rounds = 0
        max_rounds = 2 * len(self._active) + 2
        while self._active and rounds < max_rounds:
            rounds += 1
            flow = self._active[0]
            sub = self._flows[flow]
            if sub.is_empty:
                self._active.popleft()
                del self._deficit[flow]
                del self._flows[flow]
                continue
            head = sub.front()
            if head is not None and self._deficit[flow] < head.size:
                self._deficit[flow] += self.quantum
                self._active.rotate(-1)
                continue
            packet = sub.dequeue(now)
            if packet is None:
                # CoDel dropped the whole sub-queue backlog.
                continue
            self._deficit[flow] -= packet.size
            self.stats.dequeued += 1
            self.stats.bytes_dequeued += packet.size
            for callback in self.on_departure:
                callback(packet, self)
            return packet
        return None

    def clear(self) -> None:
        self._flows.clear()
        self._active.clear()
        self._deficit.clear()

    def drop_all(self, reason: str) -> int:
        """Flush every sub-queue as observable drops (client roam)."""
        dropped = 0
        for sub in self._flows.values():
            # Sub-queue drops propagate through _sub_drop, which fires
            # the aggregate's stats and on_drop callbacks.
            dropped += sub.drop_all(reason)
        self._flows.clear()
        self._active.clear()
        self._deficit.clear()
        return dropped

    def __len__(self) -> int:
        return self.packet_length
