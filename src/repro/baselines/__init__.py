"""AP-side baselines Zhuge is compared against."""

from repro.baselines.fastack import FastAckProxy
from repro.baselines.passthrough import PassthroughAP

__all__ = ["FastAckProxy", "PassthroughAP"]
