"""FastAck (Bhartia et al., IMC 2017): AP-side early TCP acknowledgement.

The AP counterfeits a TCP ACK toward the sender as soon as the 802.11
MAC confirms delivery of a data packet to the client (our wireless
link's delivery event), and suppresses the client's own ACKs for
sequence ranges already acked. This removes the uplink-wireless segment
(iii of Fig. 1) from the control loop — but, unlike Zhuge, the signal
still waits through the downlink queue (i) and downlink wireless (ii),
and the counterfeit ACK stream makes retransmission behaviour more
aggressive (the paper's §7.3 observation).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import ACK_SIZE, FiveTuple, Packet, PacketKind
from repro.sim.engine import Simulator

ForwardCallback = Callable[[Packet], None]


class FastAckProxy:
    """Per-flow early-ACK state machine at the AP."""

    def __init__(self, sim: Simulator, flow: FiveTuple):
        self.sim = sim
        self.flow = flow
        self.forward_uplink: Optional[ForwardCallback] = None
        self._expected_seq = 0        # next in-order byte (AP's view)
        self._out_of_order: dict[int, int] = {}  # seq -> end_seq
        self._highest_acked = 0       # highest counterfeit cumulative ACK
        self.counterfeit_acks = 0
        self.suppressed_acks = 0

    # -- downlink side: wireless delivered a data packet ---------------------

    def on_wireless_delivery(self, packet: Packet) -> None:
        """MAC-layer delivery confirmation => counterfeit an ACK."""
        if packet.flow != self.flow or packet.kind != PacketKind.DATA:
            return
        end_seq = packet.headers.get("end_seq", packet.seq + packet.size)
        if packet.seq >= self._expected_seq:
            self._out_of_order.setdefault(packet.seq, end_seq)
        while self._expected_seq in self._out_of_order:
            self._expected_seq = self._out_of_order.pop(self._expected_seq)
        self._emit_ack()

    def _emit_ack(self) -> None:
        ack = Packet(self.flow.reversed(), ACK_SIZE, PacketKind.ACK,
                     ack=self._expected_seq, sent_at=self.sim.now)
        self._highest_acked = max(self._highest_acked, self._expected_seq)
        self.counterfeit_acks += 1
        if self.forward_uplink is not None:
            self.forward_uplink(ack)

    # -- uplink side: suppress the client's duplicate information -----------------

    def on_uplink(self, packet: Packet,
                  forward: Callable[[Packet], None]) -> None:
        if (packet.kind == PacketKind.ACK
                and packet.flow == self.flow.reversed()
                and packet.ack <= self._highest_acked):
            self.suppressed_acks += 1
            return
        forward(packet)
