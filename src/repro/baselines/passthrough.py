"""Plain AP: forwards both directions untouched (the no-Zhuge baseline)."""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet

ForwardCallback = Callable[[Packet], None]


class PassthroughAP:
    """Baseline access point with no feedback manipulation."""

    def __init__(self) -> None:
        self.forward_downlink: Optional[ForwardCallback] = None
        self.forward_uplink: Optional[ForwardCallback] = None
        self.packets_processed = 0

    def on_downlink(self, packet: Packet) -> None:
        self.packets_processed += 1
        if self.forward_downlink is not None:
            self.forward_downlink(packet)

    def on_uplink(self, packet: Packet) -> None:
        self.packets_processed += 1
        if self.forward_uplink is not None:
            self.forward_uplink(packet)

    def on_data_batch(self, packets: list) -> None:
        """Batch twin of :meth:`on_downlink` (macro event model)."""
        self.packets_processed += len(packets)
        forward = self.forward_downlink
        if forward is not None:
            for packet in packets:
                forward(packet)

    def on_ack_batch(self, packets: list) -> None:
        """Batch twin of :meth:`on_uplink` (macro event model)."""
        self.packets_processed += len(packets)
        forward = self.forward_uplink
        if forward is not None:
            for packet in packets:
                forward(packet)
