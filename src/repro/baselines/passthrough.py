"""Plain AP: forwards both directions untouched (the no-Zhuge baseline)."""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet

ForwardCallback = Callable[[Packet], None]


class PassthroughAP:
    """Baseline access point with no feedback manipulation."""

    def __init__(self) -> None:
        self.forward_downlink: Optional[ForwardCallback] = None
        self.forward_uplink: Optional[ForwardCallback] = None
        self.packets_processed = 0

    def on_downlink(self, packet: Packet) -> None:
        self.packets_processed += 1
        if self.forward_downlink is not None:
            self.forward_downlink(packet)

    def on_uplink(self, packet: Packet) -> None:
        self.packets_processed += 1
        if self.forward_uplink is not None:
            self.forward_uplink(packet)
