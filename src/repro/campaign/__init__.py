"""Declarative, parallel, cached experiment campaigns.

The layer between the simulator and the figure drivers: figure sweeps
are expressed as lists of pure-data :class:`ScenarioSpec` cells and
executed by :func:`run_specs` — in-process, or fanned out over a
process pool with per-cell timeouts, retries, crash isolation, and a
content-addressed result cache. See ``python -m repro campaign --help``
for the CLI entry point.
"""

from repro.campaign.cache import (PruneStats, ResultCache,
                                  default_cache_root)
from repro.campaign.progress import CampaignProgress, ProgressPrinter
from repro.campaign.runner import (CampaignError, CampaignResult, CellResult,
                                   CellTimeout, execute_spec, run_campaign,
                                   run_specs)
from repro.campaign.spec import ScenarioSpec, TraceSpec, code_fingerprint
from repro.campaign.summary import (FlowSummary, MergedSummary,
                                    ScenarioSummary, merge_summaries,
                                    summary_lines)

__all__ = [
    "CampaignError",
    "CampaignProgress",
    "CampaignResult",
    "CellResult",
    "CellTimeout",
    "FlowSummary",
    "MergedSummary",
    "ProgressPrinter",
    "PruneStats",
    "ResultCache",
    "ScenarioSpec",
    "ScenarioSummary",
    "TraceSpec",
    "code_fingerprint",
    "default_cache_root",
    "execute_spec",
    "merge_summaries",
    "run_campaign",
    "run_specs",
    "summary_lines",
]
