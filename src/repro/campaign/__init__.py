"""Declarative, parallel, cached experiment campaigns.

The layer between the simulator and the figure drivers: figure sweeps
are expressed as lists of pure-data :class:`ScenarioSpec` cells and
executed by :func:`run_specs` — in-process, or fanned out over a
process pool with per-cell timeouts, retries, crash isolation, and a
content-addressed result cache. See ``python -m repro campaign --help``
for the CLI entry point.
"""

from repro.campaign.cache import (PruneStats, ResultCache, VerifyReport,
                                  default_cache_root)
from repro.campaign.journal import (CampaignJournal, JournalError,
                                    JournalState, truncate_journal)
from repro.campaign.progress import CampaignProgress, ProgressPrinter
from repro.campaign.runner import (CampaignError, CampaignResult, CellResult,
                                   CellTimeout, execute_spec, run_campaign,
                                   run_specs)
from repro.campaign.supervise import (MemoryWatchdog, WorkerHeartbeat,
                                      cell_deadline, rss_bytes, timeout_mode)
from repro.campaign.spec import ScenarioSpec, TraceSpec, code_fingerprint
from repro.campaign.summary import (FlowSummary, MergedSummary,
                                    ScenarioSummary, merge_summaries,
                                    summary_lines)

__all__ = [
    "CampaignError",
    "CampaignJournal",
    "CampaignProgress",
    "CampaignResult",
    "CellResult",
    "CellTimeout",
    "JournalError",
    "JournalState",
    "MemoryWatchdog",
    "VerifyReport",
    "WorkerHeartbeat",
    "FlowSummary",
    "MergedSummary",
    "ProgressPrinter",
    "PruneStats",
    "ResultCache",
    "ScenarioSpec",
    "ScenarioSummary",
    "TraceSpec",
    "code_fingerprint",
    "default_cache_root",
    "execute_spec",
    "merge_summaries",
    "cell_deadline",
    "rss_bytes",
    "run_campaign",
    "run_specs",
    "summary_lines",
    "timeout_mode",
    "truncate_journal",
]
