"""Content-addressed result cache for campaign cells.

One JSON file per (spec, code-version) pair, keyed by
:meth:`ScenarioSpec.content_hash`. Because the key covers a fingerprint
of the whole ``repro`` source tree, editing the simulator silently
orphans every old entry instead of serving stale results. Corrupted or
foreign files are treated as misses (and removed), never as errors — a
damaged cache can only cost recomputation.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.spec import (SPEC_SCHEMA_VERSION, ScenarioSpec,
                                 code_fingerprint)
from repro.campaign.summary import ScenarioSummary

#: Environment override for the cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR``, else XDG cache, else ``~/.cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-campaign"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0  # corrupted entries removed on read


@dataclass
class PruneStats:
    """Outcome of one :meth:`ResultCache.prune` pass."""

    kept: int = 0
    kept_bytes: int = 0
    pruned: int = 0
    pruned_bytes: int = 0


@dataclass
class ResultCache:
    """Spec-hash -> summary store under ``root`` (created lazily)."""

    root: Path = field(default_factory=default_cache_root)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: ScenarioSpec) -> ScenarioSummary | None:
        """The cached summary for ``spec``, or None on any miss."""
        key = spec.content_hash()
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            if (payload["schema"] != SPEC_SCHEMA_VERSION
                    or payload["key"] != key
                    or payload["code"] != code_fingerprint()):
                raise ValueError("cache entry does not match current code")
            summary = ScenarioSummary.from_dict(payload["summary"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupted / foreign entry: drop it and recompute the cell.
            self.stats.misses += 1
            self.stats.evictions += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        # Touch the entry so prune()'s recency order reflects *use*, not
        # just creation: a hot entry written long ago outlives a cold
        # one written yesterday.
        try:
            os.utime(path)
        except OSError:
            pass
        return summary

    def put(self, spec: ScenarioSpec, summary: ScenarioSummary) -> Path:
        """Atomically persist ``summary`` under the spec's hash."""
        key = spec.content_hash()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": SPEC_SCHEMA_VERSION,
                   "key": key,
                   "code": code_fingerprint(),
                   "spec": spec.as_dict(),
                   "summary": summary.as_dict()}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def prune(self, max_bytes: int) -> PruneStats:
        """Shrink the store to ``max_bytes``, dropping least-recently-used
        entries first.

        Recency is file mtime — refreshed by :meth:`get` on every hit —
        so the entries that survive are the ones campaigns actually
        replay. Entries that vanish mid-scan (a concurrent campaign
        pruning the same root) are skipped, never an error.
        """
        stats = PruneStats()
        entries: list[tuple[float, int, Path]] = []
        for path in self.root.glob("*/*.json"):
            try:
                meta = path.stat()
            except OSError:
                continue
            entries.append((meta.st_mtime, meta.st_size, path))
        # Newest first; keep while under budget, unlink the rest.
        entries.sort(key=lambda item: item[0], reverse=True)
        for mtime, size, path in entries:
            if stats.kept_bytes + size <= max_bytes:
                stats.kept += 1
                stats.kept_bytes += size
                continue
            try:
                path.unlink()
            except OSError:
                continue
            stats.pruned += 1
            stats.pruned_bytes += size
        return stats


def resolve_cache(cache) -> ResultCache | None:
    """Normalize the ``cache=`` argument accepted by the runner.

    ``None``/``False`` -> no caching; ``True`` -> the default root; a
    path -> a cache rooted there; a :class:`ResultCache` -> itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(root=Path(cache))
