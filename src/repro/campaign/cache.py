"""Content-addressed result cache for campaign cells.

One checksummed file per (spec, code-version) pair, keyed by
:meth:`ScenarioSpec.content_hash`. Because the key covers a fingerprint
of the whole ``repro`` source tree, editing the simulator silently
orphans every old entry instead of serving stale results.

Integrity model — a damaged cache can only ever cost recomputation,
never a crash and never a silently-wrong figure:

* **atomic writes** — :meth:`ResultCache.put` serializes to a temp
  file, ``fsync``'s it, and atomically renames; a SIGKILL mid-put
  leaves either the old entry or the new one, never a truncated file
  at the entry path;
* **per-entry checksums** — every entry is a two-line file: a header
  carrying the sha256 of the body, then the body JSON. :meth:`get`
  re-hashes the body on every hit, so bit rot, torn writes from
  foreign tools, or hand-edits are detected *before* deserialization;
* **quarantine, not raise** — an entry that fails parsing or its
  checksum is moved to ``<root>/quarantine/`` (suffix ``.corrupt``)
  with a one-line ``harness`` warning and treated as a miss: the cell
  recomputes cold and the damaged bytes stay available for forensics.
  Entries that are merely *stale* (schema/code-fingerprint mismatch
  from an older build) are deleted silently, as before;
* **auditability** — :meth:`verify` (surfaced as ``repro cache
  verify``) scans the whole store and reports valid / stale /
  corrupt counts without recomputing anything.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.campaign.spec import (SPEC_SCHEMA_VERSION, ScenarioSpec,
                                 code_fingerprint)
from repro.campaign.summary import ScenarioSummary
from repro.obs.events import WARN
from repro.obs.harness import harness_event

#: Environment override for the cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory (under the cache root) where corrupt entries are moved.
QUARANTINE_DIR = "quarantine"

#: Entry-reader statuses.
_OK = "ok"
_STALE = "stale"
_CORRUPT = "corrupt"
_MISSING = "missing"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR``, else XDG cache, else ``~/.cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-campaign"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0    # stale entries removed on read
    quarantined: int = 0  # corrupt entries moved aside on read


@dataclass
class PruneStats:
    """Outcome of one :meth:`ResultCache.prune` pass."""

    kept: int = 0
    kept_bytes: int = 0
    pruned: int = 0
    pruned_bytes: int = 0


@dataclass
class VerifyReport:
    """Outcome of one :meth:`ResultCache.verify` scan."""

    scanned: int = 0
    valid: int = 0
    stale: int = 0
    corrupt: int = 0            # found (and quarantined) this scan
    quarantined_total: int = 0  # files sitting in quarantine/ afterwards
    corrupt_entries: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.corrupt == 0

    def lines(self) -> list:
        return [
            f"cache verify: {self.scanned} entries scanned — "
            f"{self.valid} valid, {self.stale} stale, "
            f"{self.corrupt} corrupt",
            f"  quarantine holds {self.quarantined_total} file(s)",
        ] + [f"  quarantined: {name}" for name in self.corrupt_entries]


def _entry_blob(body_blob: bytes) -> bytes:
    """The on-disk bytes for a serialized entry body."""
    check = hashlib.sha256(body_blob).hexdigest()
    header = json.dumps({"check": check}).encode("utf-8")
    return header + b"\n" + body_blob


def _read_entry(path: Path) -> tuple[str, Optional[dict], str]:
    """Parse + checksum one entry file: ``(status, body, reason)``.

    ``corrupt`` covers anything that cannot be byte-verified (torn
    file, checksum mismatch, undecodable JSON); ``stale`` covers
    well-formed entries from another code version or the pre-checksum
    format.
    """
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return _MISSING, None, "missing"
    except OSError as exc:
        return _CORRUPT, None, f"unreadable: {exc}"
    header, sep, body_blob = blob.partition(b"\n")
    if not sep:
        return _CORRUPT, None, "no header/body split (truncated?)"
    try:
        check = json.loads(header)["check"]
    except (ValueError, KeyError, TypeError):
        # No checksum header. A fully-parseable old-format entry is
        # stale (written before checksums); anything else is corrupt.
        try:
            payload = json.loads(blob)
        except ValueError:
            return _CORRUPT, None, "undecodable header"
        if isinstance(payload, dict) and "schema" in payload:
            return _STALE, None, "pre-checksum entry format"
        return _CORRUPT, None, "foreign JSON without checksum"
    if hashlib.sha256(body_blob).hexdigest() != check:
        return _CORRUPT, None, "checksum mismatch"
    try:
        body = json.loads(body_blob)
    except ValueError:
        return _CORRUPT, None, "checksummed body is not JSON"
    if not isinstance(body, dict):
        return _CORRUPT, None, "body is not an object"
    return _OK, body, ""


@dataclass
class ResultCache:
    """Spec-hash -> summary store under ``root`` (created lazily)."""

    root: Path = field(default_factory=default_cache_root)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside; never raises, never re-serves."""
        dest = self.quarantine_root / f"{path.name}.corrupt"
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return  # cannot even remove it: repeat miss, not a crash
        self.stats.quarantined += 1
        harness_event("quarantine", severity=WARN, entry=path.name,
                      reason=reason)

    def _evict(self, path: Path) -> None:
        self.stats.evictions += 1
        try:
            path.unlink()
        except OSError:
            pass

    def _body_matches(self, body: dict, key: str) -> bool:
        try:
            return (body["schema"] == SPEC_SCHEMA_VERSION
                    and body["key"] == key
                    and body["code"] == code_fingerprint())
        except (KeyError, TypeError):
            return False

    def get(self, spec: ScenarioSpec) -> ScenarioSummary | None:
        """The cached summary for ``spec``, or None on any miss.

        A corrupt entry (truncated write from a killed foreign process,
        bit rot, hand damage) is quarantined and reported as a miss —
        it can never raise out of the cache layer, and it can never
        poison a warm re-run, because the checksum is verified before a
        single summary field is deserialized.
        """
        key = spec.content_hash()
        path = self.path_for(key)
        status, body, reason = _read_entry(path)
        if status == _MISSING:
            self.stats.misses += 1
            return None
        if status == _CORRUPT:
            self.stats.misses += 1
            self._quarantine(path, reason)
            return None
        if status == _STALE or not self._body_matches(body, key):
            self.stats.misses += 1
            self._evict(path)
            return None
        try:
            summary = ScenarioSummary.from_dict(body["summary"])
        except Exception:
            # Checksum-valid but undeserializable: written by buggy or
            # incompatible code. Same playbook — set aside, recompute.
            self.stats.misses += 1
            self._quarantine(path, "summary failed to deserialize")
            return None
        self.stats.hits += 1
        # Touch the entry so prune()'s recency order reflects *use*, not
        # just creation: a hot entry written long ago outlives a cold
        # one written yesterday.
        try:
            os.utime(path)
        except OSError:
            pass
        return summary

    def put(self, spec: ScenarioSpec, summary: ScenarioSummary) -> Path:
        """Atomically persist ``summary`` under the spec's hash.

        temp write + fsync + rename: a concurrent reader (or a kill -9
        between any two instructions here) sees the old entry or the
        complete new one — never a torn file.
        """
        key = spec.content_hash()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = {"schema": SPEC_SCHEMA_VERSION,
                "key": key,
                "code": code_fingerprint(),
                "spec": spec.as_dict(),
                "summary": summary.as_dict()}
        blob = _entry_blob(json.dumps(body).encode("utf-8"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def verify(self) -> VerifyReport:
        """Audit every entry: checksum + schema/key/code + payload shape.

        Corrupt entries are quarantined as they are found (exactly what
        :meth:`get` would have done on first touch), stale ones are
        left in place (harmless: the next ``get`` evicts them), and the
        report counts everything. ``repro cache verify`` surfaces this.
        """
        report = VerifyReport()
        for path in sorted(self.root.glob("*/*.json")):
            if path.parent.name == QUARANTINE_DIR:
                continue
            report.scanned += 1
            status, body, reason = _read_entry(path)
            key = path.stem
            if status == _OK and self._body_matches(body, key):
                try:
                    ScenarioSummary.from_dict(body["summary"])
                except Exception:
                    status, reason = _CORRUPT, "summary failed to deserialize"
                else:
                    report.valid += 1
                    continue
            if status == _CORRUPT:
                report.corrupt += 1
                report.corrupt_entries.append(path.name)
                self._quarantine(path, reason)
            else:
                report.stale += 1
        try:
            report.quarantined_total = sum(
                1 for _ in self.quarantine_root.iterdir())
        except OSError:
            report.quarantined_total = 0
        return report

    def prune(self, max_bytes: int) -> PruneStats:
        """Shrink the store to ``max_bytes``, dropping least-recently-used
        entries first.

        Recency is file mtime — refreshed by :meth:`get` on every hit —
        so the entries that survive are the ones campaigns actually
        replay. Entries that vanish mid-scan (a concurrent campaign
        pruning the same root) are skipped, never an error. The
        quarantine directory is out of scope: damaged evidence is only
        ever removed explicitly.
        """
        stats = PruneStats()
        entries: list[tuple[float, int, Path]] = []
        for path in self.root.glob("*/*.json"):
            if path.parent.name == QUARANTINE_DIR:
                continue
            try:
                meta = path.stat()
            except OSError:
                continue
            entries.append((meta.st_mtime, meta.st_size, path))
        # Newest first; keep while under budget, unlink the rest.
        entries.sort(key=lambda item: item[0], reverse=True)
        for mtime, size, path in entries:
            if stats.kept_bytes + size <= max_bytes:
                stats.kept += 1
                stats.kept_bytes += size
                continue
            try:
                path.unlink()
            except OSError:
                continue
            stats.pruned += 1
            stats.pruned_bytes += size
        return stats


def resolve_cache(cache) -> ResultCache | None:
    """Normalize the ``cache=`` argument accepted by the runner.

    ``None``/``False`` -> no caching; ``True`` -> the default root; a
    path -> a cache rooted there; a :class:`ResultCache` -> itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(root=Path(cache))
