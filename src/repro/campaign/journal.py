"""Crash-safe campaign journal: checkpoint/resume for long sweeps.

A 1000-AP city campaign that dies 90% through (preemption, OOM kill,
``kill -9``) used to lose everything: the streaming
:class:`~repro.city.merge.FleetAccumulator` state lived only in memory
and every completed-but-uncached shard had to recompute. The journal
makes campaign progress durable:

* one **JSONL record per terminal cell** — spec hash, outcome,
  attempts, and (for successful cells in cache-less runs) the full
  summary payload, so a resumed run can restore the cell without
  recomputing; when a result cache is active the record stays tiny and
  resume restores summaries through the cache instead — the sample
  series is never serialized twice;
* periodic **checkpoint records** carrying opaque consumer state (the
  fleet accumulator's :meth:`~repro.city.merge.FleetAccumulator.to_state`
  snapshot), so a resume refolds only the cells journaled after the
  last checkpoint instead of the whole fleet;
* a **header record** binding the journal to the exact spec list and
  code fingerprint, so a stale journal can never silently resume a
  different campaign.

Durability model: records are appended and ``fsync``'d per batch
(``flush_every`` records, default every record), so everything before a
crash is on disk. A SIGKILL mid-append can leave at most one torn tail
line; :meth:`CampaignJournal.load` detects it (JSON parse failure on
the final line), drops it, and :meth:`CampaignJournal.open` truncates
the file back to the last complete record before appending again —
a torn tail costs one cell, never the journal. The initial create and
every rewrite go through write-temp + ``fsync`` + atomic ``os.replace``
so a journal file, once visible, is always structurally valid.

Resuming with ``run_campaign(journal=..., resume=True)`` must be
bit-identical to never having crashed: the kill-vs-whole fleet-digest
pin in ``tests/test_chaos.py`` and the CI ``chaos-smoke`` job hold the
journal to the same bit-exactness contract as the sharder.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

JOURNAL_SCHEMA = 1

KIND_HEADER = "header"
KIND_CELL = "cell"
KIND_CHECKPOINT = "checkpoint"
KIND_RESUME = "resume"


class JournalError(RuntimeError):
    """The journal cannot be used (mismatched campaign, bad schema)."""


def _keys_hash(keys: Sequence[str]) -> str:
    """Order-sensitive digest of the campaign's spec-hash list."""
    blob = "\n".join(keys).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class JournalState:
    """Everything :meth:`CampaignJournal.load` recovered from disk."""

    path: Path
    header: Optional[dict] = None
    #: Last terminal record per cell index (a retried cell's newest
    #: record wins).
    cells: dict = field(default_factory=dict)
    #: Latest consumer checkpoint payload, or None.
    checkpoint: Optional[dict] = None
    #: How many records were dropped as a torn tail (0 or 1).
    torn: int = 0
    #: Byte offset of the end of the last complete record.
    valid_bytes: int = 0
    #: How many resume markers the journal carries (prior crashes).
    resumes: int = 0

    def completed(self) -> dict:
        """Cell records that finished ``ok`` (index -> record)."""
        return {index: record for index, record in self.cells.items()
                if record.get("status") == "ok"}


class CampaignJournal:
    """Append-only JSONL journal for one campaign's terminal cells.

    Use :meth:`open` (or ``run_campaign(journal=path)``) rather than
    writing records by hand; the writer owns batching and fsync.
    """

    def __init__(self, path, flush_every: int = 1) -> None:
        self.path = Path(path)
        self.flush_every = max(1, int(flush_every))
        self._pending: list[str] = []
        self._fd: Optional[int] = None

    # -- reading ------------------------------------------------------------

    @staticmethod
    def load(path) -> JournalState:
        """Parse a journal, tolerating a torn tail record.

        A missing file yields an empty state (fresh campaign). Torn or
        foreign trailing bytes are *reported*, never raised: a crashed
        appender costs one record, not the run.
        """
        state = JournalState(path=Path(path))
        try:
            blob = state.path.read_bytes()
        except FileNotFoundError:
            return state
        offset = 0
        for line in blob.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                state.torn = 1
                break
            stripped = line.strip()
            if stripped:
                try:
                    record = json.loads(stripped)
                except ValueError:
                    state.torn = 1
                    break
                CampaignJournal._fold(state, record)
            offset += len(line)
        state.valid_bytes = offset
        return state

    @staticmethod
    def _fold(state: JournalState, record: dict) -> None:
        kind = record.get("kind")
        if kind == KIND_HEADER:
            state.header = record
        elif kind == KIND_CELL:
            state.cells[record["index"]] = record
        elif kind == KIND_CHECKPOINT:
            state.checkpoint = record.get("state")
        elif kind == KIND_RESUME:
            state.resumes += 1

    # -- writing ------------------------------------------------------------

    def open(self, keys: Sequence[str], *, resume: bool = False,
             meta: Optional[dict] = None) -> JournalState:
        """Start (or continue) journaling a campaign over ``keys``.

        ``keys`` are the cells' spec content-hashes in input order; the
        header pins their digest so a journal can only ever resume the
        exact campaign that wrote it. With ``resume=False`` an existing
        file is atomically replaced by a fresh header; with
        ``resume=True`` the existing records are loaded, a torn tail is
        truncated away, and a resume marker is appended.
        """
        keys = list(keys)
        header = {"kind": KIND_HEADER, "schema": JOURNAL_SCHEMA,
                  "total": len(keys), "keys_hash": _keys_hash(keys)}
        if meta:
            header["meta"] = meta
        state = self.load(self.path)
        if not resume or state.header is None:
            # Fresh journal (or resume of a file that never got a
            # header — nothing to preserve): atomic create.
            self._create(header)
            fresh = JournalState(path=self.path, header=header)
            fresh.valid_bytes = self.path.stat().st_size
            if resume:
                self._append_now([json.dumps({"kind": KIND_RESUME})])
            return fresh
        if state.header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {self.path} has schema "
                f"{state.header.get('schema')!r}, expected {JOURNAL_SCHEMA}")
        if (state.header.get("keys_hash") != header["keys_hash"]
                or state.header.get("total") != len(keys)):
            raise JournalError(
                f"journal {self.path} was written by a different campaign "
                f"({state.header.get('total')} cells, keys hash "
                f"{str(state.header.get('keys_hash'))[:12]}...); refusing "
                f"to resume {len(keys)} mismatched cells")
        # Drop any torn tail so the next append starts on a record
        # boundary — appending after a half-written line would fuse two
        # records into garbage.
        if state.torn or state.valid_bytes != self.path.stat().st_size:
            with open(self.path, "r+b") as handle:
                handle.truncate(state.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        self._append_now([json.dumps({"kind": KIND_RESUME})])
        return state

    def _create(self, header: dict) -> None:
        """Write a fresh journal containing only ``header``, atomically."""
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path.parent,
                                   suffix=".journal.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(header) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        """Make the rename itself durable (best effort off POSIX)."""
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self._fd = os.open(self.path,
                               os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                               0o644)
        return self._fd

    def _append_now(self, lines: Sequence[str]) -> None:
        fd = self._ensure_fd()
        os.write(fd, ("".join(line + "\n" for line in lines)).encode("utf-8"))
        os.fsync(fd)

    def record_cell(self, *, index: int, key: str, status: str,
                    cached: bool = False, attempts: int = 0,
                    error: Optional[str] = None,
                    summary: Optional[dict] = None) -> None:
        """Append one terminal cell record (batched per ``flush_every``)."""
        record = {"kind": KIND_CELL, "index": index, "key": key,
                  "status": status, "cached": cached, "attempts": attempts}
        if error is not None:
            record["error"] = error
        if summary is not None:
            record["summary"] = summary
        self._pending.append(json.dumps(record))
        if len(self._pending) >= self.flush_every:
            self.flush()

    def checkpoint(self, state: dict, *, after: int) -> None:
        """Append an opaque consumer checkpoint (flushes the batch first,
        so a checkpoint never lands ahead of the cells it covers)."""
        self.flush()
        self._append_now([json.dumps(
            {"kind": KIND_CHECKPOINT, "after": after, "state": state})])

    def flush(self) -> None:
        """Durably append every pending record (one write + one fsync)."""
        if self._pending:
            lines, self._pending = self._pending, []
            self._append_now(lines)

    def close(self) -> None:
        self.flush()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def truncate_journal(path, *, keep_cells: int,
                     torn_tail: bool = False) -> int:
    """Chop a journal back to its first ``keep_cells`` cell records.

    Chaos/test helper simulating a crash mid-campaign (optionally
    mid-append: ``torn_tail`` leaves half of the next record's bytes
    with no newline). Returns how many cell records remain.
    """
    path = Path(path)
    lines = path.read_bytes().splitlines(keepends=True)
    kept: list[bytes] = []
    cells = 0
    cut: Optional[bytes] = None
    for line in lines:
        record = json.loads(line) if line.strip() else {}
        if record.get("kind") == KIND_CELL:
            if cells >= keep_cells:
                cut = line
                break
            cells += 1
        elif record.get("kind") == KIND_CHECKPOINT and cells >= keep_cells:
            cut = line
            break
        kept.append(line)
    blob = b"".join(kept)
    if torn_tail and cut is not None:
        blob += cut[:max(1, len(cut) // 2)].rstrip(b"\n")
    path.write_bytes(blob)
    return cells
