"""Structured campaign progress telemetry.

Mirrors the ``repro.metrics.hotpath`` style: plain-dataclass counters
with an ``as_dict`` view, cheap enough to update on every cell event.
The runner owns one :class:`CampaignProgress` and invokes the caller's
callback as ``callback(event, cell, progress)`` after every cell
completion, cache hit, retry, or terminal failure; :class:`ProgressPrinter`
is the stock callback the CLI uses.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, dataclass, field

#: Event names passed to progress callbacks.
EVENT_OK = "ok"
EVENT_CACHED = "cached"
EVENT_FAILED = "failed"
EVENT_RETRY = "retry"
EVENT_RESUMED = "resumed"


@dataclass
class CampaignProgress:
    """Counters for one campaign run."""

    total: int = 0
    done: int = 0          # terminal cells (ok + cached + failed)
    ok: int = 0            # computed successfully this run
    cached: int = 0        # served from the result cache
    failed: int = 0        # exhausted their retry budget
    retries: int = 0       # attempts beyond each cell's first
    resumed: int = 0       # restored from a resume journal
    hung_kills: int = 0    # workers SIGKILLed past the hang deadline
    #: False when any attempt ran with the per-cell timeout silently
    #: disabled (no enforcement mechanism available at all) — so "no
    #: timeouts fired" can be distinguished from "timeouts could not
    #: fire".
    timeout_enforced: bool = True
    #: Attempts per enforcement mechanism ("signal", "thread", "off",
    #: "none") — see :mod:`repro.campaign.supervise`.
    timeout_modes: dict = field(default_factory=dict)
    started_at: float = field(default_factory=time.monotonic)

    def note_timeout(self, mode, enforced: bool = True) -> None:
        """Fold one attempt's timeout telemetry into the counters."""
        self.timeout_enforced = self.timeout_enforced and enforced
        if mode:
            self.timeout_modes[mode] = self.timeout_modes.get(mode, 0) + 1

    def elapsed_s(self) -> float:
        return max(time.monotonic() - self.started_at, 1e-9)

    def cells_per_sec(self) -> float:
        return self.done / self.elapsed_s()

    def eta_s(self) -> float:
        """Naive remaining-time estimate from the realized cell rate."""
        remaining = self.total - self.done
        rate = self.cells_per_sec()
        if remaining <= 0 or rate <= 0:
            return 0.0
        return remaining / rate

    def as_dict(self) -> dict:
        payload = asdict(self)
        del payload["started_at"]
        payload["elapsed_s"] = self.elapsed_s()
        payload["cells_per_sec"] = self.cells_per_sec()
        payload["eta_s"] = self.eta_s()
        return payload

    def line(self) -> str:
        """One-line telemetry summary for log output."""
        return (f"[{self.done}/{self.total}] "
                f"ok={self.ok} cached={self.cached} failed={self.failed} "
                f"retries={self.retries} "
                f"{self.cells_per_sec():.2f} cells/s "
                f"eta {self.eta_s():.0f}s")


class ProgressPrinter:
    """Stock progress callback: one line per cell event."""

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: str, cell, progress: CampaignProgress) -> None:
        detail = cell.spec.label()
        if event == EVENT_FAILED and cell.error:
            detail += f" ({cell.error})"
        elif event == EVENT_RETRY and cell.error:
            detail += f" (attempt {cell.attempts} failed: {cell.error})"
        print(f"{progress.line()} {event}: {detail}",
              file=self.stream, flush=True)
