"""Parallel, cached, fault-tolerant execution of scenario campaigns.

:func:`run_campaign` fans a list of :class:`ScenarioSpec` cells out over
a :class:`concurrent.futures.ProcessPoolExecutor` (``jobs >= 2``) or an
in-process loop (``jobs <= 1``), with:

* **per-cell timeouts** — enforced *inside* the worker: ``SIGALRM`` on
  a POSIX main thread, a watchdog-thread async exception anywhere else
  (see :mod:`repro.campaign.supervise`); which mechanism ran is
  reported per attempt as ``timeout_mode`` telemetry;
* **bounded retry with exponential backoff** — every failure consumes
  one attempt; a cell becomes terminal after ``retries`` extra attempts;
* **crash isolation** — a worker that dies outright (``os._exit``,
  segfault, OOM kill) breaks the pool; the runner records a failed
  attempt for the cells that were in flight, rebuilds the pool, and
  resumes *one cell at a time* until a worker round-trip succeeds, so
  a repeat-crasher burns only its own retry budget instead of taking
  innocent in-flight cells down with it;
* **hung-worker supervision** — with ``hang_timeout`` set, pool workers
  heartbeat their pid and in-flight cell index to a scratch directory;
  a cell still in flight past the deadline gets its worker SIGKILLed,
  which re-enters the crash-isolation path above (kill, rebuild,
  retry) instead of stalling the campaign forever;
* **deterministic ordering** — results come back in input order no
  matter which cells finished first;
* **content-addressed caching** — cells whose spec hash is already in
  the :class:`ResultCache` are served without touching a worker;
* **journaled checkpoint/resume** — with ``journal=`` set, every
  terminal cell is appended to a crash-safe JSONL journal (see
  :mod:`repro.campaign.journal`) and consumer state (e.g. the fleet
  accumulator) is checkpointed every ``checkpoint_every`` cells;
  ``resume=True`` restores completed cells from the journal instead of
  recomputing them, bit-identically to an uninterrupted run.

The scenario simulation itself is a pure function of the spec, so a
summary computed in-process, in a subprocess, replayed from the cache,
or restored from a journal is bit-identical.

Persistence ordering per cell: the ``consume`` callback runs *first*;
only after it returns is the summary written to the cache and the
journal. A consume callback that raises therefore aborts the campaign
with that cell unrecorded everywhere — a resume recomputes it and
re-consumes, instead of serving a cell whose consumption never
actually happened.
"""

from __future__ import annotations

import tempfile
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.campaign.cache import resolve_cache
from repro.campaign.journal import CampaignJournal
from repro.campaign.progress import (EVENT_CACHED, EVENT_FAILED, EVENT_OK,
                                     EVENT_RESUMED, EVENT_RETRY,
                                     CampaignProgress)
from repro.campaign.spec import ScenarioSpec
from repro.campaign.summary import ScenarioSummary
from repro.campaign.supervise import (TIMEOUT_NONE, TIMEOUT_OFF,
                                      WorkerHeartbeat, cell_deadline,
                                      kill_worker, read_heartbeats,
                                      timeout_mode)
from repro.experiments.scenario import run_scenario
from repro.obs.events import WARN
from repro.obs.harness import harness_event

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_PENDING = "pending"

#: Default cells-between-checkpoints when journaling with a
#: ``checkpoint_state`` provider.
CHECKPOINT_EVERY = 8


class CampaignError(RuntimeError):
    """Raised by :func:`run_specs` when any cell failed terminally."""


class CellTimeout(Exception):
    """A cell exceeded its wall-clock budget."""


@dataclass
class CellResult:
    """Terminal state of one campaign cell."""

    index: int
    spec: ScenarioSpec
    status: str = STATUS_PENDING
    summary: Optional[ScenarioSummary] = None
    error: Optional[str] = None
    attempts: int = 0
    cached: bool = False
    #: True when this cell was restored from a resume journal instead
    #: of being computed (or cache-served) in this run.
    resumed: bool = False
    wall_s: float = 0.0
    #: Flight-recorder tail from the last failed attempt, when the cell
    #: was traced (see :meth:`repro.obs.session.TraceSession.dump_on_error`).
    flight_dump: Optional[str] = None


@dataclass
class CampaignResult:
    """All cells of one campaign, in input order."""

    cells: list[CellResult]
    progress: CampaignProgress
    wall_s: float = 0.0

    @property
    def ok(self) -> int:
        return sum(1 for c in self.cells if c.status == STATUS_OK)

    @property
    def failed(self) -> int:
        return sum(1 for c in self.cells if c.status == STATUS_FAILED)

    @property
    def cached(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def resumed(self) -> int:
        return sum(1 for c in self.cells if c.resumed)

    def failures(self) -> list[CellResult]:
        return [c for c in self.cells if c.status == STATUS_FAILED]

    def summaries(self) -> list[ScenarioSummary]:
        """Summaries in input order; raises if any cell failed."""
        bad = self.failures()
        if bad:
            detail = "; ".join(f"cell {c.index} [{c.spec.label()}]: {c.error}"
                               for c in bad[:5])
            raise CampaignError(
                f"{len(bad)} of {len(self.cells)} cells failed: {detail}")
        return [c.summary for c in self.cells]


# -- worker side ---------------------------------------------------------------


_UNENFORCED_WARNED = False


def execute_spec(spec: ScenarioSpec,
                 timeout: Optional[float] = None) -> ScenarioSummary:
    """Run one cell in this process and summarize it.

    This is the whole worker: materialize the config, simulate, condense
    to the picklable summary. The full recorders never leave the worker.
    """
    with cell_deadline(timeout, CellTimeout):
        result = run_scenario(spec.to_config())
        return ScenarioSummary.from_result(result, spec)


def _cell_payload(worker: Optional[Callable], spec: ScenarioSpec,
                  timeout: Optional[float]) -> dict:
    """Run one attempt, converting Python-level errors into a payload.

    Only hard process death (or ``BaseException`` escapees like
    ``SystemExit``) can reach the pool machinery; ordinary exceptions
    and timeouts fail just this attempt. The payload reports which
    timeout mechanism guarded the attempt (``timeout_mode``).
    """
    global _UNENFORCED_WARNED
    mode = timeout_mode(timeout)
    if mode == TIMEOUT_NONE and not _UNENFORCED_WARNED:
        _UNENFORCED_WARNED = True
        warnings.warn(
            "per-cell timeout requested but no enforcement mechanism is "
            "available on this platform/thread; cells run without a "
            "wall-clock limit", RuntimeWarning, stacklevel=3)
    enforced = mode != TIMEOUT_NONE
    try:
        with cell_deadline(timeout, CellTimeout, mode=mode):
            if worker is not None:
                summary = worker(spec)
            else:
                summary = execute_spec(spec)
    except CellTimeout as exc:
        detail = str(exc) or f"cell exceeded {timeout:g}s timeout"
        return {"ok": False, "kind": "timeout", "error": detail,
                "timeout_enforced": enforced, "timeout_mode": mode}
    except Exception as exc:
        return {"ok": False, "kind": "exception",
                "error": f"{type(exc).__name__}: {exc}",
                "flight_dump": getattr(exc, "flight_dump", None),
                "timeout_enforced": enforced, "timeout_mode": mode}
    return {"ok": True, "summary": summary.as_dict(),
            "timeout_enforced": enforced, "timeout_mode": mode}


def _pool_cell(worker: Optional[Callable], spec_payload: dict,
               timeout: Optional[float],
               heartbeat: Optional[tuple] = None) -> dict:
    """Module-level pool entry point (must stay picklable).

    ``heartbeat`` is ``(directory, cell_index)`` when the parent runs
    hung-worker supervision: the worker stamps its pid/cell mapping
    for the whole attempt so the parent can kill it by deadline.
    """
    spec = ScenarioSpec.from_dict(spec_payload)
    if heartbeat is None:
        return _cell_payload(worker, spec, timeout)
    hb_dir, index = heartbeat
    with WorkerHeartbeat(hb_dir, index):
        return _cell_payload(worker, spec, timeout)


# -- campaign driver -----------------------------------------------------------


def run_campaign(specs: Sequence[ScenarioSpec], *,
                 jobs: int = 0,
                 cache=None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 backoff_s: float = 0.25,
                 progress: Optional[Callable] = None,
                 worker: Optional[Callable] = None,
                 consume: Optional[Callable] = None,
                 journal=None,
                 resume: bool = False,
                 checkpoint_state: Optional[Callable] = None,
                 checkpoint_every: int = CHECKPOINT_EVERY,
                 hang_timeout: Optional[float] = None) -> CampaignResult:
    """Execute ``specs`` and return per-cell results in input order.

    ``jobs <= 1`` runs cells in this process (still cache-aware);
    ``jobs >= 2`` uses a process pool of that many workers. ``cache``
    accepts ``None``/``True``/a directory/a :class:`ResultCache`.
    ``worker`` overrides the cell body (``worker(spec) -> summary``) —
    used by tests to inject failures; it must be picklable for pools.

    ``consume`` turns the campaign into a stream: it is called once per
    successful cell (``consume(cell)``, completion order, cache hits
    included) while ``cell.summary`` is populated, after which the
    summary is *released* — the returned :class:`CampaignResult` keeps
    status/error/telemetry per cell but ``summary=None``. This bounds
    peak memory to one in-flight summary plus whatever the consumer
    retains, which is what lets a 1000-AP sharded city campaign stream
    per-shard summaries into an incremental fleet merge instead of
    holding every per-flow sample series at once.

    ``journal`` (a path or :class:`CampaignJournal`) makes progress
    durable: every terminal cell is appended, fsync'd, to a JSONL
    journal, and — when ``checkpoint_state`` is provided — its dict
    snapshot is checkpointed every ``checkpoint_every`` completions.
    ``resume=True`` replays journaled cells (status, summary, consume
    callback) before computing anything; previously *failed* cells get
    a fresh retry budget. ``hang_timeout`` (pool mode) SIGKILLs any
    worker whose cell exceeds that wall-clock deadline and retries it.
    """
    specs = list(specs)
    store = resolve_cache(cache)
    stats = CampaignProgress(total=len(specs))
    cells = [CellResult(index=i, spec=spec) for i, spec in enumerate(specs)]
    started = time.monotonic()

    if resume and journal is None:
        raise ValueError("resume=True requires journal=")
    journal_obj: Optional[CampaignJournal] = None
    journaled_state = None
    if journal is not None:
        journal_obj = (journal if isinstance(journal, CampaignJournal)
                       else CampaignJournal(journal))
        keys = [spec.content_hash() for spec in specs]
        journaled_state = journal_obj.open(keys, resume=resume)

    # Mutable checkpoint cadence counter shared by the closures below.
    ckpt = {"since": 0}

    def emit(event: str, cell: CellResult) -> None:
        if progress is not None:
            progress(event, cell, stats)

    def maybe_checkpoint(force: bool = False) -> None:
        if journal_obj is None or checkpoint_state is None:
            return
        if not force and ckpt["since"] < max(1, checkpoint_every):
            return
        if ckpt["since"] == 0:
            return
        journal_obj.checkpoint(checkpoint_state(), after=stats.done)
        ckpt["since"] = 0

    def persist_ok(cell: CellResult, summary_dict: Optional[dict]) -> None:
        """Journal one successful cell (after consume + cache put).

        With a result cache active the summary is already durable in
        the cache entry (written just before this call), so the record
        carries only the outcome — journaling the sample series twice
        would double the per-cell serialization cost for nothing.
        Resume then restores the summary through the cache, falling
        back to recompute if the entry was pruned meanwhile.
        """
        if journal_obj is None:
            return
        journal_obj.record_cell(index=cell.index,
                                key=cell.spec.content_hash(),
                                status=STATUS_OK, cached=cell.cached,
                                attempts=cell.attempts,
                                summary=None if store is not None
                                else summary_dict)
        ckpt["since"] += 1
        maybe_checkpoint()

    def finish_ok(cell: CellResult, summary: ScenarioSummary,
                  cached: bool) -> None:
        cell.status = STATUS_OK
        cell.summary = summary
        cell.cached = cached
        stats.done += 1
        if cached:
            stats.cached += 1
        else:
            stats.ok += 1
        emit(EVENT_CACHED if cached else EVENT_OK, cell)
        if consume is not None:
            consume(cell)
            cell.summary = None  # release the sample series

    def finish_resumed(cell: CellResult, summary: ScenarioSummary,
                       record: dict) -> None:
        """Restore one journaled cell without recomputing anything."""
        cell.status = STATUS_OK
        cell.summary = summary
        cell.cached = bool(record.get("cached"))
        cell.resumed = True
        cell.attempts = int(record.get("attempts", 0))
        stats.done += 1
        stats.resumed += 1
        emit(EVENT_RESUMED, cell)
        if consume is not None:
            consume(cell)
            cell.summary = None

    def record_failure(cell: CellResult, error: str) -> bool:
        """Consume one attempt; True if the cell may still be retried."""
        cell.attempts += 1
        cell.error = error
        if cell.attempts <= retries:
            stats.retries += 1
            emit(EVENT_RETRY, cell)
            return True
        cell.status = STATUS_FAILED
        stats.done += 1
        stats.failed += 1
        emit(EVENT_FAILED, cell)
        if journal_obj is not None:
            journal_obj.record_cell(index=cell.index,
                                    key=cell.spec.content_hash(),
                                    status=STATUS_FAILED,
                                    attempts=cell.attempts, error=error)
        return False

    try:
        # Resume pass: journaled cells are restored without touching a
        # worker or even the cache. Previously failed cells fall
        # through with a fresh retry budget.
        if resume and journaled_state is not None:
            for index, record in sorted(
                    journaled_state.completed().items()):
                if not 0 <= index < len(cells):
                    continue
                cell = cells[index]
                summary_payload = record.get("summary")
                if summary_payload is not None:
                    summary = ScenarioSummary.from_dict(summary_payload)
                elif store is not None:
                    summary = store.get(cell.spec)
                else:
                    summary = None
                if summary is None:
                    continue  # recompute: journal predates summaries
                finish_resumed(cell, summary, record)
            if stats.resumed:
                harness_event("journal", action="resume",
                              path=str(journal_obj.path),
                              cells=stats.resumed)
                # Compact future resumes: the consumer state now covers
                # every refolded cell.
                ckpt["since"] += stats.resumed
                maybe_checkpoint(force=True)

        # Cache pass: served cells never reach a worker.
        todo: list[int] = []
        for cell in cells:
            if cell.status != STATUS_PENDING:
                continue
            hit = store.get(cell.spec) if store is not None else None
            if hit is not None:
                finish_ok(cell, hit, cached=True)
                persist_ok(cell, None)
            else:
                todo.append(cell.index)

        if todo and jobs >= 2:
            _run_pool(cells, todo, jobs, timeout, backoff_s, worker,
                      store, stats, finish_ok, record_failure, persist_ok,
                      hang_timeout)
        elif todo:
            _run_serial(cells, todo, timeout, backoff_s, worker,
                        store, stats, finish_ok, record_failure, persist_ok)
        maybe_checkpoint(force=False)
    finally:
        if journal_obj is not None:
            journal_obj.close()

    return CampaignResult(cells=cells, progress=stats,
                          wall_s=time.monotonic() - started)


def run_specs(specs: Sequence[ScenarioSpec], *,
              jobs: int = 0, **kwargs) -> list[ScenarioSummary]:
    """Library entry point: summaries in input order, or raise.

    Any terminally failed cell raises :class:`CampaignError`; partial
    results are available via :func:`run_campaign` instead.
    """
    return run_campaign(specs, jobs=jobs, **kwargs).summaries()


def _apply_payload(cell: CellResult, payload: dict, store, stats,
                   finish_ok, record_failure, persist_ok) -> bool:
    """Fold one attempt's payload into the cell; True if requeued.

    Ordering is deliberate: consume (inside ``finish_ok``) runs before
    the cache write and the journal append, so a raising consumer
    leaves no durable trace of the cell — resume recomputes it.
    """
    stats.note_timeout(payload.get("timeout_mode"),
                       payload.get("timeout_enforced", True))
    if payload["ok"]:
        summary_dict = payload["summary"]
        summary = ScenarioSummary.from_dict(summary_dict)
        finish_ok(cell, summary, cached=False)
        if store is not None:
            store.put(cell.spec, summary)
        persist_ok(cell, summary_dict)
        return False
    dump = payload.get("flight_dump")
    if dump is not None:
        cell.flight_dump = dump
    return record_failure(cell, payload["error"])


def _run_serial(cells, todo, timeout, backoff_s, worker,
                store, stats, finish_ok, record_failure, persist_ok) -> None:
    queue = deque(todo)
    while queue:
        index = queue.popleft()
        cell = cells[index]
        attempt_start = time.monotonic()
        payload = _cell_payload(worker, cell.spec, timeout)
        cell.wall_s += time.monotonic() - attempt_start
        if _apply_payload(cell, payload, store, stats,
                          finish_ok, record_failure, persist_ok):
            time.sleep(backoff_s * (2 ** (cell.attempts - 1)))
            queue.append(index)


def _run_pool(cells, todo, jobs, timeout, backoff_s, worker,
              store, stats, finish_ok, record_failure, persist_ok,
              hang_timeout: Optional[float] = None) -> None:
    queue = deque(todo)
    not_before: dict[int, float] = {}
    launched_at: dict[int, float] = {}
    pool = ProcessPoolExecutor(max_workers=jobs)
    inflight: dict = {}  # future -> cell index
    hb_dir: Optional[str] = None
    killed_pids: set[int] = set()
    if hang_timeout is not None and hang_timeout > 0:
        hb_dir = tempfile.mkdtemp(prefix="repro-hb-")
    # After a pool breakage we cannot tell which cell killed its
    # worker, so retries resume single-file: if the crasher strikes
    # again it is alone in flight and only burns its own budget. The
    # first clean worker round-trip restores full parallelism.
    cautious = False
    try:
        while queue or inflight:
            now = time.monotonic()
            # Submit every eligible cell up to the worker count.
            limit = 1 if cautious else jobs
            for _ in range(len(queue)):
                if len(inflight) >= limit:
                    break
                index = queue.popleft()
                if not_before.get(index, 0.0) > now:
                    queue.append(index)  # still backing off
                    continue
                launched_at[index] = now
                heartbeat = (hb_dir, index) if hb_dir is not None else None
                future = pool.submit(_pool_cell, worker,
                                     cells[index].spec.as_dict(), timeout,
                                     heartbeat)
                inflight[future] = index

            if not inflight:
                # Everything remaining is backing off; sleep until the
                # earliest cell becomes eligible again.
                wake = min(not_before.get(i, 0.0) for i in queue)
                time.sleep(max(wake - time.monotonic(), 0.0) + 1e-3)
                continue

            done, _ = wait(list(inflight), return_when=FIRST_COMPLETED,
                           timeout=1.0)

            if hb_dir is not None and not done:
                _kill_hung_workers(inflight, launched_at, hang_timeout,
                                   hb_dir, killed_pids, stats)

            broken = False
            for future in done:
                index = inflight.pop(future)
                cell = cells[index]
                cell.wall_s += time.monotonic() - launched_at[index]
                try:
                    payload = future.result()
                    cautious = False  # a worker came back alive
                except BrokenProcessPool:
                    broken = True
                    payload = {"ok": False, "kind": "crash",
                               "error": "worker process died"}
                except Exception as exc:  # pool-level (pickling, ...)
                    payload = {"ok": False, "kind": "executor",
                               "error": f"{type(exc).__name__}: {exc}"}
                if _apply_payload(cell, payload, store, stats,
                                  finish_ok, record_failure, persist_ok):
                    not_before[index] = (time.monotonic()
                                         + backoff_s
                                         * (2 ** (cell.attempts - 1)))
                    queue.append(index)

            if broken:
                # The pool is unusable after a hard crash. Cells still
                # in flight get a failed attempt (we cannot know which
                # worker died), then a fresh pool takes over in
                # single-file mode.
                cautious = True
                for future, index in list(inflight.items()):
                    cell = cells[index]
                    cell.wall_s += time.monotonic() - launched_at[index]
                    if record_failure(cell, "worker process died "
                                            "(pool reset)"):
                        not_before[index] = (time.monotonic()
                                             + backoff_s
                                             * (2 ** (cell.attempts - 1)))
                        queue.append(index)
                inflight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=jobs)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        if hb_dir is not None:
            import shutil
            shutil.rmtree(hb_dir, ignore_errors=True)


def _kill_hung_workers(inflight: dict, launched_at: dict,
                       hang_timeout: float, hb_dir: str,
                       killed_pids: set, stats) -> None:
    """Deadline check: SIGKILL workers whose cell overran ``hang_timeout``.

    The kill surfaces as a :class:`BrokenProcessPool` on the next wait,
    which re-enters the cautious-restart path — the hung cell gets a
    failed attempt and a retry, exactly like any other worker death.
    """
    now = time.monotonic()
    overdue = [index for _future, index in inflight.items()
               if now - launched_at[index] > hang_timeout]
    if not overdue:
        return
    owners = read_heartbeats(hb_dir)
    for index in overdue:
        owner = owners.get(index)
        if owner is None:
            continue  # worker died before stamping; pool machinery owns it
        pid, _stamp = owner
        if pid in killed_pids:
            continue
        if kill_worker(pid):
            killed_pids.add(pid)
            stats.hung_kills += 1
            harness_event("hung_worker", severity=WARN, index=index,
                          pid=pid,
                          waited_s=round(now - launched_at[index], 3))
