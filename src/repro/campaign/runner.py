"""Parallel, cached, fault-tolerant execution of scenario campaigns.

:func:`run_campaign` fans a list of :class:`ScenarioSpec` cells out over
a :class:`concurrent.futures.ProcessPoolExecutor` (``jobs >= 2``) or an
in-process loop (``jobs <= 1``), with:

* **per-cell timeouts** — enforced *inside* the worker with
  ``SIGALRM``, so a runaway cell turns into a clean per-cell failure
  instead of a wedged pool (on platforms without ``SIGALRM`` the
  timeout is best-effort disabled);
* **bounded retry with exponential backoff** — every failure consumes
  one attempt; a cell becomes terminal after ``retries`` extra attempts;
* **crash isolation** — a worker that dies outright (``os._exit``,
  segfault, OOM kill) breaks the pool; the runner records a failed
  attempt for the cells that were in flight, rebuilds the pool, and
  resumes *one cell at a time* until a worker round-trip succeeds, so
  a repeat-crasher burns only its own retry budget instead of taking
  innocent in-flight cells down with it;
* **deterministic ordering** — results come back in input order no
  matter which cells finished first;
* **content-addressed caching** — cells whose spec hash is already in
  the :class:`ResultCache` are served without touching a worker.

The scenario simulation itself is a pure function of the spec, so a
summary computed in-process, in a subprocess, or replayed from the
cache is bit-identical.
"""

from __future__ import annotations

import signal
import threading
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.campaign.cache import resolve_cache
from repro.campaign.progress import (EVENT_CACHED, EVENT_FAILED, EVENT_OK,
                                     EVENT_RETRY, CampaignProgress)
from repro.campaign.spec import ScenarioSpec
from repro.campaign.summary import ScenarioSummary
from repro.experiments.scenario import run_scenario

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_PENDING = "pending"


class CampaignError(RuntimeError):
    """Raised by :func:`run_specs` when any cell failed terminally."""


class CellTimeout(Exception):
    """A cell exceeded its wall-clock budget."""


@dataclass
class CellResult:
    """Terminal state of one campaign cell."""

    index: int
    spec: ScenarioSpec
    status: str = STATUS_PENDING
    summary: Optional[ScenarioSummary] = None
    error: Optional[str] = None
    attempts: int = 0
    cached: bool = False
    wall_s: float = 0.0
    #: Flight-recorder tail from the last failed attempt, when the cell
    #: was traced (see :meth:`repro.obs.session.TraceSession.dump_on_error`).
    flight_dump: Optional[str] = None


@dataclass
class CampaignResult:
    """All cells of one campaign, in input order."""

    cells: list[CellResult]
    progress: CampaignProgress
    wall_s: float = 0.0

    @property
    def ok(self) -> int:
        return sum(1 for c in self.cells if c.status == STATUS_OK)

    @property
    def failed(self) -> int:
        return sum(1 for c in self.cells if c.status == STATUS_FAILED)

    @property
    def cached(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    def failures(self) -> list[CellResult]:
        return [c for c in self.cells if c.status == STATUS_FAILED]

    def summaries(self) -> list[ScenarioSummary]:
        """Summaries in input order; raises if any cell failed."""
        bad = self.failures()
        if bad:
            detail = "; ".join(f"cell {c.index} [{c.spec.label()}]: {c.error}"
                               for c in bad[:5])
            raise CampaignError(
                f"{len(bad)} of {len(self.cells)} cells failed: {detail}")
        return [c.summary for c in self.cells]


# -- worker side ---------------------------------------------------------------


_ALARM_WARNED = False


def _timeout_usable(timeout: Optional[float]) -> bool:
    """True when :func:`_alarm` can actually enforce ``timeout`` here."""
    return (timeout is not None and timeout > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


@contextmanager
def _alarm(timeout: Optional[float]):
    """Raise :class:`CellTimeout` after ``timeout`` wall seconds.

    Uses ``SIGALRM``, which only works in a main thread on POSIX; in
    any other context the timeout degrades to "no timeout" rather than
    failing the cell — warned once per process, and reported per-attempt
    via the ``timeout_enforced`` payload flag so campaign telemetry can
    tell "no timeouts fired" from "timeouts could not fire".
    """
    global _ALARM_WARNED
    if not _timeout_usable(timeout):
        if (timeout is not None and timeout > 0) and not _ALARM_WARNED:
            _ALARM_WARNED = True
            warnings.warn(
                "per-cell timeout requested but SIGALRM is unavailable "
                "(non-POSIX platform or non-main thread); cells run "
                "without a wall-clock limit", RuntimeWarning,
                stacklevel=3)
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeout(f"cell exceeded {timeout:g}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_spec(spec: ScenarioSpec,
                 timeout: Optional[float] = None) -> ScenarioSummary:
    """Run one cell in this process and summarize it.

    This is the whole worker: materialize the config, simulate, condense
    to the picklable summary. The full recorders never leave the worker.
    """
    with _alarm(timeout):
        result = run_scenario(spec.to_config())
        return ScenarioSummary.from_result(result, spec)


def _cell_payload(worker: Optional[Callable], spec: ScenarioSpec,
                  timeout: Optional[float]) -> dict:
    """Run one attempt, converting Python-level errors into a payload.

    Only hard process death (or ``BaseException`` escapees like
    ``SystemExit``) can reach the pool machinery; ordinary exceptions
    and timeouts fail just this attempt.
    """
    enforced = (timeout is None or timeout <= 0
                or _timeout_usable(timeout))
    try:
        if worker is not None:
            with _alarm(timeout):
                summary = worker(spec)
        else:
            summary = execute_spec(spec, timeout=timeout)
    except CellTimeout as exc:
        return {"ok": False, "kind": "timeout", "error": str(exc),
                "timeout_enforced": enforced}
    except Exception as exc:
        return {"ok": False, "kind": "exception",
                "error": f"{type(exc).__name__}: {exc}",
                "flight_dump": getattr(exc, "flight_dump", None),
                "timeout_enforced": enforced}
    return {"ok": True, "summary": summary.as_dict(),
            "timeout_enforced": enforced}


def _pool_cell(worker: Optional[Callable], spec_payload: dict,
               timeout: Optional[float]) -> dict:
    """Module-level pool entry point (must stay picklable)."""
    spec = ScenarioSpec.from_dict(spec_payload)
    return _cell_payload(worker, spec, timeout)


# -- campaign driver -----------------------------------------------------------


def run_campaign(specs: Sequence[ScenarioSpec], *,
                 jobs: int = 0,
                 cache=None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 backoff_s: float = 0.25,
                 progress: Optional[Callable] = None,
                 worker: Optional[Callable] = None,
                 consume: Optional[Callable] = None) -> CampaignResult:
    """Execute ``specs`` and return per-cell results in input order.

    ``jobs <= 1`` runs cells in this process (still cache-aware);
    ``jobs >= 2`` uses a process pool of that many workers. ``cache``
    accepts ``None``/``True``/a directory/a :class:`ResultCache`.
    ``worker`` overrides the cell body (``worker(spec) -> summary``) —
    used by tests to inject failures; it must be picklable for pools.

    ``consume`` turns the campaign into a stream: it is called once per
    successful cell (``consume(cell)``, completion order, cache hits
    included) while ``cell.summary`` is populated, after which the
    summary is *released* — the returned :class:`CampaignResult` keeps
    status/error/telemetry per cell but ``summary=None``. This bounds
    peak memory to one in-flight summary plus whatever the consumer
    retains, which is what lets a 1000-AP sharded city campaign stream
    per-shard summaries into an incremental fleet merge instead of
    holding every per-flow sample series at once.
    """
    specs = list(specs)
    store = resolve_cache(cache)
    stats = CampaignProgress(total=len(specs))
    cells = [CellResult(index=i, spec=spec) for i, spec in enumerate(specs)]
    started = time.monotonic()

    def emit(event: str, cell: CellResult) -> None:
        if progress is not None:
            progress(event, cell, stats)

    def finish_ok(cell: CellResult, summary: ScenarioSummary,
                  cached: bool) -> None:
        cell.status = STATUS_OK
        cell.summary = summary
        cell.cached = cached
        stats.done += 1
        if cached:
            stats.cached += 1
        else:
            stats.ok += 1
        emit(EVENT_CACHED if cached else EVENT_OK, cell)
        if consume is not None:
            consume(cell)
            cell.summary = None  # release the sample series

    def record_failure(cell: CellResult, error: str) -> bool:
        """Consume one attempt; True if the cell may still be retried."""
        cell.attempts += 1
        cell.error = error
        if cell.attempts <= retries:
            stats.retries += 1
            emit(EVENT_RETRY, cell)
            return True
        cell.status = STATUS_FAILED
        stats.done += 1
        stats.failed += 1
        emit(EVENT_FAILED, cell)
        return False

    # Cache pass: served cells never reach a worker.
    todo: list[int] = []
    for cell in cells:
        hit = store.get(cell.spec) if store is not None else None
        if hit is not None:
            finish_ok(cell, hit, cached=True)
        else:
            todo.append(cell.index)

    if todo and jobs >= 2:
        _run_pool(cells, todo, jobs, timeout, backoff_s, worker,
                  store, stats, finish_ok, record_failure)
    elif todo:
        _run_serial(cells, todo, timeout, backoff_s, worker,
                    store, stats, finish_ok, record_failure)

    return CampaignResult(cells=cells, progress=stats,
                          wall_s=time.monotonic() - started)


def run_specs(specs: Sequence[ScenarioSpec], *,
              jobs: int = 0, **kwargs) -> list[ScenarioSummary]:
    """Library entry point: summaries in input order, or raise.

    Any terminally failed cell raises :class:`CampaignError`; partial
    results are available via :func:`run_campaign` instead.
    """
    return run_campaign(specs, jobs=jobs, **kwargs).summaries()


def _apply_payload(cell: CellResult, payload: dict, store, stats,
                   finish_ok, record_failure) -> bool:
    """Fold one attempt's payload into the cell; True if requeued."""
    stats.timeout_enforced &= payload.get("timeout_enforced", True)
    if payload["ok"]:
        summary = ScenarioSummary.from_dict(payload["summary"])
        if store is not None:
            store.put(cell.spec, summary)
        finish_ok(cell, summary, cached=False)
        return False
    dump = payload.get("flight_dump")
    if dump is not None:
        cell.flight_dump = dump
    return record_failure(cell, payload["error"])


def _run_serial(cells, todo, timeout, backoff_s, worker,
                store, stats, finish_ok, record_failure) -> None:
    queue = deque(todo)
    while queue:
        index = queue.popleft()
        cell = cells[index]
        attempt_start = time.monotonic()
        payload = _cell_payload(worker, cell.spec, timeout)
        cell.wall_s += time.monotonic() - attempt_start
        if _apply_payload(cell, payload, store, stats,
                          finish_ok, record_failure):
            time.sleep(backoff_s * (2 ** (cell.attempts - 1)))
            queue.append(index)


def _run_pool(cells, todo, jobs, timeout, backoff_s, worker,
              store, stats, finish_ok, record_failure) -> None:
    queue = deque(todo)
    not_before: dict[int, float] = {}
    launched_at: dict[int, float] = {}
    pool = ProcessPoolExecutor(max_workers=jobs)
    inflight: dict = {}  # future -> cell index
    # After a pool breakage we cannot tell which cell killed its
    # worker, so retries resume single-file: if the crasher strikes
    # again it is alone in flight and only burns its own budget. The
    # first clean worker round-trip restores full parallelism.
    cautious = False
    try:
        while queue or inflight:
            now = time.monotonic()
            # Submit every eligible cell up to the worker count.
            limit = 1 if cautious else jobs
            for _ in range(len(queue)):
                if len(inflight) >= limit:
                    break
                index = queue.popleft()
                if not_before.get(index, 0.0) > now:
                    queue.append(index)  # still backing off
                    continue
                launched_at[index] = now
                future = pool.submit(_pool_cell, worker,
                                     cells[index].spec.as_dict(), timeout)
                inflight[future] = index

            if not inflight:
                # Everything remaining is backing off; sleep until the
                # earliest cell becomes eligible again.
                wake = min(not_before.get(i, 0.0) for i in queue)
                time.sleep(max(wake - time.monotonic(), 0.0) + 1e-3)
                continue

            done, _ = wait(list(inflight), return_when=FIRST_COMPLETED,
                           timeout=1.0)
            broken = False
            for future in done:
                index = inflight.pop(future)
                cell = cells[index]
                cell.wall_s += time.monotonic() - launched_at[index]
                try:
                    payload = future.result()
                    cautious = False  # a worker came back alive
                except BrokenProcessPool:
                    broken = True
                    payload = {"ok": False, "kind": "crash",
                               "error": "worker process died"}
                except Exception as exc:  # pool-level (pickling, ...)
                    payload = {"ok": False, "kind": "executor",
                               "error": f"{type(exc).__name__}: {exc}"}
                if _apply_payload(cell, payload, store, stats,
                                  finish_ok, record_failure):
                    not_before[index] = (time.monotonic()
                                         + backoff_s
                                         * (2 ** (cell.attempts - 1)))
                    queue.append(index)

            if broken:
                # The pool is unusable after a hard crash. Cells still
                # in flight get a failed attempt (we cannot know which
                # worker died), then a fresh pool takes over in
                # single-file mode.
                cautious = True
                for future, index in list(inflight.items()):
                    cell = cells[index]
                    cell.wall_s += time.monotonic() - launched_at[index]
                    if record_failure(cell, "worker process died "
                                            "(pool reset)"):
                        not_before[index] = (time.monotonic()
                                             + backoff_s
                                             * (2 ** (cell.attempts - 1)))
                        queue.append(index)
                inflight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=jobs)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
