"""Pure-data scenario specifications for experiment campaigns.

A :class:`ScenarioSpec` is the declarative mirror of
:class:`repro.experiments.scenario.ScenarioConfig`: every field is a
plain JSON value, the bandwidth trace is *referenced* (family/seed/
duration, a constant rate, or a file path) rather than held as a live
:class:`BandwidthTrace`, and the whole spec has a stable content hash.
That makes specs safe to pickle across process boundaries, to store in
campaign manifests, and to use as content-addressed cache keys.

The content hash covers the spec *and* a fingerprint of the ``repro``
source tree, so cached results are invalidated automatically whenever
the simulator code changes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from functools import lru_cache
from pathlib import Path
from typing import Optional

from repro.control.spec import ControlSpec
from repro.experiments.scenario import ScenarioConfig
from repro.faults.spec import FaultPlan
from repro.obs.session import TraceConfig
from repro.topology.spec import TopologySpec
# TraceSpec moved to repro.traces.spec (the topology layer references
# traces per edge); re-exported here unchanged for existing importers.
from repro.traces.spec import EXTRA_FAMILIES, TraceSpec  # noqa: F401

#: Bumping this invalidates every cache entry regardless of code changes
#: (e.g. when the summary schema itself evolves).
SPEC_SCHEMA_VERSION = 1


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file, for cache invalidation.

    Computed once per process; any edit to the simulator changes the
    fingerprint, which changes every spec hash, which makes every old
    cache entry unreachable (stale entries are left on disk — they are
    content-addressed, so they can never be returned for new code).
    """
    root = Path(__file__).resolve().parent.parent  # src/repro
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class ScenarioSpec:
    """JSON-serializable mirror of :class:`ScenarioConfig`.

    Field-for-field identical to the config except that ``trace`` is a
    :class:`TraceSpec`; :meth:`to_config` materializes the live config
    inside whichever process runs the cell.
    """

    trace: TraceSpec
    protocol: str = "rtp"
    cca: str = "gcc"
    ap_mode: str = "none"
    queue_kind: str = "fifo"
    duration: float = 60.0
    seed: int = 1
    wan_delay: float = 0.020
    uplink_scale: float = 0.5
    queue_capacity: int = 375_000
    fps: float = 24.0
    initial_bps: float = 1e6
    max_bps: float = 4e6
    competitors: int = 0
    competitor_period: Optional[float] = None
    interferers: int = 0
    mcs_switch_period: Optional[float] = None
    record_predictions: bool = False
    app: str = "video"
    paced_sender: bool = False
    link_kind: str = "wifi"
    rtc_flows: int = 1
    zhuge_flow_mask: Optional[tuple[bool, ...]] = None
    warmup: float = 5.0
    #: Event tracing (repro.obs). Part of the spec, therefore part of
    #: the content hash: a traced cell never aliases an untraced one in
    #: the result cache.
    trace_config: Optional[TraceConfig] = None
    #: Fault injection (repro.faults). Also part of the content hash: a
    #: faulted cell never aliases a healthy one. An empty plan is
    #: normalized to ``None`` so it hashes and behaves identically to
    #: no plan at all.
    faults: Optional[FaultPlan] = None
    #: Explicit experiment graph (repro.topology). ``None`` — every
    #: pre-topology spec — means the canonical single-AP graph derived
    #: from the fields above. Omitted from the payload when ``None`` so
    #: legacy specs keep their historical content hashes.
    topology: Optional[TopologySpec] = None
    #: Adaptive control plane (repro.control). ``None`` — the static
    #: configuration every pre-control spec ran — is omitted from the
    #: payload so legacy specs keep their historical content hashes; a
    #: spec with neither controller nor steering normalizes to ``None``.
    control: Optional[ControlSpec] = None

    def __post_init__(self) -> None:
        if self.zhuge_flow_mask is not None:
            object.__setattr__(self, "zhuge_flow_mask",
                               tuple(bool(b) for b in self.zhuge_flow_mask))
        if self.faults is not None and not self.faults.faults:
            object.__setattr__(self, "faults", None)
        if self.control is not None and not self.control.enabled:
            object.__setattr__(self, "control", None)

    def to_config(self) -> ScenarioConfig:
        """Build the live :class:`ScenarioConfig`, materializing the trace."""
        values = {f.name: getattr(self, f.name) for f in fields(self)
                  if f.name != "trace"}
        return ScenarioConfig(trace=self.trace.build(), **values)

    def label(self) -> str:
        """Short human-readable cell label for progress lines."""
        parts = [self.trace.label(), f"{self.protocol}/{self.cca}",
                 f"ap={self.ap_mode}", f"seed={self.seed}"]
        return " ".join(parts)

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)
                   if f.name != "trace"}
        if payload["zhuge_flow_mask"] is not None:
            payload["zhuge_flow_mask"] = list(payload["zhuge_flow_mask"])
        if payload["trace_config"] is not None:
            payload["trace_config"] = self.trace_config.as_dict()
        # Omitted entirely when None so payloads (and hashes) of
        # un-faulted specs are byte-identical to pre-fault-layer ones.
        if payload["faults"] is None:
            del payload["faults"]
        else:
            payload["faults"] = self.faults.as_dict()
        # Same rule for the topology: absent means "canonical single-AP
        # graph" and hashes exactly like a pre-topology-layer spec.
        if payload["topology"] is None:
            del payload["topology"]
        else:
            payload["topology"] = self.topology.as_dict()
        # And for the control plane: absent means "static configuration"
        # and hashes exactly like a pre-control-layer spec.
        if payload["control"] is None:
            del payload["control"]
        else:
            payload["control"] = self.control.as_dict()
        payload["trace"] = self.trace.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        payload = dict(payload)
        payload["trace"] = TraceSpec.from_dict(payload["trace"])
        mask = payload.get("zhuge_flow_mask")
        if mask is not None:
            payload["zhuge_flow_mask"] = tuple(mask)
        trace_config = payload.get("trace_config")
        if trace_config is not None:
            payload["trace_config"] = TraceConfig.from_dict(trace_config)
        faults = payload.get("faults")
        if faults is not None:
            payload["faults"] = FaultPlan.from_dict(faults)
        topology = payload.get("topology")
        if topology is not None:
            payload["topology"] = TopologySpec.from_dict(topology)
        control = payload.get("control")
        if control is not None:
            payload["control"] = ControlSpec.from_dict(control)
        return cls(**payload)

    def content_hash(self) -> str:
        """Stable digest of (schema, code fingerprint, spec contents)."""
        payload = self.as_dict()
        payload["trace"] = self.trace._hash_payload()
        blob = json.dumps({"schema": SPEC_SCHEMA_VERSION,
                           "code": code_fingerprint(),
                           "spec": payload},
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
