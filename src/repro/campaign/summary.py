"""Picklable scenario summaries — the unit campaign workers return.

A full :class:`~repro.experiments.scenario.ScenarioResult` drags the
live :class:`ScenarioConfig` (with its materialized trace) along and is
meant to stay inside the worker process. :class:`ScenarioSummary` keeps
exactly what every figure driver and the CLI read: the warmup-filtered
per-flow sample series (network RTT, CCA-perceived RTT, frame delays),
goodput/bitrate scalars, and the prediction pairs when recorded. It
round-trips through JSON bit-exactly, so a summary recomputed in a
subprocess or replayed from the cache is indistinguishable from one
computed in-process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.campaign.spec import ScenarioSpec
from repro.metrics.recorder import FrameRecorder, RttRecorder
from repro.metrics.stats import cdf_points, percentile, tail_fraction


@dataclass
class FlowSummary:
    """One RTC flow's summary series (all post-warmup)."""

    rtt_times: list[float] = field(default_factory=list)
    rtt_values: list[float] = field(default_factory=list)
    cca_rtt_times: list[float] = field(default_factory=list)
    cca_rtt_values: list[float] = field(default_factory=list)
    frame_times: list[float] = field(default_factory=list)
    frame_delays: list[float] = field(default_factory=list)
    goodput_bps: float = 0.0
    mean_bitrate_bps: float = 0.0

    @classmethod
    def from_flow(cls, flow) -> "FlowSummary":
        """Build from a :class:`~repro.experiments.scenario.FlowResult`."""
        return cls(rtt_times=list(flow.rtt.times),
                   rtt_values=list(flow.rtt.rtts),
                   cca_rtt_times=list(flow.cca_rtt.times),
                   cca_rtt_values=list(flow.cca_rtt.rtts),
                   frame_times=list(flow.frames.frame_times),
                   frame_delays=list(flow.frames.frame_delays),
                   goodput_bps=flow.goodput_bps,
                   mean_bitrate_bps=flow.mean_bitrate_bps)

    @property
    def rtt(self) -> RttRecorder:
        """The network-RTT series as a recorder (fresh copy per call)."""
        return RttRecorder(times=list(self.rtt_times),
                           rtts=list(self.rtt_values))

    @property
    def cca_rtt(self) -> RttRecorder:
        return RttRecorder(times=list(self.cca_rtt_times),
                           rtts=list(self.cca_rtt_values))

    @property
    def frames(self) -> FrameRecorder:
        return FrameRecorder(frame_times=list(self.frame_times),
                             frame_delays=list(self.frame_delays))

    def as_dict(self) -> dict:
        return {"rtt_times": self.rtt_times,
                "rtt_values": self.rtt_values,
                "cca_rtt_times": self.cca_rtt_times,
                "cca_rtt_values": self.cca_rtt_values,
                "frame_times": self.frame_times,
                "frame_delays": self.frame_delays,
                "goodput_bps": self.goodput_bps,
                "mean_bitrate_bps": self.mean_bitrate_bps}

    @classmethod
    def from_dict(cls, payload: dict) -> "FlowSummary":
        return cls(**payload)


@dataclass
class ScenarioSummary:
    """Everything the figures need from one campaign cell."""

    spec: ScenarioSpec
    flows: list[FlowSummary] = field(default_factory=list)
    events_processed: int = 0
    #: Packets delivered by the link layers — part of the digest
    #: contract (identical across event models), unlike
    #: ``events_processed`` which depends on how dispatches are fused.
    packets_processed: int = 0
    ap_packets: int = 0
    prediction_pairs: list[tuple[float, float]] = field(default_factory=list)
    #: (time, kind, phase) executed fault phases; empty without faults.
    fault_log: list[tuple] = field(default_factory=list)
    #: (time, state, reason) AP watchdog transitions; empty without one.
    watchdog_transitions: list[tuple] = field(default_factory=list)
    #: (time, ap, state, reason) controller transitions; empty without
    #: a control plane.
    control_transitions: list[tuple] = field(default_factory=list)
    #: (time, client, old_ap, new_ap) completed steering moves.
    steering_moves: list[tuple] = field(default_factory=list)

    @classmethod
    def from_result(cls, result, spec: ScenarioSpec) -> "ScenarioSummary":
        """Condense a worker-local :class:`ScenarioResult`."""
        return cls(spec=spec,
                   flows=[FlowSummary.from_flow(f) for f in result.flows],
                   events_processed=result.events_processed,
                   packets_processed=getattr(result, "packets_processed", 0),
                   ap_packets=result.ap_packets,
                   prediction_pairs=[tuple(p)
                                     for p in result.prediction_pairs],
                   fault_log=[tuple(entry) for entry in result.fault_log],
                   watchdog_transitions=[tuple(entry) for entry
                                         in result.watchdog_transitions],
                   control_transitions=[tuple(entry) for entry
                                        in result.control_transitions],
                   steering_moves=[tuple(entry) for entry
                                   in result.steering_moves])

    # Mirror the ScenarioResult conveniences so migrated drivers read
    # summaries exactly as they read results.
    @property
    def rtt(self) -> RttRecorder:
        return self.flows[0].rtt

    @property
    def frames(self) -> FrameRecorder:
        return self.flows[0].frames

    def measured_duration(self) -> float:
        return self.spec.duration - self.spec.warmup

    def digest_payload(self) -> dict:
        """The metric-level equivalence contract (digest v2, PR 10).

        Everything observable about the simulated trajectory — per-packet
        timestamps, delays, drops, release times, counts — is pinned;
        ``events_processed`` is excluded because it counts engine
        dispatches, which the macro event model legitimately fuses.
        Two runs that differ only in event model must produce identical
        payloads (``packets_processed`` stays: links count deliveries
        the same way in both models).
        """
        payload = self.as_dict()
        del payload["events_processed"]
        return payload

    def digest(self) -> str:
        """Canonical sha256 of :meth:`digest_payload`."""
        blob = json.dumps(self.digest_payload(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def as_dict(self) -> dict:
        payload = {"spec": self.spec.as_dict(),
                   "flows": [f.as_dict() for f in self.flows],
                   "events_processed": self.events_processed,
                   "packets_processed": self.packets_processed,
                   "ap_packets": self.ap_packets,
                   "prediction_pairs": [list(p)
                                        for p in self.prediction_pairs]}
        # Emitted only when non-empty: un-faulted summaries stay
        # byte-identical to pre-fault-layer ones.
        if self.fault_log:
            payload["fault_log"] = [list(entry) for entry in self.fault_log]
        if self.watchdog_transitions:
            payload["watchdog_transitions"] = [
                list(entry) for entry in self.watchdog_transitions]
        if self.control_transitions:
            payload["control_transitions"] = [
                list(entry) for entry in self.control_transitions]
        if self.steering_moves:
            payload["steering_moves"] = [
                list(entry) for entry in self.steering_moves]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSummary":
        return cls(spec=ScenarioSpec.from_dict(payload["spec"]),
                   flows=[FlowSummary.from_dict(f)
                          for f in payload["flows"]],
                   events_processed=payload["events_processed"],
                   packets_processed=payload.get("packets_processed", 0),
                   ap_packets=payload["ap_packets"],
                   prediction_pairs=[tuple(p) for p in
                                     payload["prediction_pairs"]],
                   fault_log=[tuple(entry) for entry
                              in payload.get("fault_log", [])],
                   watchdog_transitions=[
                       tuple(entry) for entry
                       in payload.get("watchdog_transitions", [])],
                   control_transitions=[
                       tuple(entry) for entry
                       in payload.get("control_transitions", [])],
                   steering_moves=[
                       tuple(entry) for entry
                       in payload.get("steering_moves", [])])


@dataclass
class MergedSummary:
    """Exact pooled view over several summaries' sample series.

    ``rtt_samples``/``frame_samples`` hold the *value-sorted* union of
    every flow's post-warmup samples, so any rank statistic computed
    here is the statistic of the pooled population — identical to
    concatenating the raw series and sorting, no matter how the
    population was split across summaries (per seed, per shard, per
    cell). Scalar aggregates (goodput, bitrate, event counts) are
    plain sums in input order.
    """

    rtt_samples: list[float] = field(default_factory=list)
    frame_samples: list[float] = field(default_factory=list)
    flows: int = 0
    events_processed: int = 0
    packets_processed: int = 0
    ap_packets: int = 0
    goodput_bps_total: float = 0.0
    mean_bitrate_bps_total: float = 0.0

    def rtt_percentile(self, q: float) -> float:
        """Exact pooled RTT percentile (samples are pre-sorted)."""
        return percentile(self.rtt_samples, q)

    def frame_percentile(self, q: float) -> float:
        return percentile(self.frame_samples, q)

    def rtt_tail_ratio(self, threshold: float = 0.200) -> float:
        return tail_fraction(self.rtt_samples, threshold)

    def delayed_frame_ratio(self, threshold: float = 0.400) -> float:
        return tail_fraction(self.frame_samples, threshold)

    def rtt_cdf(self, points: int = 200) -> list[tuple[float, float]]:
        """Pooled delay CDF; closes by rank, so a duplicated maximum
        never leaves a phantom CCDF tail (the PR 6 fix applies to the
        merged population too)."""
        return cdf_points(self.rtt_samples, points)


def merge_summaries(summaries: Sequence[ScenarioSummary]) -> MergedSummary:
    """Exact rank-based combination of several summaries' populations.

    The merged CDF is *the* CDF of the pooled sample multiset — each
    summary's samples are weighted by their count, not averaged curve
    against curve — so fleet percentiles computed from the result are
    exact statistics, not approximations of per-cell approximations.
    Input order does not matter for any rank statistic (the union is
    sorted by value).
    """
    merged = MergedSummary()
    for summary in summaries:
        for flow in summary.flows:
            merged.rtt_samples.extend(flow.rtt_values)
            merged.frame_samples.extend(flow.frame_delays)
            merged.goodput_bps_total += flow.goodput_bps
            merged.mean_bitrate_bps_total += flow.mean_bitrate_bps
            merged.flows += 1
        merged.events_processed += summary.events_processed
        merged.packets_processed += summary.packets_processed
        merged.ap_packets += summary.ap_packets
    merged.rtt_samples.sort()
    merged.frame_samples.sort()
    return merged


def summary_lines(label: str, summary: ScenarioSummary) -> list[str]:
    """The CLI's standard per-run report (shared by run/compare/campaign)."""
    flow = summary.flows[0]
    rtt = flow.rtt
    frames = flow.frames
    lines = [f"--- {label} ---"]
    if rtt.count:
        lines.append(f"  P50 / P99 RTT:      "
                     f"{percentile(rtt.rtts, 50) * 1000:6.0f} ms / "
                     f"{percentile(rtt.rtts, 99) * 1000:.0f} ms")
    lines.append(f"  RTT > 200 ms:       {rtt.tail_ratio() * 100:6.2f}%")
    lines.append(f"  frame delay >400ms: "
                 f"{frames.delayed_ratio() * 100:6.2f}%")
    lines.append(f"  frames decoded:     {frames.count:6d}")
    lines.append(f"  goodput:            "
                 f"{flow.goodput_bps / 1e6:6.2f} Mbps")
    return lines
