"""Worker supervision: timeouts everywhere, heartbeats, memory pressure.

Three independent guards keep a long campaign from wedging:

* :func:`cell_deadline` — the per-cell wall-clock budget. On a POSIX
  main thread it is the classic ``SIGALRM`` interval timer (interrupts
  even blocking syscalls). Everywhere else — Windows, or a cell driven
  from a non-main thread — a watchdog :class:`threading.Timer` delivers
  :class:`~repro.campaign.runner.CellTimeout` asynchronously into the
  running thread via ``PyThreadState_SetAsyncExc``: it lands at the
  next bytecode boundary, which is immediate for the CPU-bound
  simulation loops cells actually run (a cell blocked inside a single
  C call is delayed until that call returns). Which mechanism enforced
  each attempt is reported as ``timeout_mode`` telemetry.
* :class:`WorkerHeartbeat` / :func:`read_heartbeats` — pool workers
  stamp a per-pid heartbeat file when a cell starts and every
  ``interval`` seconds while it runs. The parent maps in-flight cell
  indexes to worker pids through these files, so deadline-based
  hung-worker detection can ``SIGKILL`` exactly the wedged worker (the
  resulting broken pool re-enters the runner's cautious-restart path,
  which retries the cell).
* :func:`rss_bytes` — current resident set size without psutil
  (``/proc/self/statm``, falling back to ``ru_maxrss``), feeding the
  fleet accumulator's graceful exact -> sketch degradation under
  memory pressure.
"""

from __future__ import annotations

import ctypes
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

#: ``timeout_mode`` telemetry values (per attempt).
TIMEOUT_OFF = "off"          # no timeout requested
TIMEOUT_SIGNAL = "signal"    # SIGALRM interval timer
TIMEOUT_THREAD = "thread"    # watchdog thread + async exception
TIMEOUT_NONE = "none"        # could not be enforced


def timeout_mode(timeout: Optional[float]) -> str:
    """Which enforcement mechanism :func:`cell_deadline` would use."""
    if timeout is None or timeout <= 0:
        return TIMEOUT_OFF
    if (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()):
        return TIMEOUT_SIGNAL
    if hasattr(ctypes, "pythonapi"):
        return TIMEOUT_THREAD
    return TIMEOUT_NONE


def _async_raise(thread_id: int, exc_type) -> None:
    """Queue ``exc_type`` in the thread with ident ``thread_id``.

    ``exc_type=None`` clears a queued-but-undelivered exception (used
    when the protected block wins the race against the watchdog).
    """
    target = ctypes.py_object(exc_type) if exc_type is not None else None
    ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(thread_id), target)


@contextmanager
def cell_deadline(timeout: Optional[float], exc_type, *,
                  mode: Optional[str] = None):
    """Raise ``exc_type`` in the calling thread after ``timeout`` seconds.

    ``mode`` overrides auto-detection (tests force the thread fallback
    on platforms where SIGALRM would win). ``TIMEOUT_NONE``/``OFF``
    run the body unguarded.
    """
    mode = mode or timeout_mode(timeout)
    if mode in (TIMEOUT_OFF, TIMEOUT_NONE):
        yield mode
        return

    if mode == TIMEOUT_SIGNAL:
        def _on_alarm(signum, frame):
            raise exc_type(f"cell exceeded {timeout:g}s timeout")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            yield mode
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        return

    # Thread fallback: a daemon Timer queues the timeout exception
    # asynchronously into this thread.
    thread_id = threading.get_ident()
    fired = threading.Event()

    def _fire() -> None:
        fired.set()
        _async_raise(thread_id, exc_type)

    timer = threading.Timer(timeout, _fire)
    timer.daemon = True
    timer.start()
    try:
        yield mode
    except exc_type:
        raise
    finally:
        timer.cancel()
        if fired.is_set():
            # The timer fired but the body may have finished first;
            # clear any still-queued exception so it cannot detonate
            # in unrelated code later.
            _async_raise(thread_id, None)


# -- worker heartbeats ---------------------------------------------------------


class WorkerHeartbeat:
    """Worker-side heartbeat: stamp ``<dir>/hb-<pid>.json`` while a cell
    runs.

    The file carries ``{"pid", "index", "time"}`` — enough for the
    parent to (a) know which worker owns which in-flight cell and
    (b) kill precisely the wedged one. Written atomically (temp +
    rename) so the parent never reads a torn stamp.
    """

    def __init__(self, directory, index: int,
                 interval: float = 0.5) -> None:
        self.directory = Path(directory)
        self.index = index
        self.interval = interval
        self.pid = os.getpid()
        self.path = self.directory / f"hb-{self.pid}.json"
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _stamp(self) -> None:
        payload = json.dumps({"pid": self.pid, "index": self.index,
                              "time": time.time()})
        tmp = self.path.with_suffix(f".tmp{self.pid}")
        try:
            tmp.write_text(payload)
            os.replace(tmp, self.path)
        except OSError:
            pass  # heartbeat loss degrades supervision, never the cell

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._stamp()

    def __enter__(self) -> "WorkerHeartbeat":
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            return self
        self._stamp()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"heartbeat-{self.pid}")
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
        try:
            self.path.unlink()
        except OSError:
            pass


def read_heartbeats(directory) -> dict:
    """Parent-side view: ``{cell_index: (pid, stamp_time)}``.

    Torn or foreign files are skipped; a dead pid's leftover stamp is
    ignored by the caller's liveness check.
    """
    owners: dict = {}
    try:
        paths = list(Path(directory).glob("hb-*.json"))
    except OSError:
        return owners
    for path in paths:
        try:
            payload = json.loads(path.read_text())
            owners[int(payload["index"])] = (int(payload["pid"]),
                                             float(payload["time"]))
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return owners


def kill_worker(pid: int) -> bool:
    """SIGKILL (or terminate) one worker process; True if signalled."""
    try:
        if hasattr(signal, "SIGKILL"):
            os.kill(pid, signal.SIGKILL)
        else:  # pragma: no cover - Windows
            os.kill(pid, signal.SIGTERM)
        return True
    except (OSError, ProcessLookupError):
        return False


# -- memory pressure -----------------------------------------------------------


_PAGE_SIZE = None


def rss_bytes() -> Optional[int]:
    """Current resident set size of this process, or None if unknown.

    Reads ``/proc/self/statm`` (Linux); falls back to the peak
    (``ru_maxrss``) from :mod:`resource`, which only ever grows — still
    sufficient for a degrade-once watchdog. No third-party deps.
    """
    global _PAGE_SIZE
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        if _PAGE_SIZE is None:
            _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; both only matter as an upper
        # bound here, so take the conservative (larger) reading.
        return int(peak) * 1024
    except (ImportError, ValueError, OSError):
        return None


class MemoryWatchdog:
    """Fire ``on_pressure(rss)`` once when RSS crosses ``limit_bytes``.

    Polled explicitly (:meth:`check`) from cheap places — the campaign
    consume path — rather than from a thread, so behaviour stays
    deterministic relative to cell completion order.
    """

    def __init__(self, limit_bytes: int, on_pressure) -> None:
        self.limit_bytes = limit_bytes
        self.on_pressure = on_pressure
        self.fired = False

    def check(self) -> bool:
        if self.fired:
            return True
        rss = rss_bytes()
        if rss is not None and rss > self.limit_bytes:
            self.fired = True
            self.on_pressure(rss)
            return True
        return False
