"""Congestion control algorithms.

Window-based CCAs (CUBIC, BBR, Copa, ABC-sender) plug into the TCP-like
transport; the rate-based GCC plugs into the RTP sender. The ABC router
half lives here too (:class:`AbcRouter`) since it is the network side of
a host-router co-designed CCA.
"""

from repro.cca.base import WindowCca, RateCca
from repro.cca.cubic import CubicCca
from repro.cca.bbr import BbrCca
from repro.cca.copa import CopaCca
from repro.cca.gcc import GccController
from repro.cca.nada import NadaController
from repro.cca.scream import ScreamController
from repro.cca.abc import AbcSenderCca, AbcRouter

__all__ = [
    "WindowCca",
    "RateCca",
    "CubicCca",
    "BbrCca",
    "CopaCca",
    "GccController",
    "NadaController",
    "ScreamController",
    "make_rate_cca",
    "AbcSenderCca",
    "AbcRouter",
    "make_window_cca",
]


def make_window_cca(name: str, mss: int = 1448) -> WindowCca:
    """Factory for window-based CCAs by scenario name."""
    kinds = {
        "cubic": CubicCca,
        "bbr": BbrCca,
        "copa": CopaCca,
        "abc": AbcSenderCca,
    }
    if name not in kinds:
        raise ValueError(f"unknown CCA {name!r}; expected one of {sorted(kinds)}")
    return kinds[name](mss=mss)


def make_rate_cca(name: str, initial_bps: float = 1e6,
                  max_bps: float = 50e6):
    """Factory for rate-based (RTP) CCAs by scenario name."""
    kinds = {
        "gcc": GccController,
        "nada": NadaController,
        "scream": ScreamController,
    }
    if name not in kinds:
        raise ValueError(f"unknown rate CCA {name!r}; "
                         f"expected one of {sorted(kinds)}")
    return kinds[name](initial_bps=initial_bps, max_bps=max_bps)
