"""ABC: Accel-Brake Control (Goyal et al., NSDI 2020), simplified.

The host-router co-designed baseline the paper compares against. The
router half (:class:`AbcRouter`) runs at the wireless AP: for every data
packet it computes a target rate from the measured dequeue rate and the
current queueing delay, and marks the packet *accelerate* or *brake* so
that the sender's reaction tracks the target. The receiver echoes marks
in ACKs; the sender (:class:`AbcSenderCca`) adjusts its window by +1
segment per accelerate and -1 per brake.

Unlike Zhuge, ABC requires modified senders AND receivers (the mark
echo), which is the deployability gap §2.3 highlights.
"""

from __future__ import annotations

from collections import deque

from repro.cca.base import WindowCca
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue


class AbcRouter:
    """AP-side marking engine.

    ``target rate = eta * mu - (mu / delta) * max(0, (d_q - d_t))`` where
    ``mu`` is the measured dequeue rate, ``d_q`` the current queueing
    delay and ``d_t`` the router's delay target. Packets are marked
    accelerate with probability ``min(1, target / 2*enqueue_rate)`` such
    that the induced ACK stream moves the sender toward the target
    (each accelerate = +1 packet, each brake = -1 packet per ACK).
    """

    def __init__(self, queue: DropTailQueue, eta: float = 0.95,
                 delay_target: float = 0.020, delta: float = 0.133,
                 rate_window: float = 0.040, capacity_fn=None):
        self.queue = queue
        self.eta = eta
        self.delay_target = delay_target
        self.delta = delta
        self.rate_window = rate_window
        # ABC runs *at* the AP, so it knows the link capacity directly
        # (the paper's ABC reads it from the wireless driver). When no
        # callback is given we fall back to the measured dequeue rate,
        # which underestimates mu for app-limited flows.
        self.capacity_fn = capacity_fn
        self._departures: deque[tuple[float, int]] = deque()
        self._arrivals: deque[tuple[float, int]] = deque()
        self._token_fraction = 0.0
        queue.on_departure.append(self._on_departure)

    def _on_departure(self, packet: Packet, queue: DropTailQueue) -> None:
        if packet.dequeued_at is not None:
            self._departures.append((packet.dequeued_at, packet.size))

    def _rate(self, series: deque[tuple[float, int]], now: float) -> float:
        horizon = now - self.rate_window
        while series and series[0][0] < horizon:
            series.popleft()
        total_bits = sum(size for _, size in series) * 8
        return total_bits / self.rate_window

    def queueing_delay(self, now: float) -> float:
        mu = max(self._rate(self._departures, now), 1_000.0)
        return self.queue.byte_length * 8 / mu

    def mark(self, packet: Packet, now: float) -> None:
        """Annotate a downlink data packet with accelerate/brake."""
        self._arrivals.append((now, packet.size))
        if self.capacity_fn is not None:
            mu = max(self.capacity_fn(now), 10_000.0)
        else:
            mu = max(self._rate(self._departures, now), 10_000.0)
        d_q = self.queue.byte_length * 8 / mu
        target = self.eta * mu - (mu / self.delta) * max(0.0, d_q - self.delay_target)
        target = max(target, 0.0)
        incoming = max(self._rate(self._arrivals, now), 10_000.0)
        accel_fraction = min(1.0, target / (2.0 * incoming))
        # Deterministic token accumulation = fluid-limit marking.
        self._token_fraction += accel_fraction
        if self._token_fraction >= 1.0:
            self._token_fraction -= 1.0
            packet.headers["abc_mark"] = "accelerate"
        else:
            packet.headers["abc_mark"] = "brake"


class AbcSenderCca(WindowCca):
    """Sender half: +-1 MSS per echoed accelerate/brake mark."""

    def __init__(self, mss: int = 1448):
        super().__init__(mss=mss)
        self.accels = 0
        self.brakes = 0

    def on_explicit_feedback(self, now: float, mark: str) -> None:
        if mark == "accelerate":
            self.accels += 1
            self.cwnd += self.mss
        elif mark == "brake":
            self.brakes += 1
            self.cwnd = max(2 * self.mss, self.cwnd - self.mss)

    def on_ack(self, now: float, rtt: float, acked_bytes: int) -> None:
        """ABC's rate control is entirely mark-driven; ACKs carry marks."""

    def on_loss(self, now: float) -> None:
        self.cwnd = max(2 * self.mss, int(self.cwnd * 0.9))
