"""CCA plug-in interfaces.

``WindowCca`` is the contract the TCP-like transport drives: it exposes a
congestion window in bytes and receives ACK/loss/RTO notifications.
``RateCca`` is the contract the RTP sender drives: it exposes a target
bitrate and receives periodic in-band feedback reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class WindowCca(abc.ABC):
    """Window-based congestion control driven by the TCP transport."""

    def __init__(self, mss: int = 1448):
        self.mss = mss
        self.cwnd = 10 * mss  # bytes

    @abc.abstractmethod
    def on_ack(self, now: float, rtt: float, acked_bytes: int) -> None:
        """A new cumulative ACK arrived carrying an RTT sample."""

    @abc.abstractmethod
    def on_loss(self, now: float) -> None:
        """Fast-retransmit-detected loss (once per loss event)."""

    def on_rto(self, now: float) -> None:
        """Retransmission timeout: collapse to one segment by default."""
        self.cwnd = 2 * self.mss

    def on_explicit_feedback(self, now: float, mark: str) -> None:
        """Explicit per-ACK feedback (ABC accelerate/brake). Default: ignore."""

    @property
    def cwnd_packets(self) -> float:
        return self.cwnd / self.mss

    def pacing_rate(self, srtt: float) -> float | None:
        """Optional pacing rate in bps; None means send window-limited."""
        return None


@dataclass
class FeedbackPacketReport:
    """One data packet's fate, as reported by in-band (TWCC) feedback."""

    seq: int
    size: int
    send_time: float
    recv_time: float | None  # None = lost


class RateCca(abc.ABC):
    """Rate-based congestion control driven by the RTP sender."""

    def __init__(self, initial_bps: float = 1e6,
                 min_bps: float = 150e3, max_bps: float = 50e6):
        if initial_bps <= 0:
            raise ValueError(f"initial rate must be positive: {initial_bps}")
        self.target_bps = initial_bps
        self.min_bps = min_bps
        self.max_bps = max_bps

    @abc.abstractmethod
    def on_feedback(self, now: float,
                    reports: list[FeedbackPacketReport]) -> None:
        """A feedback packet (e.g. TWCC) arrived with per-packet reports."""

    def _clamp(self) -> None:
        self.target_bps = min(self.max_bps, max(self.min_bps, self.target_bps))
