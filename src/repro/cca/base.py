"""CCA plug-in interfaces.

``WindowCca`` is the contract the TCP-like transport drives: it exposes a
congestion window in bytes and receives ACK/loss/RTO notifications.
``RateCca`` is the contract the RTP sender drives: it exposes a target
bitrate and receives periodic in-band feedback reports.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class WindowCca(abc.ABC):
    """Window-based congestion control driven by the TCP transport."""

    #: Tracing probe; ``None`` keeps the hot path untouched. Probes are
    #: installed by :meth:`enable_trace` as method wrappers, so a CCA
    #: that never enables tracing pays nothing at all.
    trace = None
    _trace_track = "cca"

    def __init__(self, mss: int = 1448):
        self.mss = mss
        self.cwnd = 10 * mss  # bytes

    def enable_trace(self, bus, track: str) -> None:
        """Emit a ``cca.cwnd`` event whenever a notification moves cwnd.

        Wraps the instance's notification entry points instead of
        guarding every ``self.cwnd = ...`` assignment in every subclass:
        the window only changes inside these calls, and the wrapper
        exists only on traced instances.
        """
        self.trace = bus
        self._trace_track = track
        bus.cca_cwnd(track, self.cwnd)
        for name in ("on_ack", "on_loss", "on_rto", "on_explicit_feedback"):
            _wrap_traced(self, name, lambda: self.cwnd,
                         lambda value: bus.cca_cwnd(self._trace_track, value))

    @abc.abstractmethod
    def on_ack(self, now: float, rtt: float, acked_bytes: int) -> None:
        """A new cumulative ACK arrived carrying an RTT sample."""

    @abc.abstractmethod
    def on_loss(self, now: float) -> None:
        """Fast-retransmit-detected loss (once per loss event)."""

    def on_rto(self, now: float) -> None:
        """Retransmission timeout: collapse to one segment by default."""
        self.cwnd = 2 * self.mss

    def on_explicit_feedback(self, now: float, mark: str) -> None:
        """Explicit per-ACK feedback (ABC accelerate/brake). Default: ignore."""

    @property
    def cwnd_packets(self) -> float:
        return self.cwnd / self.mss

    def pacing_rate(self, srtt: float) -> float | None:
        """Optional pacing rate in bps; None means send window-limited."""
        return None


@dataclass
class FeedbackPacketReport:
    """One data packet's fate, as reported by in-band (TWCC) feedback."""

    seq: int
    size: int
    send_time: float
    recv_time: float | None  # None = lost


class RateCca(abc.ABC):
    """Rate-based congestion control driven by the RTP sender."""

    trace = None
    _trace_track = "cca"

    def __init__(self, initial_bps: float = 1e6,
                 min_bps: float = 150e3, max_bps: float = 50e6):
        if initial_bps <= 0:
            raise ValueError(f"initial rate must be positive: {initial_bps}")
        self.target_bps = initial_bps
        self.min_bps = min_bps
        self.max_bps = max_bps

    @abc.abstractmethod
    def on_feedback(self, now: float,
                    reports: list[FeedbackPacketReport]) -> None:
        """A feedback packet (e.g. TWCC) arrived with per-packet reports."""

    def enable_trace(self, bus, track: str) -> None:
        """Emit a ``cca.rate`` event whenever feedback moves the target."""
        self.trace = bus
        self._trace_track = track
        bus.cca_rate(track, self.target_bps)
        _wrap_traced(self, "on_feedback", lambda: self.target_bps,
                     lambda value: bus.cca_rate(self._trace_track, value))

    def _clamp(self) -> None:
        self.target_bps = min(self.max_bps, max(self.min_bps, self.target_bps))


def _wrap_traced(cca, method_name: str, read_state, emit) -> None:
    """Replace a bound method with a change-detecting traced wrapper."""
    inner = getattr(cca, method_name)

    def traced(*args, **kwargs):
        before = read_state()
        result = inner(*args, **kwargs)
        after = read_state()
        if after != before:
            emit(after)
        return result

    setattr(cca, method_name, traced)
