"""BBR v1-style congestion control (Cardwell et al. 2016), simplified.

Model-based: tracks the bottleneck bandwidth (windowed-max delivery
rate) and the minimum RTT, paces at ``pacing_gain * btl_bw`` and caps
the window at ``cwnd_gain * BDP``. The ProbeBW gain cycle and a periodic
ProbeRTT are retained; the startup/drain phases are modelled with the
standard 2.89 gain.
"""

from __future__ import annotations

from collections import deque

from repro.cca.base import WindowCca

PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


class BbrCca(WindowCca):
    """Simplified flow-level BBR."""

    STARTUP_GAIN = 2.885
    CWND_GAIN = 2.0
    MIN_RTT_WINDOW = 10.0
    BW_WINDOW_ROUNDS = 10

    def __init__(self, mss: int = 1448):
        super().__init__(mss=mss)
        self._min_rtt = float("inf")
        self._min_rtt_stamp = 0.0
        self._bw_samples: deque[tuple[float, float]] = deque()  # (time, bps)
        self._delivered_bytes = 0
        self._last_ack_time = -1.0
        self._mode = "startup"
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._probe_rtt_done_at = 0.0

    # -- model maintenance ---------------------------------------------------

    @property
    def btl_bw(self) -> float:
        if not self._bw_samples:
            return 10 * self.mss * 8 / 0.1  # initial guess: 10 pkts / 100 ms
        return max(bw for _, bw in self._bw_samples)

    @property
    def min_rtt(self) -> float:
        return self._min_rtt if self._min_rtt != float("inf") else 0.1

    def _update_bw(self, now: float, acked_bytes: int) -> None:
        if self._last_ack_time >= 0 and now > self._last_ack_time:
            rate = acked_bytes * 8 / (now - self._last_ack_time)
            self._bw_samples.append((now, rate))
        self._last_ack_time = now
        horizon = now - self.BW_WINDOW_ROUNDS * self.min_rtt
        while self._bw_samples and self._bw_samples[0][0] < horizon:
            self._bw_samples.popleft()

    def _update_min_rtt(self, now: float, rtt: float) -> None:
        if rtt <= self._min_rtt or now - self._min_rtt_stamp > self.MIN_RTT_WINDOW:
            self._min_rtt = rtt
            self._min_rtt_stamp = now

    # -- state machine ---------------------------------------------------------

    def _pacing_gain(self) -> float:
        if self._mode == "startup":
            return self.STARTUP_GAIN
        if self._mode == "drain":
            return 1.0 / self.STARTUP_GAIN
        if self._mode == "probe_rtt":
            return 1.0
        return PROBE_BW_GAINS[self._cycle_index]

    def _advance_state(self, now: float) -> None:
        if self._mode == "startup":
            bw = self.btl_bw
            if bw > self._full_bw * 1.25:
                self._full_bw = bw
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3:
                    self._mode = "drain"
        elif self._mode == "drain":
            bdp = self.btl_bw * self.min_rtt / 8
            if self.cwnd <= bdp * 1.1:
                self._mode = "probe_bw"
                self._cycle_stamp = now
        elif self._mode == "probe_bw":
            if now - self._cycle_stamp > self.min_rtt:
                self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
                self._cycle_stamp = now
            if now - self._min_rtt_stamp > self.MIN_RTT_WINDOW:
                self._mode = "probe_rtt"
                self._probe_rtt_done_at = now + 0.2
        elif self._mode == "probe_rtt":
            if now >= self._probe_rtt_done_at:
                self._min_rtt_stamp = now
                self._mode = "probe_bw"
                self._cycle_stamp = now

    # -- WindowCca interface -----------------------------------------------------

    def on_ack(self, now: float, rtt: float, acked_bytes: int) -> None:
        self._update_min_rtt(now, rtt)
        self._update_bw(now, acked_bytes)
        self._advance_state(now)
        if self._mode == "probe_rtt":
            self.cwnd = 4 * self.mss
            return
        bdp_bytes = self.btl_bw * self.min_rtt / 8
        gain = self.CWND_GAIN if self._mode != "startup" else self.STARTUP_GAIN
        self.cwnd = max(4 * self.mss, int(gain * bdp_bytes))

    def on_loss(self, now: float) -> None:
        # BBR v1 mostly ignores individual losses; cap mild reaction.
        self.cwnd = max(4 * self.mss, int(self.cwnd * 0.95))

    def pacing_rate(self, srtt: float) -> float | None:
        return self._pacing_gain() * self.btl_bw
