"""Copa congestion control (Arun & Balakrishnan, NSDI 2018), simplified.

Delay-based: the target rate is ``1 / (delta * d_q)`` where ``d_q`` is
the standing queueing delay (standing RTT minus the RTT floor). The
window moves toward the target at a velocity that doubles each RTT the
direction is stable. Loss-insensitive by design — which is exactly why
CoDel barely helps it (paper §2.2) and why Zhuge's delay signal does.
"""

from __future__ import annotations

from collections import deque

from repro.cca.base import WindowCca


class CopaCca(WindowCca):
    """Simplified Copa in default (non-competitive) mode."""

    def __init__(self, mss: int = 1448, delta: float = 0.5):
        super().__init__(mss=mss)
        if delta <= 0:
            raise ValueError(f"delta must be positive: {delta}")
        self.delta = delta
        self._min_rtt = float("inf")
        self._rtt_window: deque[tuple[float, float]] = deque()  # (time, rtt)
        self._srtt = 0.0
        self._velocity = 1.0
        self._direction = 0
        self._direction_rtts = 0
        self._last_direction_update = 0.0

    @property
    def min_rtt(self) -> float:
        return self._min_rtt if self._min_rtt != float("inf") else 0.05

    def _standing_rtt(self, now: float) -> float:
        """Minimum RTT over the last srtt/2 window (Copa's standing RTT)."""
        horizon = now - max(self._srtt / 2, 0.01)
        while self._rtt_window and self._rtt_window[0][0] < horizon:
            self._rtt_window.popleft()
        if not self._rtt_window:
            return self.min_rtt
        return min(rtt for _, rtt in self._rtt_window)

    def on_ack(self, now: float, rtt: float, acked_bytes: int) -> None:
        self._min_rtt = min(self._min_rtt, rtt)
        self._srtt = rtt if self._srtt == 0 else 0.875 * self._srtt + 0.125 * rtt
        self._rtt_window.append((now, rtt))

        standing = self._standing_rtt(now)
        queueing_delay = max(standing - self.min_rtt, 1e-6)
        # Target rate in packets/sec -> target window in packets.
        target_rate = 1.0 / (self.delta * queueing_delay)
        target_window = target_rate * standing  # packets

        cwnd_pkts = self.cwnd / self.mss
        current_rate = cwnd_pkts / max(standing, 1e-6)

        if current_rate < target_rate:
            new_direction = 1
        else:
            new_direction = -1
        if new_direction == self._direction:
            if now - self._last_direction_update > standing:
                self._direction_rtts += 1
                self._last_direction_update = now
                if self._direction_rtts >= 3:
                    self._velocity = min(self._velocity * 2, 64.0)
        else:
            self._direction = new_direction
            self._direction_rtts = 0
            self._velocity = 1.0
            self._last_direction_update = now

        step = self._velocity / (self.delta * max(cwnd_pkts, 1.0))
        if new_direction > 0:
            cwnd_pkts += step
        else:
            cwnd_pkts -= step
        cwnd_pkts = max(2.0, min(cwnd_pkts, max(target_window * 4, 16.0)))
        self.cwnd = int(cwnd_pkts * self.mss)

    def on_loss(self, now: float) -> None:
        # Copa reacts to loss only mildly (loss means delta-based mode
        # switches in full Copa; we apply a bounded decrease).
        self.cwnd = max(2 * self.mss, int(self.cwnd * 0.85))
        self._velocity = 1.0
        self._direction = 0
