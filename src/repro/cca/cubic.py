"""CUBIC congestion control (Ha, Rhee, Xu 2008).

Used as the bulk-transfer competitor in the flow-competition and
interference experiments, and as one of the CCAs of Fig. 4. Buffer
filling by design — the paper uses it to show what Zhuge does *not*
target.
"""

from __future__ import annotations

from repro.cca.base import WindowCca


class CubicCca(WindowCca):
    """Standard cubic window growth with fast-convergence and a Reno floor."""

    C = 0.4
    BETA = 0.7

    def __init__(self, mss: int = 1448):
        super().__init__(mss=mss)
        self._w_max = 0.0          # window (packets) before the last loss
        self._epoch_start = -1.0
        self._k = 0.0
        self._ack_count = 0
        self._reno_window = self.cwnd / mss
        self._in_slow_start = True
        self._ssthresh = float("inf")

    def on_ack(self, now: float, rtt: float, acked_bytes: int) -> None:
        cwnd_pkts = self.cwnd / self.mss
        if self._in_slow_start and cwnd_pkts < self._ssthresh:
            self.cwnd += acked_bytes
            return
        self._in_slow_start = False
        if self._epoch_start < 0:
            self._epoch_start = now
            if cwnd_pkts < self._w_max:
                self._k = ((self._w_max - cwnd_pkts) / self.C) ** (1.0 / 3.0)
            else:
                self._k = 0.0
                self._w_max = cwnd_pkts
            self._reno_window = cwnd_pkts
            self._ack_count = 0

        t = now - self._epoch_start + rtt
        target = self._w_max + self.C * (t - self._k) ** 3

        # TCP-friendly (Reno) lower bound.
        self._ack_count += 1
        reno = self._reno_window + 3.0 * (1.0 - self.BETA) / (
            1.0 + self.BETA) * self._ack_count / max(cwnd_pkts, 1.0)
        target = max(target, reno)

        if target > cwnd_pkts:
            increment = (target - cwnd_pkts) / max(cwnd_pkts, 1.0)
            self.cwnd += int(increment * self.mss)
        else:
            self.cwnd += max(1, int(self.mss / (100.0 * max(cwnd_pkts, 1.0))))

    def on_loss(self, now: float) -> None:
        cwnd_pkts = self.cwnd / self.mss
        # Fast convergence: release bandwidth faster when shrinking.
        if cwnd_pkts < self._w_max:
            self._w_max = cwnd_pkts * (1.0 + self.BETA) / 2.0
        else:
            self._w_max = cwnd_pkts
        self.cwnd = max(2 * self.mss, int(self.cwnd * self.BETA))
        self._ssthresh = self.cwnd / self.mss
        self._in_slow_start = False
        self._epoch_start = -1.0

    def on_rto(self, now: float) -> None:
        self._ssthresh = max(2.0, (self.cwnd / self.mss) / 2.0)
        self.cwnd = 2 * self.mss
        self._in_slow_start = True
        self._epoch_start = -1.0
