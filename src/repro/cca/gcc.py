"""Google Congestion Control (Carlucci et al. 2017), simplified.

GCC is WebRTC's default CCA and the RTP-side CCA of the paper's
evaluation. Two controllers combine:

* a **delay-based** controller: a trendline estimator over one-way delay
  gradients drives an over-use detector (overuse / normal / underuse)
  and an AIMD rate controller;
* a **loss-based** controller: the rate is cut when the reported loss
  ratio exceeds 10%, held between 2% and 10%, and probed upward below 2%.

The sender applies ``min(delay_based_rate, loss_based_rate)``.
"""

from __future__ import annotations

from collections import deque

from repro.cca.base import FeedbackPacketReport, RateCca


class TrendlineEstimator:
    """Least-squares slope of smoothed accumulated delay vs time."""

    def __init__(self, window: int = 20, smoothing: float = 0.9):
        self.window = window
        self.smoothing = smoothing
        self._samples: list[tuple[float, float]] = []  # (arrival, smoothed delay)
        self._accumulated = 0.0
        self._smoothed = 0.0
        self._first_arrival: float | None = None

    def update(self, arrival: float, delay_delta: float) -> float:
        """Add one inter-group delay variation; return the trend slope."""
        if self._first_arrival is None:
            self._first_arrival = arrival
        self._accumulated += delay_delta
        self._smoothed = (self.smoothing * self._smoothed
                          + (1 - self.smoothing) * self._accumulated)
        self._samples.append((arrival - self._first_arrival, self._smoothed))
        if len(self._samples) > self.window:
            self._samples.pop(0)
        return self._slope()

    def _slope(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        n = len(self._samples)
        mean_x = sum(x for x, _ in self._samples) / n
        mean_y = sum(y for _, y in self._samples) / n
        num = sum((x - mean_x) * (y - mean_y) for x, y in self._samples)
        den = sum((x - mean_x) ** 2 for x, _ in self._samples)
        return num / den if den > 1e-12 else 0.0


class OveruseDetector:
    """Adaptive-threshold comparison of the trend signal (K_u/K_d update)."""

    # WebRTC trendline constants: the threshold lives in dimensionless
    # slope units scaled by min(num_deltas, 60) * 4 and adapts within
    # [6, 600]; 12.5 is the stock starting point.
    def __init__(self, initial_threshold: float = 12.5,
                 k_up: float = 0.0087, k_down: float = 0.039,
                 overuse_time: float = 0.010):
        self.threshold = initial_threshold
        self.k_up = k_up
        self.k_down = k_down
        self.overuse_time = overuse_time
        self._in_overuse_since: float | None = None
        self._last_update: float | None = None

    def detect(self, now: float, trend: float, num_deltas: int) -> str:
        modified = trend * min(num_deltas, 60) * 4.0
        state = "normal"
        if modified > self.threshold:
            if self._in_overuse_since is None:
                self._in_overuse_since = now
            if now - self._in_overuse_since >= self.overuse_time:
                state = "overuse"
        elif modified < -self.threshold:
            self._in_overuse_since = None
            state = "underuse"
        else:
            self._in_overuse_since = None

        # Adapt the threshold toward |modified| (slowly up, faster down).
        if self._last_update is not None and abs(modified) < 4 * self.threshold:
            k = self.k_down if abs(modified) < self.threshold else self.k_up
            dt = min(now - self._last_update, 0.1)
            self.threshold += k * (abs(modified) - self.threshold) * dt * 1000
            self.threshold = min(max(self.threshold, 6.0), 600.0)
        self._last_update = now
        return state


class GccController(RateCca):
    """Combined delay-based + loss-based GCC rate controller."""

    def __init__(self, initial_bps: float = 1e6,
                 min_bps: float = 150e3, max_bps: float = 50e6):
        super().__init__(initial_bps, min_bps, max_bps)
        self.trendline = TrendlineEstimator()
        self.detector = OveruseDetector()
        self._delay_rate = initial_bps
        self._loss_rate = initial_bps
        self._recv_window = deque()  # (recv_time, size) for bitrate estimate
        self._rate_state = "increase"  # increase / hold / decrease
        self._num_deltas = 0
        self._last_recv_rate = initial_bps
        self._last_feedback: float | None = None
        self._last_decrease = -1.0
        self.state_log: list[tuple[float, str]] = []
        # Packet-group state (WebRTC InterArrival).
        self._group_send_start: float | None = None
        self._group_send_end = 0.0
        self._group_arrival = 0.0
        self._prev_group_send: float | None = None
        self._prev_group_arrival = 0.0

    # -- feedback processing -------------------------------------------------

    def on_feedback(self, now: float,
                    reports: list[FeedbackPacketReport]) -> None:
        if not reports:
            return
        received = [r for r in reports if r.recv_time is not None]
        lost = len(reports) - len(received)
        loss_ratio = lost / len(reports) if reports else 0.0

        self._update_receive_rate(now, received)
        signal = self._delay_signal(now, received)
        self._update_delay_rate(now, signal)
        self._update_loss_rate(loss_ratio)
        self.target_bps = min(self._delay_rate, self._loss_rate)
        self._clamp()
        self.state_log.append((now, signal))
        self._last_feedback = now

    RECV_RATE_WINDOW = 0.5

    def _update_receive_rate(self, now: float,
                             received: list[FeedbackPacketReport]) -> None:
        """Incoming-bitrate estimate over a sliding window of arrivals.

        WebRTC's remote-bitrate estimator averages over ~0.5 s; a
        per-feedback span is meaningless when a feedback interval holds
        one or two packets.
        """
        for report in received:
            self._recv_window.append((report.recv_time, report.size))
        if not self._recv_window:
            return
        newest = max(t for t, _ in self._recv_window)
        horizon = newest - self.RECV_RATE_WINDOW
        while self._recv_window and self._recv_window[0][0] < horizon:
            self._recv_window.popleft()
        if self._recv_window:
            total_bits = sum(size for _, size in self._recv_window) * 8
            self._last_recv_rate = total_bits / self.RECV_RATE_WINDOW

    # WebRTC groups packets sent within a 5 ms burst window and computes
    # one delay variation per *group* (InterArrival). Per-packet deltas
    # would let a single frame burst fill the whole trendline window and
    # read its intra-burst serialization ramp as sustained overuse.
    GROUP_SPAN = 0.005

    def _delay_signal(self, now: float,
                      received: list[FeedbackPacketReport]) -> str:
        """Feed inter-group delay variations to the trendline detector."""
        state = "normal"
        for report in sorted(received, key=lambda r: r.send_time):
            group_delta = self._update_groups(report)
            if group_delta is None:
                continue
            arrival, delta = group_delta
            self._num_deltas += 1
            trend = self.trendline.update(arrival, delta)
            detected = self.detector.detect(now, trend, self._num_deltas)
            if detected == "overuse":
                return "overuse"
            state = detected
        return state

    def _update_groups(self, report: FeedbackPacketReport):
        """Accumulate ``report`` into send-time groups.

        Returns (arrival_time, inter-group delay variation) when the
        report closes the current group, else None.
        """
        if self._group_send_start is None:
            self._group_send_start = report.send_time
            self._group_send_end = report.send_time
            self._group_arrival = report.recv_time
            return None
        if report.send_time - self._group_send_start <= self.GROUP_SPAN:
            self._group_send_end = max(self._group_send_end, report.send_time)
            self._group_arrival = max(self._group_arrival, report.recv_time)
            return None
        # New group begins: emit the delta between the two previous groups.
        result = None
        if self._prev_group_send is not None:
            delta = ((self._group_arrival - self._prev_group_arrival)
                     - (self._group_send_end - self._prev_group_send))
            result = (self._group_arrival, delta)
        self._prev_group_send = self._group_send_end
        self._prev_group_arrival = self._group_arrival
        self._group_send_start = report.send_time
        self._group_send_end = report.send_time
        self._group_arrival = report.recv_time
        return result

    def _update_delay_rate(self, now: float, signal: str) -> None:
        if signal == "overuse":
            self._rate_state = "decrease"
        elif signal == "underuse":
            self._rate_state = "hold"
        else:
            self._rate_state = "increase"

        interval = 0.05
        if self._last_feedback is not None:
            interval = min(max(now - self._last_feedback, 0.01), 0.2)
        # GCC's multiplicative increase is ~8% per *response time*
        # (RTT + feedback interval), not per second (Carlucci et al. §4.4).
        response_time = 0.1

        if self._rate_state == "decrease":
            # WebRTC's AIMD applies at most one multiplicative decrease
            # per response-time window; per-feedback cuts would compound
            # within a single congestion episode (and punish feedback
            # paths, like Zhuge's, that report congestion earlier and
            # more often).
            if now - self._last_decrease >= response_time:
                self._last_decrease = now
                # A decrease must never raise the rate, even when the
                # receive-rate estimate runs above the current target.
                self._delay_rate = max(self.min_bps,
                                       min(self._delay_rate,
                                           0.85 * self._last_recv_rate))
        elif self._rate_state == "increase":
            self._delay_rate *= 1.08 ** (interval / response_time)
            # Never run far beyond what the path demonstrably delivers.
            ceiling = 1.5 * self._last_recv_rate + 10_000
            self._delay_rate = min(self._delay_rate, ceiling)
        self._delay_rate = max(self.min_bps, self._delay_rate)

    def _update_loss_rate(self, loss_ratio: float) -> None:
        if loss_ratio > 0.10:
            self._loss_rate *= (1 - 0.5 * loss_ratio)
        elif loss_ratio < 0.02:
            self._loss_rate *= 1.05
        self._loss_rate = max(self.min_bps, min(self._loss_rate, self.max_bps))
