"""NADA: Network-Assisted Dynamic Adaptation (RFC 8698), simplified.

One of the in-band RTP CCAs the paper lists in Table 2. NADA unifies
delay, loss, and (optionally) ECN into one aggregate congestion signal
``x_curr`` and updates the rate in two modes:

* **accelerated ramp-up** when the signal shows no congestion at all,
* **gradual update** otherwise, moving the rate toward
  ``x_ref / x_curr``-scaled priority weight with a damping term.

Our simplification keeps RFC 8698's structure (aggregation, the two
modes, the gradual-update law) over the per-packet reports our TWCC
feedback already carries.
"""

from __future__ import annotations

from repro.cca.base import FeedbackPacketReport, RateCca


class NadaController(RateCca):
    """Simplified NADA rate controller."""

    X_REF = 0.010          # reference congestion signal (10 ms)
    KAPPA = 0.5            # gradual-update scaling
    ETA = 2.0              # gradual-update damping
    TAU = 0.5              # observation period for smoothing (s)
    LOSS_PENALTY = 1.0     # seconds of virtual delay per unit loss ratio
    RAMP_UP_LIMIT = 1.5    # max x growth during accelerated ramp-up

    def __init__(self, initial_bps: float = 1e6,
                 min_bps: float = 150e3, max_bps: float = 50e6,
                 priority: float = 1.0):
        super().__init__(initial_bps, min_bps, max_bps)
        if priority <= 0:
            raise ValueError(f"priority must be positive: {priority}")
        self.priority = priority
        self._base_delay = float("inf")
        self._x_prev = self.X_REF
        self._last_update: float | None = None

    def on_feedback(self, now: float,
                    reports: list[FeedbackPacketReport]) -> None:
        if not reports:
            return
        received = [r for r in reports if r.recv_time is not None]
        loss_ratio = 1.0 - len(received) / len(reports)
        if not received:
            # Pure loss: strong multiplicative decrease.
            self.target_bps *= 0.5
            self._clamp()
            return

        # One-way-delay proxy per packet; queuing delay = delta over the
        # smallest delay ever seen.
        delays = [r.recv_time - r.send_time for r in received]
        self._base_delay = min(self._base_delay, min(delays))
        queuing = sum(d - self._base_delay for d in delays) / len(delays)

        # Aggregate congestion signal (RFC 8698 §4.2, simplified).
        x_curr = queuing + self.LOSS_PENALTY * loss_ratio

        delta = 0.1
        if self._last_update is not None:
            delta = min(max(now - self._last_update, 0.01), self.TAU)
        self._last_update = now

        if x_curr < 0.1 * self.X_REF and loss_ratio == 0.0:
            # Accelerated ramp-up: bounded multiplicative increase.
            gamma = min(0.1, 0.5 * delta / self.TAU * self.RAMP_UP_LIMIT)
            self.target_bps *= (1 + gamma)
        else:
            # Gradual update (RFC 8698 eq. 5), discretized.
            x_offset = x_curr - self.X_REF * self.priority
            x_diff = x_curr - self._x_prev
            change = (-self.KAPPA * delta / self.TAU
                      * (x_offset / self.TAU) * self.target_bps
                      - self.KAPPA * self.ETA * (x_diff / self.TAU)
                      * self.target_bps)
            max_step = 0.1 * self.target_bps
            change = max(-max_step, min(max_step, change))
            self.target_bps += change
        self._x_prev = x_curr
        self._clamp()
