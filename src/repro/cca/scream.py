"""SCReAM: Self-Clocked Rate Adaptation for Multimedia (RFC 8298), simplified.

The third in-band RTP CCA of the paper's Table 2. SCReAM is a hybrid
window/rate controller: a congestion window limits bytes in flight
(self-clocked by feedback) and a media-rate controller converts the
window into an encoder target. Our simplification keeps:

* queue-delay target tracking (``qdelay_target`` 60 ms by default),
* window increase when below target / multiplicative decrease above,
* loss-triggered halving with back-off,
* the media rate = cwnd / smoothed RTT with headroom.
"""

from __future__ import annotations

from repro.cca.base import FeedbackPacketReport, RateCca


class ScreamController(RateCca):
    """Simplified SCReAM congestion/media-rate controller."""

    QDELAY_TARGET = 0.060
    GAIN_UP = 1.0
    BETA_LOSS = 0.6
    BETA_DELAY = 0.9

    def __init__(self, initial_bps: float = 1e6,
                 min_bps: float = 150e3, max_bps: float = 50e6,
                 mss: int = 1200):
        super().__init__(initial_bps, min_bps, max_bps)
        self.mss = mss
        self.cwnd = 10 * mss
        self._base_delay = float("inf")
        self._srtt = 0.1
        self._last_loss_time = -1.0

    def on_feedback(self, now: float,
                    reports: list[FeedbackPacketReport]) -> None:
        if not reports:
            return
        received = [r for r in reports if r.recv_time is not None]
        lost = len(reports) - len(received)
        if received:
            delays = [r.recv_time - r.send_time for r in received]
            self._base_delay = min(self._base_delay, min(delays))
            qdelay = (sum(delays) / len(delays)) - self._base_delay
            rtt = 2 * (sum(delays) / len(delays))
            self._srtt = 0.875 * self._srtt + 0.125 * max(rtt, 0.01)
            acked_bytes = sum(r.size for r in received)
            self._update_cwnd(now, qdelay, acked_bytes)
        if lost > 0 and now - self._last_loss_time > self._srtt:
            self._last_loss_time = now
            self.cwnd = max(2 * self.mss, int(self.cwnd * self.BETA_LOSS))

        # Media rate: window over smoothed RTT, with mild headroom so the
        # encoder stays self-clocked rather than queue-building.
        self.target_bps = 0.9 * self.cwnd * 8 / self._srtt
        self._clamp()

    def _update_cwnd(self, now: float, qdelay: float,
                     acked_bytes: int) -> None:
        off_target = (self.QDELAY_TARGET - qdelay) / self.QDELAY_TARGET
        if off_target > 0:
            # Below target: increase proportionally to acked bytes.
            gain = self.GAIN_UP * off_target * acked_bytes * self.mss
            self.cwnd += int(gain / max(self.cwnd, 1))
        else:
            # Above target: multiplicative decrease scaled by overshoot.
            scale = max(self.BETA_DELAY, 1.0 + 0.5 * off_target)
            self.cwnd = max(2 * self.mss, int(self.cwnd * scale))
        self.cwnd = min(self.cwnd, int(self.max_bps * self._srtt / 8) + self.mss)
