"""City-scale topology generation and contention-domain-sharded runs.

The subsystem has two halves:

* :mod:`repro.city.gen` — a seeded random city-topology generator.
  :class:`CityGenSpec` (AP count, layout preset, channel-reuse factor,
  client-count distribution, roaming-mobility knobs) deterministically
  emits an ordinary content-hashable
  :class:`~repro.topology.spec.TopologySpec` — pure data, so generated
  cities flow through the content-addressed campaign cache unchanged.

* :mod:`repro.city.shard` + :mod:`repro.city.merge` — a partitioner
  that cuts a large topology along its
  :meth:`~repro.topology.spec.TopologySpec.contention_domains` (APs in
  disjoint domains never contend), simulates the shards in parallel
  campaign workers, and streams the per-shard summaries into an
  incremental fleet merge (:class:`FleetAccumulator`) with a mergeable
  delay-CDF sketch instead of holding per-packet state in memory.

``python -m repro campaign --city <preset> --aps 1000`` is the CLI
entry point; :func:`repro.experiments.drivers.city.run_city` is the
library one.
"""

from repro.city.gen import CITY_PRESETS, CityGenSpec
from repro.city.merge import DelayCdfSketch, FleetAccumulator, FleetSummary
from repro.city.shard import ShardingError, ShardPlan, partition_topology

__all__ = [
    "CITY_PRESETS",
    "CityGenSpec",
    "DelayCdfSketch",
    "FleetAccumulator",
    "FleetSummary",
    "ShardPlan",
    "ShardingError",
    "partition_topology",
]
