"""Seeded random city-topology generation.

:class:`CityGenSpec` is pure data: every knob is a JSON value, the spec
round-trips through ``as_dict``/``from_dict``, and :meth:`build` is a
deterministic function of the spec — same spec, bit-identical
:class:`~repro.topology.spec.TopologySpec` (and therefore the same
campaign content hash; generated cities cache like hand-written
topologies).

Layout presets shape the contention structure, which is the thing that
matters at fleet scale:

* ``grid`` — suburban street grid: many small contention domains
  (channel reuse works), light per-AP load;
* ``apartment`` — dense residential block: mid-size domains (walls are
  thin, reuse is imperfect), bulk competitors common;
* ``stadium`` — one bowl: few, huge domains (every channel is packed),
  many clients per AP, heavy roaming.

Structure of one generated cell: a shared WAN core (``core``), one
wired down/up edge pair per AP (per-AP jittered WAN delay), and per
client one wireless down/up edge pair on the AP's ``channel_group``
plus an RTC flow from the core. Every stochastic stream a component
will use (encoder, interference, jitter) is pinned by *name* in the
spec — node/edge defaults are name-derived and flows carry explicit
``seed_label``s — so a generated city is decomposable: simulating a
sub-topology alone reproduces exactly what those components do inside
the full city (see :mod:`repro.city.shard`).

All draws come from named :class:`~repro.sim.random.DeterministicRandom`
forks of the city seed, one stream per concern, so e.g. enabling
roaming does not reshuffle client counts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from repro.sim.random import DeterministicRandom
from repro.topology.spec import (EdgeSpec, FlowSpec, NodeSpec, TopologySpec)

#: Bump when the generated-topology layout changes incompatibly.
CITY_SCHEMA_VERSION = 1

#: Layout presets: knob defaults applied by :meth:`CityGenSpec.for_preset`.
CITY_PRESETS: dict[str, dict] = {
    "grid": {"channels": 3, "domain_size": 4,
             "clients_min": 1, "clients_max": 3,
             "competitor_share": 0.2, "roaming_share": 0.0},
    "apartment": {"channels": 3, "domain_size": 8,
                  "clients_min": 1, "clients_max": 4,
                  "competitor_share": 0.35, "roaming_share": 0.1},
    "stadium": {"channels": 6, "domain_size": 48,
                "clients_min": 6, "clients_max": 14,
                "competitor_share": 0.05, "roaming_share": 0.25},
}


@dataclass(frozen=True)
class CityGenSpec:
    """Knobs of one generated city; deterministic per (spec, seed)."""

    preset: str = "grid"
    aps: int = 100
    seed: int = 1
    #: Orthogonal channels (the channel-reuse factor): AP ``i`` sits on
    #: channel ``i % channels``.
    channels: int = 3
    #: APs per contention domain: consecutive same-channel APs are
    #: grouped into ``channel_group`` blocks of this size. Small blocks
    #: model effective spatial reuse (grid), huge blocks model one
    #: packed hall (stadium).
    domain_size: int = 4
    clients_min: int = 1
    clients_max: int = 3
    #: Fraction of clients that also run a CUBIC bulk competitor.
    competitor_share: float = 0.2
    #: Fraction of clients with a disabled backup attachment to the
    #: next AP of their own contention domain (a roam-fault target —
    #: mobility without breaking decomposability, since the backup AP
    #: contends on the same channel anyway).
    roaming_share: float = 0.0
    #: Mean one-way WAN delay; per-AP values jitter +/-25% around it.
    wan_delay: float = 0.020
    ap_mode: str = "zhuge"
    queue_kind: str = "fifo"
    queue_capacity: int = 375_000
    uplink_scale: float = 0.5
    version: int = CITY_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.preset not in CITY_PRESETS:
            raise ValueError(f"unknown city preset {self.preset!r}; "
                             f"expected one of {sorted(CITY_PRESETS)}")
        if self.aps < 1:
            raise ValueError(f"need at least one AP: {self.aps}")
        if self.channels < 1:
            raise ValueError(f"channels must be positive: {self.channels}")
        if self.domain_size < 1:
            raise ValueError(
                f"domain_size must be positive: {self.domain_size}")
        if not 1 <= self.clients_min <= self.clients_max:
            raise ValueError(
                f"need 1 <= clients_min <= clients_max, got "
                f"[{self.clients_min}, {self.clients_max}]")
        for name in ("competitor_share", "roaming_share"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        if self.wan_delay < 0:
            raise ValueError(f"negative wan_delay: {self.wan_delay}")

    @classmethod
    def for_preset(cls, preset: str, **overrides) -> "CityGenSpec":
        """Preset defaults, then explicit overrides on top."""
        if preset not in CITY_PRESETS:
            raise ValueError(f"unknown city preset {preset!r}; "
                             f"expected one of {sorted(CITY_PRESETS)}")
        values = dict(CITY_PRESETS[preset])
        values.update(overrides)
        return cls(preset=preset, **values)

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "CityGenSpec":
        return cls(**payload)

    def content_hash(self) -> str:
        """Stable digest of the generator knobs (not the output graph;
        the emitted TopologySpec hashes separately inside each
        ScenarioSpec, code fingerprint included)."""
        blob = json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- generation ----------------------------------------------------------

    def channel_of(self, ap_index: int) -> int:
        return ap_index % self.channels

    def group_of(self, ap_index: int) -> str:
        """``channel_group`` label of one AP's wireless edges."""
        channel = self.channel_of(ap_index)
        block = (ap_index // self.channels) // self.domain_size
        return f"c{channel}-d{block}"

    def build(self) -> TopologySpec:
        """Emit the city as an ordinary validated TopologySpec."""
        root = DeterministicRandom(self.seed)
        clients_rng = root.fork("city-clients")
        wan_rng = root.fork("city-wan")
        scale_rng = root.fork("city-scale")
        comp_rng = root.fork("city-competitors")
        roam_rng = root.fork("city-roam")

        nodes: list[NodeSpec] = [NodeSpec("core", "server")]
        edges: list[EdgeSpec] = []
        flows: list[FlowSpec] = []

        group_members: dict[str, list[int]] = {}
        for i in range(self.aps):
            group_members.setdefault(self.group_of(i), []).append(i)

        for i in range(self.aps):
            ap = f"ap{i:04d}"
            group = self.group_of(i)
            delay = self.wan_delay * wan_rng.uniform(0.75, 1.25)
            down_scale = scale_rng.uniform(0.75, 1.25)
            nodes.append(NodeSpec(ap, "ap", ap_mode=self.ap_mode))
            edges.append(EdgeSpec("core", ap, name=f"wan{i:04d}-dn",
                                  kind="wired", rate_bps=1e9, delay=delay))
            edges.append(EdgeSpec(ap, "core", name=f"wan{i:04d}-up",
                                  kind="wired", rate_bps=None, delay=delay))

            members = group_members[group]
            backup = None
            if len(members) > 1 and self.roaming_share > 0.0:
                backup = f"ap{members[(members.index(i) + 1) % len(members)]:04d}"

            for j in range(clients_rng.randint(self.clients_min,
                                               self.clients_max)):
                client = f"cl{i:04d}-{j}"
                nodes.append(NodeSpec(client, "client"))
                edges.append(EdgeSpec(
                    ap, client, name=f"{ap}-dn{j}", kind="wifi",
                    queue_kind=self.queue_kind,
                    queue_capacity=self.queue_capacity,
                    trace_scale=down_scale, channel_group=group))
                edges.append(EdgeSpec(
                    client, ap, name=f"{ap}-up{j}", kind="wifi",
                    trace_scale=down_scale * self.uplink_scale,
                    queue_kind="droptail", queue_capacity=200_000,
                    max_ampdu_packets=8, channel_group=group))
                if backup is not None and roam_rng.random() < self.roaming_share:
                    edges.append(EdgeSpec(
                        backup, client, name=f"bk-dn-{client}", kind="wifi",
                        queue_kind=self.queue_kind,
                        queue_capacity=self.queue_capacity,
                        trace_scale=down_scale, channel_group=group,
                        enabled=False))
                    edges.append(EdgeSpec(
                        client, backup, name=f"bk-up-{client}", kind="wifi",
                        trace_scale=down_scale * self.uplink_scale,
                        queue_kind="droptail", queue_capacity=200_000,
                        max_ampdu_packets=8, channel_group=group,
                        enabled=False))
                flows.append(FlowSpec("core", client, role="rtc",
                                      seed_label=f"enc-{client}"))
                if comp_rng.random() < self.competitor_share:
                    flows.append(FlowSpec("core", client, role="competitor"))

        return TopologySpec(nodes=tuple(nodes), edges=tuple(edges),
                            flows=tuple(flows))

    def describe(self) -> str:
        return (f"{self.preset} city: {self.aps} APs, "
                f"{self.channels} channels x {self.domain_size} APs/domain, "
                f"{self.clients_min}-{self.clients_max} clients/AP, "
                f"seed {self.seed}")
