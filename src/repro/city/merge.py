"""Streaming, order-insensitive fleet merge for sharded campaigns.

A 1000-AP city produces tens of millions of post-warmup delay samples;
holding every shard's :class:`~repro.campaign.summary.ScenarioSummary`
until the end would defeat the point of sharding. The
:class:`FleetAccumulator` consumes summaries *as shards finish* (via
``run_campaign(consume=...)``) and keeps only:

* per-shard :class:`DelayCdfSketch` histograms (integer bucket counts,
  bounded size, exactly mergeable), plus the raw sample lists only
  while the fleet-wide total stays under ``sample_budget`` — small
  fleets get exact percentiles, huge ones degrade to the sketch's
  bounded relative error without a memory cliff;
* exact integer tail counts (RTT > 200 ms, frame delay > 400 ms) and
  event/transition tallies;
* per-flow goodput moments as :class:`fractions.Fraction` — exact
  rationals, so the fleet totals and Jain fairness are independent of
  shard completion order and bit-identical between a sharded run and
  an unsharded one.

Everything folds commutatively or is folded in shard-index order at
:meth:`~FleetAccumulator.finalize`, so the resulting
:class:`FleetSummary` — and its :meth:`~FleetSummary.digest` — is a
pure function of the per-shard summaries, not of scheduling. The
digest deliberately excludes the shard count: a sharded city and the
same city simulated whole must digest identically (pinned in CI by the
``city-smoke`` job).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from repro.campaign.summary import ScenarioSummary
from repro.metrics.stats import percentile

#: Delays below this resolve to bucket 0 (0.1 ms).
SKETCH_FLOOR = 1e-4
#: Geometric bucket growth: ~2% relative resolution, < 800 buckets to
#: cover 0.1 ms .. 10 minutes.
SKETCH_GROWTH = 1.02

_LOG_GROWTH = math.log(SKETCH_GROWTH)


class DelayCdfSketch:
    """Mergeable log-bucketed delay histogram.

    Bucket index is a pure function of the value (geometric buckets of
    ``SKETCH_GROWTH`` relative width above ``SKETCH_FLOOR``), counts
    are integers, and :meth:`merge` is integer addition — so any
    partition of a sample population, merged in any order, yields the
    identical sketch. Quantile queries return the bucket's geometric
    midpoint: within ~1% of the true value, which is far below the
    natural seed-to-seed variance of a fleet percentile.
    """

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.total = 0

    @staticmethod
    def bucket_of(value: float) -> int:
        if value <= SKETCH_FLOOR:
            return 0
        return 1 + int(math.log(value / SKETCH_FLOOR) / _LOG_GROWTH)

    @staticmethod
    def bucket_value(index: int) -> float:
        """Geometric midpoint of one bucket (bucket 0 -> the floor)."""
        if index <= 0:
            return SKETCH_FLOOR
        return SKETCH_FLOOR * SKETCH_GROWTH ** (index - 0.5)

    def add(self, value: float) -> None:
        index = self.bucket_of(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.total += 1

    def add_many(self, values) -> None:
        counts = self.counts
        bucket_of = self.bucket_of
        for value in values:
            index = bucket_of(value)
            counts[index] = counts.get(index, 0) + 1
        self.total = sum(counts.values())

    def merge(self, other: "DelayCdfSketch") -> None:
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.total += other.total

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` (percent, 0..100)."""
        if not self.total:
            return 0.0
        rank = q / 100.0 * (self.total - 1)
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen > rank:
                return self.bucket_value(index)
        return self.bucket_value(max(self.counts))

    def as_dict(self) -> dict:
        return {"floor": SKETCH_FLOOR, "growth": SKETCH_GROWTH,
                "counts": {str(i): self.counts[i]
                           for i in sorted(self.counts)}}

    @classmethod
    def from_dict(cls, payload: dict) -> "DelayCdfSketch":
        sketch = cls()
        sketch.counts = {int(i): n for i, n in payload["counts"].items()}
        sketch.total = sum(sketch.counts.values())
        return sketch


@dataclass
class FleetSummary:
    """Fleet-wide rollup of one (possibly sharded) city campaign."""

    shards: int = 0
    flows: int = 0
    rtt_samples: int = 0
    frame_samples: int = 0
    #: True when percentiles come from the exact pooled samples,
    #: False when the fleet exceeded the sample budget and the
    #: sketch answered instead.
    exact: bool = True
    rtt_p50: float = 0.0
    rtt_p95: float = 0.0
    rtt_p99: float = 0.0
    frame_p99: float = 0.0
    #: Fraction of RTT samples above 200 ms (always exact: counted).
    rtt_tail_ratio: float = 0.0
    #: Fraction of frame delays above 400 ms (always exact: counted).
    delayed_frame_ratio: float = 0.0
    goodput_bps_total: float = 0.0
    mean_bitrate_bps_total: float = 0.0
    #: Jain fairness over every RTC flow's goodput, fleet-wide.
    fairness: float = 1.0
    events_processed: int = 0
    packets_processed: int = 0
    ap_packets: int = 0
    fault_phases: int = 0
    watchdog_transitions: int = 0
    control_transitions: int = 0
    steering_moves: int = 0
    rtt_sketch: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"shards": self.shards,
                "flows": self.flows,
                "rtt_samples": self.rtt_samples,
                "frame_samples": self.frame_samples,
                "exact": self.exact,
                "rtt_p50": self.rtt_p50,
                "rtt_p95": self.rtt_p95,
                "rtt_p99": self.rtt_p99,
                "frame_p99": self.frame_p99,
                "rtt_tail_ratio": self.rtt_tail_ratio,
                "delayed_frame_ratio": self.delayed_frame_ratio,
                "goodput_bps_total": self.goodput_bps_total,
                "mean_bitrate_bps_total": self.mean_bitrate_bps_total,
                "fairness": self.fairness,
                "events_processed": self.events_processed,
                "packets_processed": self.packets_processed,
                "ap_packets": self.ap_packets,
                "fault_phases": self.fault_phases,
                "watchdog_transitions": self.watchdog_transitions,
                "control_transitions": self.control_transitions,
                "steering_moves": self.steering_moves,
                "rtt_sketch": self.rtt_sketch}

    def digest(self) -> str:
        """sha256 over everything *except* the shard count and the
        engine's dispatch telemetry.

        A sharded campaign and the same city simulated whole (or with
        a different ``--shard-aps``) must produce the same digest —
        that equality is the bit-exactness contract of the sharder.
        ``events_processed`` is likewise excluded (digest contract v2):
        it counts engine dispatches, which differ between the classic
        and macro event models; ``packets_processed`` pins the
        trajectory instead.
        """
        payload = self.as_dict()
        del payload["shards"]
        del payload["events_processed"]
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def lines(self, label: str = "fleet") -> list:
        mode = "exact" if self.exact else "sketch (~2%)"
        return [
            f"--- {label} ---",
            f"  shards / flows:     {self.shards:6d} / {self.flows}",
            f"  delay samples:      {self.rtt_samples:6d} "
            f"({mode} percentiles)",
            f"  P50 / P95 / P99 RTT:"
            f"{self.rtt_p50 * 1000:6.0f} ms /"
            f"{self.rtt_p95 * 1000:5.0f} ms /"
            f"{self.rtt_p99 * 1000:5.0f} ms",
            f"  RTT > 200 ms:       {self.rtt_tail_ratio * 100:6.2f}%",
            f"  frame delay >400ms: "
            f"{self.delayed_frame_ratio * 100:6.2f}%",
            f"  goodput (fleet):    "
            f"{self.goodput_bps_total / 1e6:6.1f} Mbps",
            f"  Jain fairness:      {self.fairness:6.3f}",
            f"  control transitions:{self.control_transitions:6d} "
            f"(+{self.steering_moves} steers)",
            f"  digest:             {self.digest()[:16]}",
        ]


@dataclass
class _ShardRecord:
    """What the accumulator retains per shard until finalize."""

    rtt_sketch: DelayCdfSketch = field(default_factory=DelayCdfSketch)
    frame_sketch: DelayCdfSketch = field(default_factory=DelayCdfSketch)
    rtt_values: Optional[List[float]] = field(default_factory=list)
    frame_values: Optional[List[float]] = field(default_factory=list)
    rtt_tail: int = 0
    frame_tail: int = 0
    flows: int = 0
    goodput_sum: Fraction = Fraction(0)
    goodput_sq_sum: Fraction = Fraction(0)
    bitrate_sum: Fraction = Fraction(0)
    events_processed: int = 0
    packets_processed: int = 0
    ap_packets: int = 0
    fault_phases: int = 0
    watchdog_transitions: int = 0
    control_transitions: int = 0
    steering_moves: int = 0


class FleetAccumulator:
    """Incremental, order-insensitive fold of per-shard summaries.

    ``add`` may be called from a campaign ``consume`` callback in any
    completion order; records are keyed by shard index and folded in
    index order at :meth:`finalize`, so the result is independent of
    scheduling. Raw sample lists are dropped fleet-wide the moment the
    total crosses ``sample_budget`` (the sketches keep answering), so
    peak memory is bounded no matter how large the city is.
    """

    #: Default exact-percentile budget: ~2M floats ≈ 16 MB, far below
    #: the per-packet state of even one mid-size shard.
    DEFAULT_SAMPLE_BUDGET = 2_000_000

    def __init__(self, sample_budget: int = DEFAULT_SAMPLE_BUDGET) -> None:
        self.sample_budget = sample_budget
        self._records: Dict[int, _ShardRecord] = {}
        self._samples = 0
        self._collapsed = False

    @property
    def shards_seen(self) -> int:
        return len(self._records)

    @property
    def exact(self) -> bool:
        return not self._collapsed

    def add(self, shard_index: int, summary: ScenarioSummary) -> None:
        if shard_index in self._records:
            raise ValueError(f"shard {shard_index} added twice")
        record = _ShardRecord()
        for flow in summary.flows:
            record.rtt_sketch.add_many(flow.rtt_values)
            record.frame_sketch.add_many(flow.frame_delays)
            record.rtt_tail += sum(1 for v in flow.rtt_values if v > 0.200)
            record.frame_tail += sum(1 for v in flow.frame_delays
                                     if v > 0.400)
            if not self._collapsed:
                record.rtt_values.extend(flow.rtt_values)
                record.frame_values.extend(flow.frame_delays)
            record.flows += 1
            goodput = Fraction(flow.goodput_bps)
            record.goodput_sum += goodput
            record.goodput_sq_sum += goodput * goodput
            record.bitrate_sum += Fraction(flow.mean_bitrate_bps)
        record.events_processed = summary.events_processed
        record.packets_processed = summary.packets_processed
        record.ap_packets = summary.ap_packets
        record.fault_phases = len(summary.fault_log)
        record.watchdog_transitions = len(summary.watchdog_transitions)
        record.control_transitions = len(summary.control_transitions)
        record.steering_moves = len(summary.steering_moves)
        self._records[shard_index] = record
        self._samples += record.rtt_sketch.total + record.frame_sketch.total
        if not self._collapsed and self._samples > self.sample_budget:
            self._collapse()

    def _collapse(self) -> None:
        """Drop raw samples fleet-wide; sketches carry on."""
        self._collapsed = True
        for record in self._records.values():
            record.rtt_values = None
            record.frame_values = None

    def force_collapse(self) -> None:
        """Degrade to sketch-only percentiles immediately.

        Called by the memory watchdog under RSS pressure: raw sample
        lists are the only unbounded state the accumulator holds, so
        dropping them caps memory at the (bounded) sketches while every
        exact counter keeps its guarantees. Idempotent.
        """
        if not self._collapsed:
            self._collapse()

    def shard_indices(self) -> List[int]:
        """Shard indexes already folded (sorted) — resume skips these."""
        return sorted(self._records)

    # -- checkpoint serialization -------------------------------------------

    #: Version pin for :meth:`to_state` payloads inside journals.
    STATE_SCHEMA = 1

    def to_state(self) -> dict:
        """JSON-safe snapshot of the whole fold, bit-exactly restorable.

        Fractions serialize as ``"num/den"`` strings (exact), floats
        ride JSON's shortest-round-trip repr (exact), sketch counts are
        integers — so ``from_state(to_state())`` followed by
        :meth:`finalize` yields the identical digest to never having
        serialized. This is the payload the campaign journal checkpoints.
        """
        shards = {}
        for index, record in self._records.items():
            shards[str(index)] = {
                "rtt_sketch": record.rtt_sketch.as_dict()["counts"],
                "frame_sketch": record.frame_sketch.as_dict()["counts"],
                "rtt_values": record.rtt_values,
                "frame_values": record.frame_values,
                "rtt_tail": record.rtt_tail,
                "frame_tail": record.frame_tail,
                "flows": record.flows,
                "goodput_sum": str(record.goodput_sum),
                "goodput_sq_sum": str(record.goodput_sq_sum),
                "bitrate_sum": str(record.bitrate_sum),
                "events_processed": record.events_processed,
                "packets_processed": record.packets_processed,
                "ap_packets": record.ap_packets,
                "fault_phases": record.fault_phases,
                "watchdog_transitions": record.watchdog_transitions,
                "control_transitions": record.control_transitions,
                "steering_moves": record.steering_moves,
            }
        return {"schema": self.STATE_SCHEMA,
                "sample_budget": self.sample_budget,
                "samples": self._samples,
                "collapsed": self._collapsed,
                "shards": shards}

    @classmethod
    def from_state(cls, state: dict) -> "FleetAccumulator":
        """Rebuild an accumulator from a :meth:`to_state` snapshot."""
        if state.get("schema") != cls.STATE_SCHEMA:
            raise ValueError(
                f"accumulator state schema {state.get('schema')!r} != "
                f"{cls.STATE_SCHEMA}")
        acc = cls(sample_budget=state["sample_budget"])
        acc._samples = int(state["samples"])
        acc._collapsed = bool(state["collapsed"])
        for key, payload in state["shards"].items():
            record = _ShardRecord()
            record.rtt_sketch = DelayCdfSketch.from_dict(
                {"counts": payload["rtt_sketch"]})
            record.frame_sketch = DelayCdfSketch.from_dict(
                {"counts": payload["frame_sketch"]})
            record.rtt_values = payload["rtt_values"]
            record.frame_values = payload["frame_values"]
            record.rtt_tail = int(payload["rtt_tail"])
            record.frame_tail = int(payload["frame_tail"])
            record.flows = int(payload["flows"])
            record.goodput_sum = Fraction(payload["goodput_sum"])
            record.goodput_sq_sum = Fraction(payload["goodput_sq_sum"])
            record.bitrate_sum = Fraction(payload["bitrate_sum"])
            record.events_processed = int(payload["events_processed"])
            record.packets_processed = int(
                payload.get("packets_processed", 0))
            record.ap_packets = int(payload["ap_packets"])
            record.fault_phases = int(payload["fault_phases"])
            record.watchdog_transitions = int(
                payload["watchdog_transitions"])
            record.control_transitions = int(payload["control_transitions"])
            record.steering_moves = int(payload["steering_moves"])
            acc._records[int(key)] = record
        return acc

    def finalize(self) -> FleetSummary:
        """Fold all records (in shard-index order) into a FleetSummary."""
        rtt_sketch = DelayCdfSketch()
        frame_sketch = DelayCdfSketch()
        rtt_values: List[float] = []
        frame_values: List[float] = []
        goodput_sum = Fraction(0)
        goodput_sq_sum = Fraction(0)
        bitrate_sum = Fraction(0)
        out = FleetSummary(shards=len(self._records),
                           exact=not self._collapsed)
        for index in sorted(self._records):
            record = self._records[index]
            rtt_sketch.merge(record.rtt_sketch)
            frame_sketch.merge(record.frame_sketch)
            if not self._collapsed:
                rtt_values.extend(record.rtt_values)
                frame_values.extend(record.frame_values)
            out.flows += record.flows
            out.events_processed += record.events_processed
            out.packets_processed += record.packets_processed
            out.ap_packets += record.ap_packets
            out.fault_phases += record.fault_phases
            out.watchdog_transitions += record.watchdog_transitions
            out.control_transitions += record.control_transitions
            out.steering_moves += record.steering_moves
            goodput_sum += record.goodput_sum
            goodput_sq_sum += record.goodput_sq_sum
            bitrate_sum += record.bitrate_sum
        out.rtt_samples = rtt_sketch.total
        out.frame_samples = frame_sketch.total
        rtt_tail = sum(r.rtt_tail for r in self._records.values())
        frame_tail = sum(r.frame_tail for r in self._records.values())
        if out.rtt_samples:
            out.rtt_tail_ratio = float(
                Fraction(rtt_tail, out.rtt_samples))
        if out.frame_samples:
            out.delayed_frame_ratio = float(
                Fraction(frame_tail, out.frame_samples))
        if self._collapsed:
            out.rtt_p50 = rtt_sketch.quantile(50)
            out.rtt_p95 = rtt_sketch.quantile(95)
            out.rtt_p99 = rtt_sketch.quantile(99)
            out.frame_p99 = frame_sketch.quantile(99)
        else:
            rtt_values.sort()
            frame_values.sort()
            if rtt_values:
                out.rtt_p50 = percentile(rtt_values, 50)
                out.rtt_p95 = percentile(rtt_values, 95)
                out.rtt_p99 = percentile(rtt_values, 99)
            if frame_values:
                out.frame_p99 = percentile(frame_values, 99)
        # Exact rational arithmetic end-to-end; one correctly-rounded
        # float conversion at the edge keeps the digest independent of
        # shard boundaries and completion order.
        out.goodput_bps_total = float(goodput_sum)
        out.mean_bitrate_bps_total = float(bitrate_sum)
        if out.flows and goodput_sq_sum:
            fairness = (goodput_sum * goodput_sum
                        / (out.flows * goodput_sq_sum))
            out.fairness = min(1.0, float(fairness))
        out.rtt_sketch = rtt_sketch.as_dict()
        return out
