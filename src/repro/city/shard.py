"""Partition a TopologySpec along its contention domains.

Why contention domains are the safe cut: two APs interact *only*
through shared airtime (a :class:`~repro.wireless.contention.ContentionDomain`
per ``channel_group``) or through packets routed between their nodes.
Every stochastic stream is forked by a spec-pinned label (node/edge
``seed_label`` defaults are name-derived, flows carry explicit labels
in generated cities), never by draw order, so components in disjoint
domains evolve independently inside one simulator. Cutting between
domains therefore changes nothing about any component's trajectory —
simulating a shard alone is bit-identical to that shard's slice of the
whole-city run (pinned by ``tests/test_city.py``).

What gets stitched at the boundary: WAN-side infrastructure (nodes
with no wireless edge — the core server, wired relays) is *replicated*
into every shard that references it, together with its first-mile
wired edges. Senders and per-flow WAN links carry no cross-flow state,
so replication is exact, not an approximation.

What refuses to shard: a wired edge directly coupling two wireless
nodes of different domains (first-mile style AP-to-AP links) and a
flow whose endpoints sit in different domains both *join* those
domains into one atom — they shard together or not at all. A flow
between two infrastructure nodes has no home shard and raises
:class:`ShardingError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.spec import TopologySpec


class ShardingError(ValueError):
    """The topology cannot be cut along contention domains."""


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic decomposition of one topology.

    ``shards`` are ordinary standalone TopologySpecs (each validates,
    builds, and content-hashes like any other — shard cells cache
    independently in the campaign result cache). ``domains`` is the
    underlying contention-domain list and ``assignment[d]`` the shard
    index of domain ``d``.
    """

    shards: tuple[TopologySpec, ...]
    domains: tuple[tuple[str, ...], ...]
    assignment: tuple[int, ...]

    @property
    def sharded(self) -> bool:
        return len(self.shards) > 1


def partition_topology(spec: TopologySpec,
                       max_shard_aps: int = 32) -> ShardPlan:
    """Cut ``spec`` into shards of at most ``max_shard_aps`` APs each.

    Atoms (contention domains, merged when a flow or an AP-to-AP wired
    edge couples them) are packed first-fit in declaration order, so
    the plan is a pure function of (spec, max_shard_aps) — the same
    city always produces the same shard specs and the same cache keys.
    An atom larger than the budget becomes its own oversized shard
    (domains are atomic: a wireless edge must never cross a shard
    boundary). ``max_shard_aps <= 0`` means "one shard" — the plan then
    contains the original spec unchanged.
    """
    domains = spec.contention_domains()
    domain_of: dict[str, int] = {}
    for d, group in enumerate(domains):
        for name in group:
            domain_of[name] = d
    roles = {node.name: node.role for node in spec.nodes}

    # -- atoms: union-find over domains --------------------------------------
    parent = list(range(len(domains)))

    def find(d: int) -> int:
        while parent[d] != d:
            parent[d] = parent[parent[d]]
            d = parent[d]
        return d

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for edge in spec.edges:
        if edge.wireless:
            continue
        da = domain_of.get(edge.src)
        db = domain_of.get(edge.dst)
        if da is not None and db is not None:
            union(da, db)
    for flow in spec.flows:
        da = domain_of.get(flow.src)
        db = domain_of.get(flow.dst)
        if da is None and db is None:
            raise ShardingError(
                f"flow {flow.src}->{flow.dst} touches no contention "
                f"domain (both endpoints are wired infrastructure); "
                f"it has no home shard")
        if da is not None and db is not None:
            union(da, db)

    atoms: dict[int, list[int]] = {}
    for d in range(len(domains)):
        atoms.setdefault(find(d), []).append(d)
    atom_list = [atoms[root] for root in sorted(atoms)]

    # -- first-fit packing under the AP budget -------------------------------
    def atom_aps(atom: list[int]) -> int:
        return sum(1 for d in atom for name in domains[d]
                   if roles[name] == "ap")

    assignment = [0] * len(domains)
    if max_shard_aps <= 0:
        shard_atoms = [[d for atom in atom_list for d in atom]] \
            if atom_list else [[]]
    else:
        shard_atoms = []
        load: list[int] = []
        for atom in atom_list:
            need = atom_aps(atom)
            for s, used in enumerate(load):
                if used + need <= max_shard_aps:
                    shard_atoms[s].extend(atom)
                    load[s] = used + need
                    break
            else:
                shard_atoms.append(list(atom))
                load.append(need)
    for s, members in enumerate(shard_atoms):
        for d in members:
            assignment[d] = s

    # -- materialize shard specs ---------------------------------------------
    shards = []
    for s, members in enumerate(shard_atoms):
        included = {name for d in members for name in domains[d]}
        # Stitch in WAN-side infrastructure: closure over edges whose
        # other endpoint is a replicable (domain-free) node.
        grew = True
        while grew:
            grew = False
            for edge in spec.edges:
                for near, far in ((edge.src, edge.dst),
                                  (edge.dst, edge.src)):
                    if (near in included and far not in included
                            and far not in domain_of):
                        included.add(far)
                        grew = True
        nodes = tuple(n for n in spec.nodes if n.name in included)
        edges = tuple(e for e in spec.edges
                      if e.src in included and e.dst in included)
        flows = tuple(f for f in spec.flows
                      if f.src in included and f.dst in included)
        if not any(f.role == "rtc" for f in flows):
            raise ShardingError(
                f"shard {s} ({len(nodes)} nodes) contains no rtc flow; "
                f"the builder cannot run it")
        shards.append(TopologySpec(nodes=nodes, edges=edges, flows=flows,
                                   version=spec.version))

    # -- safety: nothing fell through the cut --------------------------------
    placed_edges = sum(1 for e in spec.edges
                       if any(e.src in {n.name for n in sh.nodes}
                              and e.dst in {n.name for n in sh.nodes}
                              for sh in shards))
    if placed_edges != len(spec.edges):
        missing = [e.name for e in spec.edges
                   if not any(e.src in {n.name for n in sh.nodes}
                              and e.dst in {n.name for n in sh.nodes}
                              for sh in shards)]
        raise ShardingError(
            f"{len(missing)} edges cross shard boundaries ({missing[:5]}); "
            f"the topology is not decomposable along contention domains")
    placed_flows = sum(len(sh.flows) for sh in shards)
    if placed_flows != len(spec.flows):
        raise ShardingError(
            f"{len(spec.flows) - placed_flows} flows span shard "
            f"boundaries; the topology is not decomposable along "
            f"contention domains")

    return ShardPlan(shards=tuple(shards), domains=domains,
                     assignment=tuple(assignment))
