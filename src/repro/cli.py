"""Command-line interface: run scenarios, campaigns, and inspect traces.

Usage::

    python -m repro run --trace W1 --protocol rtp --ap zhuge --duration 30
    python -m repro compare --trace W1 --protocol rtp --duration 30 --jobs 3
    python -m repro campaign --traces W1,W2 --schemes Gcc+FIFO,Gcc+Zhuge \
        --seeds 1,2 --duration 30 --jobs 4
    python -m repro trace --family W2 --duration 60 --out w2.json
    python -m repro trace W2 --duration 20 --out events.json --events queue,ap
    python -m repro trace-stats w2.json

The ``trace`` subcommand is dual-mode: with a positional scenario it
runs a short traced simulation and writes a Perfetto-openable event
trace (see ``repro.obs``); with ``--family`` alone it keeps its
original job of generating bandwidth-trace files.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.campaign import (ProgressPrinter, ResultCache, ScenarioSpec,
                            TraceSpec, run_campaign, run_specs,
                            summary_lines)
from repro.city import CITY_PRESETS, CityGenSpec
from repro.control import ControlSpec
from repro.faults.spec import FaultPlan
from repro.obs.session import FORMATS, TraceConfig
from repro.experiments.drivers.format import format_table, mbps, pct
from repro.experiments.drivers.traces_eval import (SCHEMES_BY_NAME,
                                                   row_from_summaries,
                                                   scheme_specs)
from repro.topology.spec import (TopologySpec, first_mile_topology,
                                 interference_topology, roaming_topology)
from repro.traces.synthetic import TRACE_NAMES
from repro.traces.trace import BandwidthTrace

TRACE_CHOICES = list(TRACE_NAMES) + ["eth", "abc-legacy"]
AP_MODES = ("none", "zhuge", "fastack", "abc")

#: Multi-AP presets emitted by ``repro topology`` (see repro.topology).
TOPOLOGY_PRESETS = ("interference", "roaming", "first-mile")


def _trace_spec(args) -> TraceSpec:
    if getattr(args, "trace_file", None):
        return TraceSpec.from_file(args.trace_file)
    # +5 s of trace so playback never wraps during the measured window.
    return TraceSpec.for_family(args.trace, duration=args.duration + 5,
                                seed=args.seed)


def _trace_config_from_args(args, out: str | None = None) -> TraceConfig | None:
    out = out or getattr(args, "trace_out", None)
    if not out:
        return None
    events = TraceConfig.parse_events(getattr(args, "trace_events", "")
                                      or "")
    return TraceConfig(events=events, out=out,
                       fmt=getattr(args, "trace_format", "chrome"))


def _fault_plan_from_args(args) -> FaultPlan | None:
    text = getattr(args, "faults", None)
    if not text:
        return None
    return FaultPlan.parse(text, seed=getattr(args, "fault_seed", 1))


def _control_from_args(args) -> ControlSpec | None:
    """``--control`` enables the full control plane with defaults."""
    if not getattr(args, "control", False):
        return None
    return ControlSpec.default()


def _topology_from_args(args) -> TopologySpec | None:
    path = getattr(args, "topology", None)
    if not path:
        return None
    with open(path) as handle:
        return TopologySpec.from_dict(json.load(handle))


def _spec_from_args(args, ap_mode: str,
                    trace_out: str | None = None) -> ScenarioSpec:
    return ScenarioSpec(
        trace=_trace_spec(args),
        protocol=args.protocol,
        cca=args.cca,
        ap_mode=ap_mode,
        queue_kind=args.queue,
        duration=args.duration,
        seed=args.seed,
        max_bps=args.max_mbps * 1e6,
        competitors=args.competitors,
        interferers=args.interferers,
        trace_config=_trace_config_from_args(args, out=trace_out),
        faults=_fault_plan_from_args(args),
        topology=_topology_from_args(args),
        control=_control_from_args(args),
    )


def _resolve_cache_args(args):
    """The ``cache=`` value for the runner from --cache-dir/--no-cache."""
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        return ResultCache(root=cache_dir)
    return True  # default root (~/.cache/repro-campaign or $REPRO_CACHE_DIR)


def _maybe_prune_cache(args, cache) -> None:
    """Honor ``--cache-prune MB`` after a campaign-style run."""
    budget_mb = getattr(args, "cache_prune", None)
    if budget_mb is None:
        return
    from repro.campaign.cache import resolve_cache
    store = resolve_cache(cache)
    if store is None:
        print("--cache-prune ignored: caching is disabled")
        return
    pruned = store.prune(int(budget_mb * 1e6))
    print(f"cache prune: kept {pruned.kept} entries "
          f"({pruned.kept_bytes / 1e6:.1f} MB), removed {pruned.pruned} "
          f"({pruned.pruned_bytes / 1e6:.1f} MB)")


def _csv(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def cmd_run(args) -> int:
    summary = run_specs([_spec_from_args(args, args.ap)])[0]
    print("\n".join(summary_lines(
        f"{args.protocol}/{args.cca} over {args.trace}, AP={args.ap}",
        summary)))
    if args.trace_out:
        print(f"wrote event trace {args.trace_out}")
    return 0


def _suffixed(path: str, tag: str) -> str:
    p = Path(path)
    return str(p.with_name(f"{p.stem}-{tag}{p.suffix}"))


def cmd_compare(args) -> int:
    modes = _csv(args.ap_modes)
    for mode in modes:
        if mode not in AP_MODES:
            raise SystemExit(f"unknown AP mode {mode!r}; "
                             f"expected one of {AP_MODES}")
    # One artifact per mode: `--trace-out t.json` -> t-none.json, ...
    outs = [(_suffixed(args.trace_out, mode) if args.trace_out else None)
            for mode in modes]
    specs = [_spec_from_args(args, mode, trace_out=out)
             for mode, out in zip(modes, outs)]
    summaries = run_specs(specs, jobs=args.jobs)
    for mode, summary in zip(modes, summaries):
        print("\n".join(summary_lines(f"AP mode: {mode}", summary)))
    for out in outs:
        if out:
            print(f"wrote event trace {out}")
    return 0


def _chaos_from_args(args, progress):
    """``(worker, progress)`` for --chaos, or ``(None, progress)``."""
    spec = getattr(args, "chaos", None)
    if not spec:
        return None, progress
    from repro.faults.chaos import build_chaos
    state_dir = getattr(args, "chaos_dir", None)
    if not state_dir:
        raise SystemExit("--chaos requires --chaos-dir (the fire-once "
                         "markers must survive the planned crash)")
    return build_chaos(spec, state_dir, progress=progress)


def cmd_city_campaign(args) -> int:
    """The ``campaign --city`` path: generate, shard, simulate, merge."""
    from repro.experiments.drivers.city import CITY_DURATION, run_city

    gen = CityGenSpec.for_preset(args.city, aps=args.aps,
                                 seed=args.city_seed)
    trace_config = None
    if args.trace_dir:
        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        trace_config = TraceConfig(
            out=str(trace_dir / "city-trace.json"))
    duration = args.duration if args.duration is not None else CITY_DURATION
    progress = None if args.quiet else ProgressPrinter()
    worker, progress = _chaos_from_args(args, progress)
    cache = _resolve_cache_args(args)
    mem_limit = (int(args.mem_limit_mb * 1e6)
                 if args.mem_limit_mb is not None else None)
    print(gen.describe())
    result = run_city(gen, duration=duration, shard_aps=args.shard_aps,
                      jobs=args.jobs, cache=cache, timeout=args.timeout,
                      retries=args.retries, progress=progress,
                      trace_config=trace_config,
                      sample_budget=args.sample_budget,
                      journal=args.journal, resume=args.resume,
                      checkpoint_every=args.checkpoint_every,
                      mem_limit_bytes=mem_limit,
                      hang_timeout=args.hang_timeout,
                      worker=worker)
    fleet = result.fleet
    print("\n".join(fleet.lines(f"fleet — {args.city}/{args.aps} APs")))
    telemetry = result.campaign.progress
    resumed = (f", {telemetry.resumed} resumed" if telemetry.resumed
               else "")
    print(f"shards: {len(result.campaign.cells)} total — "
          f"{telemetry.ok} computed, {telemetry.cached} cached"
          f"{resumed}, {telemetry.retries} retries in "
          f"{result.campaign.wall_s:.1f}s")
    _maybe_prune_cache(args, cache)
    if args.out:
        payload = {"gen": gen.as_dict(),
                   "gen_hash": gen.content_hash(),
                   "duration": duration,
                   "fleet": fleet.as_dict(),
                   "digest": fleet.digest(),
                   "progress": telemetry.as_dict(),
                   "wall_s": result.campaign.wall_s}
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.out}")
    if args.assert_cached and telemetry.cached != len(result.campaign.cells):
        print(f"--assert-cached: only {telemetry.cached}/"
              f"{len(result.campaign.cells)} shards came from the cache")
        return 1
    return 0


def cmd_campaign(args) -> int:
    if args.city:
        return cmd_city_campaign(args)
    if args.duration is None:
        args.duration = 30.0
    seeds = tuple(int(s) for s in _csv(args.seeds))
    if args.specs:
        payload = json.loads(open(args.specs).read())
        specs = [ScenarioSpec.from_dict(entry) for entry in payload]
        grid = None
    else:
        traces = _csv(args.traces)
        for name in traces:
            if name not in TRACE_CHOICES:
                raise SystemExit(f"unknown trace {name!r}; "
                                 f"expected one of {TRACE_CHOICES}")
        schemes = _csv(args.schemes)
        for name in schemes:
            if name not in SCHEMES_BY_NAME:
                raise SystemExit(
                    f"unknown scheme {name!r}; expected one of "
                    f"{sorted(SCHEMES_BY_NAME)}")
        grid = [(trace, scheme) for trace in traces for scheme in schemes]
        specs = []
        for trace, scheme in grid:
            specs.extend(scheme_specs(trace, SCHEMES_BY_NAME[scheme],
                                      args.duration, seeds))

    if getattr(args, "control", False):
        # The control spec is part of each spec (and its content hash),
        # so controlled cells never alias static ones in the cache.
        specs = [dataclasses.replace(spec, control=ControlSpec.default())
                 for spec in specs]

    topology = _topology_from_args(args)
    if topology is not None:
        # One explicit graph for the whole grid; the topology is part
        # of each spec (and its content hash), so multi-AP cells never
        # alias single-AP ones in the result cache.
        specs = [dataclasses.replace(spec, topology=topology)
                 for spec in specs]

    if args.trace_dir:
        # Per-cell event-trace artifacts. The trace config is part of
        # each spec (and its content hash), so traced cells never alias
        # untraced ones in the result cache.
        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        specs = [dataclasses.replace(
                     spec, trace_config=TraceConfig(
                         out=str(trace_dir / f"cell-{index:03d}-trace.json")))
                 for index, spec in enumerate(specs)]

    progress = None if args.quiet else ProgressPrinter()
    worker, progress = _chaos_from_args(args, progress)
    cache = _resolve_cache_args(args)
    result = run_campaign(specs, jobs=args.jobs, cache=cache,
                          timeout=args.timeout, retries=args.retries,
                          progress=progress, worker=worker,
                          journal=args.journal, resume=args.resume,
                          hang_timeout=args.hang_timeout)

    rows = []
    if grid is not None and not result.failures():
        summaries = [cell.summary for cell in result.cells]
        for position, (trace, scheme) in enumerate(grid):
            chunk = summaries[position * len(seeds):
                              (position + 1) * len(seeds)]
            row = row_from_summaries(trace, scheme, SCHEMES_BY_NAME[scheme],
                                     chunk, args.duration)
            rows.append(row)
        print(format_table(
            f"campaign — {len(result.cells)} cells over seeds {seeds}",
            ("trace", "scheme", "RTT>200ms", "frame>400ms", "fps<10",
             "bitrate"),
            [(r.trace, r.scheme, pct(r.rtt_tail_ratio),
              pct(r.delayed_frame_ratio), pct(r.low_fps_ratio),
              mbps(r.mean_bitrate_bps)) for r in rows]))

    for cell in result.failures():
        print(f"FAILED cell {cell.index} [{cell.spec.label()}] "
              f"after {cell.attempts} attempts: {cell.error}")
        if cell.flight_dump:
            print(cell.flight_dump)
    telemetry = result.progress
    print(f"cells: {len(result.cells)} total — {telemetry.ok} computed, "
          f"{telemetry.cached} cached, {telemetry.failed} failed, "
          f"{telemetry.retries} retries in {result.wall_s:.1f}s "
          f"({telemetry.cells_per_sec():.2f} cells/s)")
    if not telemetry.timeout_enforced:
        print("warning: per-cell timeout could not be enforced "
              "(no signal or watchdog-thread mechanism available); "
              f"modes seen: {telemetry.timeout_modes}")
    _maybe_prune_cache(args, cache)

    if args.out:
        payload = {
            "progress": telemetry.as_dict(),
            "wall_s": result.wall_s,
            "cells": [{"index": c.index, "status": c.status,
                       "cached": c.cached, "attempts": c.attempts,
                       "error": c.error, "spec": c.spec.as_dict()}
                      for c in result.cells],
            "rows": [{"trace": r.trace, "scheme": r.scheme,
                      "rtt_tail_ratio": r.rtt_tail_ratio,
                      "delayed_frame_ratio": r.delayed_frame_ratio,
                      "low_fps_ratio": r.low_fps_ratio,
                      "mean_bitrate_bps": r.mean_bitrate_bps}
                     for r in rows],
        }
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.out}")

    if result.failures():
        return 1
    if args.assert_cached and telemetry.cached != len(result.cells):
        print(f"--assert-cached: only {telemetry.cached}/"
              f"{len(result.cells)} cells came from the cache")
        return 1
    return 0


def cmd_resilience(args) -> int:
    from repro.experiments.drivers.resilience import fig_resilience
    lengths = tuple(float(s) for s in _csv(args.lengths))
    seeds = tuple(int(s) for s in _csv(args.seeds))
    cache = _resolve_cache_args(args)
    rows = fig_resilience(blackout_lengths=lengths,
                          duration=args.duration, seeds=seeds,
                          protocol=args.protocol, cca=args.cca,
                          jobs=args.jobs, cache=cache,
                          timeout=args.timeout, retries=args.retries)

    def _at(value):
        return f"{value:.2f}s" if value is not None else "-"

    print(format_table(
        f"resilience — blackout sweep over seeds {seeds}",
        ("scheme", "blackout", "steady P50", "fault P50", "fault P99",
         "demote", "promote"),
        [(r.scheme, f"{r.blackout_s:g}s", f"{r.steady_p50_ms:.0f} ms",
          f"{r.fault_p50_ms:.0f} ms", f"{r.fault_p99_ms:.0f} ms",
          _at(r.demote_at), _at(r.promote_at)) for r in rows]))
    _maybe_prune_cache(args, cache)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump([dataclasses.asdict(r) for r in rows], handle,
                      indent=2)
        print(f"wrote {args.out}")
    return 0


def cmd_control(args) -> int:
    from repro.experiments.drivers import control as driver
    seeds = tuple(int(s) for s in _csv(args.seeds))
    cache = _resolve_cache_args(args)
    rows, fleet_rows = driver.fig_control(
        seeds=seeds,
        duration=(args.duration if args.duration is not None
                  else driver.DURATION),
        storm=args.storm or driver.STORM,
        fleet=not args.no_fleet,
        fleet_storm=args.fleet_storm or driver.FLEET_STORM,
        fleet_duration=(args.fleet_duration
                        if args.fleet_duration is not None
                        else driver.FLEET_DURATION),
        jobs=args.jobs, cache=cache,
        timeout=args.timeout, retries=args.retries)

    def _at(value):
        return f"{value:.2f}s" if value is not None else "-"

    print(format_table(
        f"control — static vs controller over seeds {seeds} "
        f"(pooled fault windows)",
        ("scheme", "steady P50", "fault P50", "fault P99", "samples",
         "transitions", "first react"),
        [(r.scheme, f"{r.steady_p50_ms:.0f} ms", f"{r.fault_p50_ms:.0f} ms",
          f"{r.fault_p99_ms:.0f} ms", str(r.fault_samples),
          str(r.transitions), _at(r.first_reaction)) for r in rows]))
    if fleet_rows:
        print(format_table(
            "control — fleet steering on the two-AP roaming topology",
            ("scheme", "fault P50", "fault P99", "samples", "moves"),
            [(r.scheme, f"{r.fault_p50_ms:.0f} ms",
              f"{r.fault_p99_ms:.0f} ms", str(r.fault_samples),
              str(r.moves)) for r in fleet_rows]))
    _maybe_prune_cache(args, cache)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"control": [dataclasses.asdict(r) for r in rows],
                       "fleet": [dataclasses.asdict(r)
                                 for r in fleet_rows]},
                      handle, indent=2)
        print(f"wrote {args.out}")
    return 0


def cmd_cache(args) -> int:
    """``repro cache verify``: checksum-audit the result cache.

    Exit status 0 when every entry verified (stale entries are fine:
    the next read evicts them) and 2 when corruption was found — the
    damaged entries are already quarantined by the time we report, so
    a rerun exits 0.
    """
    from repro.campaign.cache import ResultCache, default_cache_root
    root = Path(args.cache_dir) if args.cache_dir else default_cache_root()
    store = ResultCache(root=root)
    print(f"cache root: {root}")
    report = store.verify()
    print("\n".join(report.lines()))
    return 0 if report.clean else 2


def cmd_trace(args) -> int:
    if args.scenario:
        return _cmd_trace_events(args)
    from repro.traces.synthetic import (abc_legacy_trace, ethernet_trace,
                                        make_trace)
    if args.family == "eth":
        trace = ethernet_trace(duration=args.duration, seed=args.seed)
    elif args.family == "abc-legacy":
        trace = abc_legacy_trace(duration=args.duration, seed=args.seed)
    else:
        trace = make_trace(args.family, duration=args.duration,
                           seed=args.seed)
    trace.save(args.out)
    print(f"wrote {args.out}: {len(trace)} samples, "
          f"mean {trace.mean_bps / 1e6:.1f} Mbps")
    return 0


def _cmd_trace_events(args) -> int:
    """Run one traced scenario and write an event-trace artifact."""
    from collections import Counter

    from repro.experiments.scenario import ScenarioConfig, run_scenario
    if args.scenario not in TRACE_CHOICES:
        raise SystemExit(f"unknown scenario {args.scenario!r}; "
                         f"expected one of {TRACE_CHOICES}")
    trace_spec = TraceSpec.for_family(args.scenario,
                                      duration=args.duration + 5,
                                      seed=args.seed)
    trace_config = TraceConfig(
        events=TraceConfig.parse_events(args.events),
        out=args.out, fmt=args.format)
    config = ScenarioConfig(trace=trace_spec.build(),
                            protocol=args.protocol, cca=args.cca,
                            ap_mode=args.ap, duration=args.duration,
                            seed=args.seed, trace_config=trace_config)
    result = run_scenario(config)
    session = result.trace_session

    counts = Counter(event.category for event in session.events)
    summary = ", ".join(f"{category}={count}"
                        for category, count in sorted(counts.items()))
    print(f"wrote {args.out} ({args.format}): "
          f"{len(session.events)} events ({summary or 'none'})")
    if session.auditor is not None:
        print("\n".join(session.auditor.report().format_lines()))
    return 0


def cmd_topology(args) -> int:
    """Emit a multi-AP topology preset as TopologySpec JSON."""
    if args.preset == "generate":
        gen = CityGenSpec.for_preset(args.city, aps=args.aps,
                                     seed=args.city_seed)
        spec = gen.build()
        print(f"# {gen.describe()} "
              f"[gen hash {gen.content_hash()[:16]}]", file=sys.stderr)
    elif args.preset == "interference":
        spec = interference_topology(ap_mode=args.ap,
                                     queue_kind=args.queue,
                                     interferers=args.interferers)
    elif args.preset == "roaming":
        spec = roaming_topology(ap_mode=args.ap, queue_kind=args.queue)
    else:  # first-mile
        spec = first_mile_topology(duration=args.duration)
    payload = spec.as_dict()
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.out}: {len(spec.nodes)} nodes, "
              f"{len(spec.edges)} edges, {len(spec.flows)} flows "
              f"({sum(1 for n in spec.nodes if n.role == 'ap')} APs)")
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


def cmd_trace_stats(args) -> int:
    from repro.traces.abw import reduction_tail_fraction
    trace = BandwidthTrace.load(args.file)
    print(f"{trace.name}: {len(trace)} samples x {trace.interval * 1000:.0f} ms")
    print(f"  mean: {trace.mean_bps / 1e6:.2f} Mbps")
    print(f"  min/max: {min(trace.rates_bps) / 1e6:.2f} / "
          f"{max(trace.rates_bps) / 1e6:.2f} Mbps")
    for threshold in (2.0, 5.0, 10.0):
        fraction = reduction_tail_fraction(trace, threshold)
        print(f"  P(ABW drop >= {threshold:g}x): {fraction * 100:.2f}%")
    return 0


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    """Bandwidth-trace selection, shared by every scenario command."""
    group = parser.add_argument_group("bandwidth trace")
    group.add_argument("--trace", default="W1", choices=TRACE_CHOICES)
    group.add_argument("--trace-file", default=None,
                       help="JSON trace file (overrides --trace)")


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    """Event tracing (repro.obs). Named --trace-out/--trace-events
    because --trace already selects the bandwidth-trace family."""
    group = parser.add_argument_group("event tracing (repro.obs)")
    group.add_argument("--trace-out", default=None,
                       help="write an event trace of the run here "
                            "(Chrome trace_event JSON, Perfetto-openable)")
    group.add_argument("--trace-events",
                       default="queue,link,ap,cca,fault,control",
                       help="comma list of event categories to trace")
    group.add_argument("--trace-format", default="chrome",
                       choices=FORMATS)


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    """Fault injection (repro.faults)."""
    group = parser.add_argument_group("fault injection (repro.faults)")
    group.add_argument("--faults", default=None,
                       help="fault plan DSL: comma list of "
                            "kind@start[+duration][*magnitude][/target], "
                            "e.g. 'blackout@10+2,reset@12', "
                            "'loss@5+3*0.3/up', or — on a multi-AP "
                            "topology — 'blackout@5+1/a-down' and "
                            "'roam@5+0.4/client:ap-b' (kinds: blackout, "
                            "rate_crash/crash, loss_burst/loss, "
                            "ap_reset/reset, roam)")
    group.add_argument("--fault-seed", type=int, default=1,
                       help="seed for stochastic faults (loss bursts)")


def _add_control_options(parser: argparse.ArgumentParser) -> None:
    """Adaptive control plane (repro.control)."""
    group = parser.add_argument_group("adaptive control (repro.control)")
    group.add_argument("--control", action="store_true",
                       help="attach the adaptive per-AP controller (and, "
                            "on multi-AP topologies, the fleet steering "
                            "daemon) with default settings")


def _add_topology_options(parser: argparse.ArgumentParser) -> None:
    """Explicit experiment graphs (repro.topology)."""
    group = parser.add_argument_group("topology (repro.topology)")
    group.add_argument("--topology", default=None, metavar="JSON",
                       help="TopologySpec JSON file declaring an explicit "
                            "(possibly multi-AP) experiment graph; "
                            "generate presets with 'repro topology'")


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    _add_trace_options(parser)
    parser.add_argument("--protocol", default="rtp", choices=("rtp", "tcp"))
    parser.add_argument("--cca", default="gcc",
                        help="gcc/nada/scream (rtp) or copa/bbr/cubic/abc (tcp)")
    parser.add_argument("--queue", default="fifo",
                        choices=("fifo", "codel", "fq_codel"))
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--max-mbps", type=float, default=4.0)
    parser.add_argument("--competitors", type=int, default=0)
    parser.add_argument("--interferers", type=int, default=0)
    _add_topology_options(parser)
    _add_obs_options(parser)
    _add_fault_options(parser)
    _add_control_options(parser)


def _add_campaign_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (<=1 runs in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/"
                             "repro-campaign)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-cell wall-clock budget in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts per failing cell")
    parser.add_argument("--cache-prune", type=float, default=None,
                        metavar="MB",
                        help="after the run, shrink the result cache to "
                             "this many megabytes (LRU by last use)")


def _add_robustness_args(parser: argparse.ArgumentParser) -> None:
    """Crash-safety and supervision knobs (campaign subcommand only)."""
    group = parser.add_argument_group("crash safety & supervision")
    group.add_argument("--journal", default=None, metavar="PATH",
                       help="append every finished cell to this "
                            "crash-safe JSONL journal (enables --resume)")
    group.add_argument("--resume", action="store_true",
                       help="restore completed cells (and, with --city, "
                            "the fleet accumulator checkpoint) from "
                            "--journal instead of recomputing them; the "
                            "result is bit-identical to an "
                            "uninterrupted run")
    group.add_argument("--checkpoint-every", type=int, default=8,
                       metavar="N",
                       help="journal a consumer-state checkpoint every "
                            "N completed cells (--city only)")
    group.add_argument("--hang-timeout", type=float, default=None,
                       metavar="S",
                       help="SIGKILL and retry any pool worker whose "
                            "cell runs longer than S wall-clock seconds")
    group.add_argument("--mem-limit-mb", type=float, default=None,
                       metavar="MB",
                       help="degrade fleet percentiles to sketch-only "
                            "when driver RSS crosses this limit "
                            "(--city only)")
    group.add_argument("--chaos", default=None, metavar="PLAN",
                       help="deterministic harness-fault plan, e.g. "
                            "'kill-worker@2,oom@4' or 'exit-run@3' "
                            "(kinds: kill-worker, oom, hang, exit-run; "
                            "counts are 1-based campaign-wide)")
    group.add_argument("--chaos-dir", default=None, metavar="DIR",
                       help="scratch directory for the chaos plan's "
                            "cross-process counters and fire-once "
                            "markers (required with --chaos)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Zhuge (SIGCOMM 2022) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scenario")
    _add_scenario_args(run_parser)
    run_parser.add_argument("--ap", default="zhuge", choices=AP_MODES)
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser("compare",
                                    help="run plain AP vs Zhuge AP")
    _add_scenario_args(compare_parser)
    compare_parser.add_argument("--ap-modes", default="none,zhuge",
                                help="comma list of AP modes to compare")
    compare_parser.add_argument("--jobs", type=int, default=0,
                                help="run the AP modes in parallel "
                                     "worker processes")
    compare_parser.set_defaults(func=cmd_compare)

    campaign_parser = sub.add_parser(
        "campaign",
        help="run a (traces x schemes x seeds) grid through the "
             "parallel cached campaign runner")
    campaign_parser.add_argument("--traces", default="W1",
                                 help="comma list of trace families")
    campaign_parser.add_argument("--schemes",
                                 default="Gcc+FIFO,Gcc+CoDel,Gcc+Zhuge",
                                 help="comma list of scheme names "
                                      "(see drivers/traces_eval.py)")
    campaign_parser.add_argument("--seeds", default="1,2",
                                 help="comma list of seeds per cell")
    campaign_parser.add_argument("--duration", type=float, default=None,
                                 help="simulated seconds per cell "
                                      "(default 30, or 20 with --city)")
    city_group = campaign_parser.add_argument_group(
        "city-scale fleets (repro.city)")
    city_group.add_argument("--city", default=None,
                            choices=sorted(CITY_PRESETS),
                            help="generate a seeded city of this layout "
                                 "preset, shard it along contention "
                                 "domains, and report fleet-wide delay "
                                 "percentiles (replaces the trace/scheme "
                                 "grid)")
    city_group.add_argument("--aps", type=int, default=100,
                            help="AP count of the generated city")
    city_group.add_argument("--city-seed", type=int, default=1,
                            help="generator seed (same seed, same city)")
    city_group.add_argument("--shard-aps", type=int, default=32,
                            help="max APs per shard (<=0: run the city "
                                 "as one unsharded cell)")
    city_group.add_argument("--sample-budget", type=int,
                            default=2_000_000,
                            help="max pooled delay samples kept exact; "
                                 "beyond it fleet percentiles come from "
                                 "the mergeable CDF sketch (~2%% error)")
    campaign_parser.add_argument("--specs", default=None,
                                 help="JSON file with a list of raw "
                                      "ScenarioSpec dicts (overrides the "
                                      "grid flags)")
    campaign_parser.add_argument("--out", default=None,
                                 help="write rows + telemetry JSON here")
    campaign_parser.add_argument("--quiet", action="store_true",
                                 help="suppress per-cell progress lines")
    campaign_parser.add_argument("--assert-cached", action="store_true",
                                 help="exit non-zero unless every cell was "
                                      "a cache hit (CI smoke check)")
    campaign_parser.add_argument("--trace-dir", default=None,
                                 help="write one event-trace artifact per "
                                      "cell into this directory")
    _add_topology_options(campaign_parser)
    _add_control_options(campaign_parser)
    _add_campaign_exec_args(campaign_parser)
    _add_robustness_args(campaign_parser)
    campaign_parser.set_defaults(func=cmd_campaign)

    cache_parser = sub.add_parser(
        "cache",
        help="inspect the campaign result cache (verify checksums, "
             "quarantine damage)")
    cache_parser.add_argument("action", choices=("verify",),
                              help="verify: checksum-audit every entry; "
                                   "corrupt ones are quarantined under "
                                   "<root>/quarantine/")
    cache_parser.add_argument("--cache-dir", default=None,
                              help="cache root (default: $REPRO_CACHE_DIR "
                                   "or ~/.cache/repro-campaign)")
    cache_parser.set_defaults(func=cmd_cache)

    resilience_parser = sub.add_parser(
        "resilience",
        help="blackout sweep: Zhuge vs passthrough vs FastAck under "
             "injected faults (repro.faults)")
    resilience_parser.add_argument("--lengths", default="0.5,1,2",
                                   help="comma list of blackout lengths "
                                        "in seconds")
    resilience_parser.add_argument("--duration", type=float, default=25.0)
    resilience_parser.add_argument("--seeds", default="1",
                                   help="comma list of seeds per cell")
    resilience_parser.add_argument("--protocol", default="tcp",
                                   choices=("rtp", "tcp"))
    resilience_parser.add_argument("--cca", default="copa")
    resilience_parser.add_argument("--out", default=None,
                                   help="write rows JSON here")
    _add_campaign_exec_args(resilience_parser)
    resilience_parser.set_defaults(func=cmd_resilience)

    control_parser = sub.add_parser(
        "control",
        help="fault-storm comparison: static Zhuge vs the adaptive "
             "controller, plus fleet steering on a two-AP topology "
             "(repro.control)")
    control_parser.add_argument("--seeds", default="1,2",
                                help="comma list of seeds per scheme")
    control_parser.add_argument("--duration", type=float, default=None,
                                help="per-AP storm run length")
    control_parser.add_argument("--storm", default=None,
                                help="per-AP fault-plan DSL override")
    control_parser.add_argument("--no-fleet", action="store_true",
                                help="skip the two-AP steering comparison")
    control_parser.add_argument("--fleet-storm", default=None,
                                help="fleet fault-plan DSL override")
    control_parser.add_argument("--fleet-duration", type=float,
                                default=None)
    control_parser.add_argument("--out", default=None,
                                help="write rows JSON here")
    _add_campaign_exec_args(control_parser)
    control_parser.set_defaults(func=cmd_control)

    trace_parser = sub.add_parser(
        "trace",
        help="record an event trace of a scenario (with a positional "
             "scenario) or generate a bandwidth-trace file (--family)")
    trace_parser.add_argument("scenario", nargs="?", default=None,
                              help="trace family to simulate with event "
                                   "tracing enabled (e.g. W2); omit for "
                                   "bandwidth-trace-file mode")
    trace_parser.add_argument("--family", default="W1",
                              choices=TRACE_CHOICES)
    trace_parser.add_argument("--duration", type=float, default=60.0)
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--out", required=True)
    trace_parser.add_argument("--events",
                              default="queue,link,ap,cca,fault,control",
                              help="comma list of event categories "
                                   "(event-trace mode)")
    trace_parser.add_argument("--format", default="chrome",
                              choices=FORMATS)
    trace_parser.add_argument("--protocol", default="rtp",
                              choices=("rtp", "tcp", "quic"))
    trace_parser.add_argument("--cca", default="gcc")
    trace_parser.add_argument("--ap", default="zhuge", choices=AP_MODES)
    trace_parser.set_defaults(func=cmd_trace)

    topology_parser = sub.add_parser(
        "topology",
        help="emit a multi-AP TopologySpec JSON preset for --topology "
             "('generate' emits a seeded repro.city topology)")
    topology_parser.add_argument("preset",
                                 choices=TOPOLOGY_PRESETS + ("generate",))
    topology_parser.add_argument("--city", default="grid",
                                 choices=sorted(CITY_PRESETS),
                                 help="city layout preset "
                                      "(generate preset)")
    topology_parser.add_argument("--aps", type=int, default=100,
                                 help="AP count (generate preset)")
    topology_parser.add_argument("--city-seed", type=int, default=1,
                                 help="generator seed (generate preset)")
    topology_parser.add_argument("--ap", default="zhuge", choices=AP_MODES,
                                 help="optimization mode of the serving AP")
    topology_parser.add_argument("--queue", default="fq_codel",
                                 choices=("fifo", "codel", "fq_codel"))
    topology_parser.add_argument("--interferers", type=int, default=5,
                                 help="contending stations "
                                      "(interference preset)")
    topology_parser.add_argument("--duration", type=float, default=60.0,
                                 help="access-trace length "
                                      "(first-mile preset)")
    topology_parser.add_argument("--out", default=None,
                                 help="write the JSON here "
                                      "(default: stdout)")
    topology_parser.set_defaults(func=cmd_topology)

    stats_parser = sub.add_parser("trace-stats",
                                  help="summarize a trace file")
    stats_parser.add_argument("file")
    stats_parser.set_defaults(func=cmd_trace_stats)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
