"""Command-line interface: run scenarios, campaigns, and inspect traces.

Usage::

    python -m repro run --trace W1 --protocol rtp --ap zhuge --duration 30
    python -m repro compare --trace W1 --protocol rtp --duration 30 --jobs 3
    python -m repro campaign --traces W1,W2 --schemes Gcc+FIFO,Gcc+Zhuge \
        --seeds 1,2 --duration 30 --jobs 4
    python -m repro trace --family W2 --duration 60 --out w2.json
    python -m repro trace-stats w2.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.campaign import (ProgressPrinter, ResultCache, ScenarioSpec,
                            TraceSpec, run_campaign, run_specs,
                            summary_lines)
from repro.experiments.drivers.format import format_table, mbps, pct
from repro.experiments.drivers.traces_eval import (SCHEMES_BY_NAME,
                                                   row_from_summaries,
                                                   scheme_specs)
from repro.traces.synthetic import TRACE_NAMES
from repro.traces.trace import BandwidthTrace

TRACE_CHOICES = list(TRACE_NAMES) + ["eth", "abc-legacy"]
AP_MODES = ("none", "zhuge", "fastack", "abc")


def _trace_spec(args) -> TraceSpec:
    if getattr(args, "trace_file", None):
        return TraceSpec.from_file(args.trace_file)
    # +5 s of trace so playback never wraps during the measured window.
    return TraceSpec.for_family(args.trace, duration=args.duration + 5,
                                seed=args.seed)


def _spec_from_args(args, ap_mode: str) -> ScenarioSpec:
    return ScenarioSpec(
        trace=_trace_spec(args),
        protocol=args.protocol,
        cca=args.cca,
        ap_mode=ap_mode,
        queue_kind=args.queue,
        duration=args.duration,
        seed=args.seed,
        max_bps=args.max_mbps * 1e6,
        competitors=args.competitors,
        interferers=args.interferers,
    )


def _resolve_cache_args(args):
    """The ``cache=`` value for the runner from --cache-dir/--no-cache."""
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        return ResultCache(root=cache_dir)
    return True  # default root (~/.cache/repro-campaign or $REPRO_CACHE_DIR)


def _csv(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def cmd_run(args) -> int:
    summary = run_specs([_spec_from_args(args, args.ap)])[0]
    print("\n".join(summary_lines(
        f"{args.protocol}/{args.cca} over {args.trace}, AP={args.ap}",
        summary)))
    return 0


def cmd_compare(args) -> int:
    modes = _csv(args.ap_modes)
    for mode in modes:
        if mode not in AP_MODES:
            raise SystemExit(f"unknown AP mode {mode!r}; "
                             f"expected one of {AP_MODES}")
    specs = [_spec_from_args(args, mode) for mode in modes]
    summaries = run_specs(specs, jobs=args.jobs)
    for mode, summary in zip(modes, summaries):
        print("\n".join(summary_lines(f"AP mode: {mode}", summary)))
    return 0


def cmd_campaign(args) -> int:
    seeds = tuple(int(s) for s in _csv(args.seeds))
    if args.specs:
        payload = json.loads(open(args.specs).read())
        specs = [ScenarioSpec.from_dict(entry) for entry in payload]
        grid = None
    else:
        traces = _csv(args.traces)
        for name in traces:
            if name not in TRACE_CHOICES:
                raise SystemExit(f"unknown trace {name!r}; "
                                 f"expected one of {TRACE_CHOICES}")
        schemes = _csv(args.schemes)
        for name in schemes:
            if name not in SCHEMES_BY_NAME:
                raise SystemExit(
                    f"unknown scheme {name!r}; expected one of "
                    f"{sorted(SCHEMES_BY_NAME)}")
        grid = [(trace, scheme) for trace in traces for scheme in schemes]
        specs = []
        for trace, scheme in grid:
            specs.extend(scheme_specs(trace, SCHEMES_BY_NAME[scheme],
                                      args.duration, seeds))

    progress = None if args.quiet else ProgressPrinter()
    result = run_campaign(specs, jobs=args.jobs,
                          cache=_resolve_cache_args(args),
                          timeout=args.timeout, retries=args.retries,
                          progress=progress)

    rows = []
    if grid is not None and not result.failures():
        summaries = [cell.summary for cell in result.cells]
        for position, (trace, scheme) in enumerate(grid):
            chunk = summaries[position * len(seeds):
                              (position + 1) * len(seeds)]
            row = row_from_summaries(trace, scheme, SCHEMES_BY_NAME[scheme],
                                     chunk, args.duration)
            rows.append(row)
        print(format_table(
            f"campaign — {len(result.cells)} cells over seeds {seeds}",
            ("trace", "scheme", "RTT>200ms", "frame>400ms", "fps<10",
             "bitrate"),
            [(r.trace, r.scheme, pct(r.rtt_tail_ratio),
              pct(r.delayed_frame_ratio), pct(r.low_fps_ratio),
              mbps(r.mean_bitrate_bps)) for r in rows]))

    for cell in result.failures():
        print(f"FAILED cell {cell.index} [{cell.spec.label()}] "
              f"after {cell.attempts} attempts: {cell.error}")
    telemetry = result.progress
    print(f"cells: {len(result.cells)} total — {telemetry.ok} computed, "
          f"{telemetry.cached} cached, {telemetry.failed} failed, "
          f"{telemetry.retries} retries in {result.wall_s:.1f}s "
          f"({telemetry.cells_per_sec():.2f} cells/s)")

    if args.out:
        payload = {
            "progress": telemetry.as_dict(),
            "wall_s": result.wall_s,
            "cells": [{"index": c.index, "status": c.status,
                       "cached": c.cached, "attempts": c.attempts,
                       "error": c.error, "spec": c.spec.as_dict()}
                      for c in result.cells],
            "rows": [{"trace": r.trace, "scheme": r.scheme,
                      "rtt_tail_ratio": r.rtt_tail_ratio,
                      "delayed_frame_ratio": r.delayed_frame_ratio,
                      "low_fps_ratio": r.low_fps_ratio,
                      "mean_bitrate_bps": r.mean_bitrate_bps}
                     for r in rows],
        }
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.out}")

    if result.failures():
        return 1
    if args.assert_cached and telemetry.cached != len(result.cells):
        print(f"--assert-cached: only {telemetry.cached}/"
              f"{len(result.cells)} cells came from the cache")
        return 1
    return 0


def cmd_trace(args) -> int:
    from repro.traces.synthetic import (abc_legacy_trace, ethernet_trace,
                                        make_trace)
    if args.family == "eth":
        trace = ethernet_trace(duration=args.duration, seed=args.seed)
    elif args.family == "abc-legacy":
        trace = abc_legacy_trace(duration=args.duration, seed=args.seed)
    else:
        trace = make_trace(args.family, duration=args.duration,
                           seed=args.seed)
    trace.save(args.out)
    print(f"wrote {args.out}: {len(trace)} samples, "
          f"mean {trace.mean_bps / 1e6:.1f} Mbps")
    return 0


def cmd_trace_stats(args) -> int:
    from repro.traces.abw import reduction_tail_fraction
    trace = BandwidthTrace.load(args.file)
    print(f"{trace.name}: {len(trace)} samples x {trace.interval * 1000:.0f} ms")
    print(f"  mean: {trace.mean_bps / 1e6:.2f} Mbps")
    print(f"  min/max: {min(trace.rates_bps) / 1e6:.2f} / "
          f"{max(trace.rates_bps) / 1e6:.2f} Mbps")
    for threshold in (2.0, 5.0, 10.0):
        fraction = reduction_tail_fraction(trace, threshold)
        print(f"  P(ABW drop >= {threshold:g}x): {fraction * 100:.2f}%")
    return 0


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default="W1", choices=TRACE_CHOICES)
    parser.add_argument("--trace-file", default=None,
                        help="JSON trace file (overrides --trace)")
    parser.add_argument("--protocol", default="rtp", choices=("rtp", "tcp"))
    parser.add_argument("--cca", default="gcc",
                        help="gcc/nada/scream (rtp) or copa/bbr/cubic/abc (tcp)")
    parser.add_argument("--queue", default="fifo",
                        choices=("fifo", "codel", "fq_codel"))
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--max-mbps", type=float, default=4.0)
    parser.add_argument("--competitors", type=int, default=0)
    parser.add_argument("--interferers", type=int, default=0)


def _add_campaign_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes (<=1 runs in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/"
                             "repro-campaign)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-cell wall-clock budget in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts per failing cell")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Zhuge (SIGCOMM 2022) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scenario")
    _add_scenario_args(run_parser)
    run_parser.add_argument("--ap", default="zhuge", choices=AP_MODES)
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser("compare",
                                    help="run plain AP vs Zhuge AP")
    _add_scenario_args(compare_parser)
    compare_parser.add_argument("--ap-modes", default="none,zhuge",
                                help="comma list of AP modes to compare")
    compare_parser.add_argument("--jobs", type=int, default=0,
                                help="run the AP modes in parallel "
                                     "worker processes")
    compare_parser.set_defaults(func=cmd_compare)

    campaign_parser = sub.add_parser(
        "campaign",
        help="run a (traces x schemes x seeds) grid through the "
             "parallel cached campaign runner")
    campaign_parser.add_argument("--traces", default="W1",
                                 help="comma list of trace families")
    campaign_parser.add_argument("--schemes",
                                 default="Gcc+FIFO,Gcc+CoDel,Gcc+Zhuge",
                                 help="comma list of scheme names "
                                      "(see drivers/traces_eval.py)")
    campaign_parser.add_argument("--seeds", default="1,2",
                                 help="comma list of seeds per cell")
    campaign_parser.add_argument("--duration", type=float, default=30.0)
    campaign_parser.add_argument("--specs", default=None,
                                 help="JSON file with a list of raw "
                                      "ScenarioSpec dicts (overrides the "
                                      "grid flags)")
    campaign_parser.add_argument("--out", default=None,
                                 help="write rows + telemetry JSON here")
    campaign_parser.add_argument("--quiet", action="store_true",
                                 help="suppress per-cell progress lines")
    campaign_parser.add_argument("--assert-cached", action="store_true",
                                 help="exit non-zero unless every cell was "
                                      "a cache hit (CI smoke check)")
    _add_campaign_exec_args(campaign_parser)
    campaign_parser.set_defaults(func=cmd_campaign)

    trace_parser = sub.add_parser("trace", help="generate a trace file")
    trace_parser.add_argument("--family", default="W1",
                              choices=TRACE_CHOICES)
    trace_parser.add_argument("--duration", type=float, default=60.0)
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--out", required=True)
    trace_parser.set_defaults(func=cmd_trace)

    stats_parser = sub.add_parser("trace-stats",
                                  help="summarize a trace file")
    stats_parser.add_argument("file")
    stats_parser.set_defaults(func=cmd_trace_stats)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
