"""Command-line interface: run scenarios and inspect traces.

Usage::

    python -m repro run --trace W1 --protocol rtp --ap zhuge --duration 30
    python -m repro compare --trace W1 --protocol rtp --duration 30
    python -m repro trace --family W2 --duration 60 --out w2.json
    python -m repro trace-stats w2.json
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.stats import percentile
from repro.traces.synthetic import (TRACE_NAMES, abc_legacy_trace,
                                    ethernet_trace, make_trace)
from repro.traces.trace import BandwidthTrace


def _load_trace(args) -> BandwidthTrace:
    if getattr(args, "trace_file", None):
        return BandwidthTrace.load(args.trace_file)
    family = args.trace
    if family == "eth":
        return ethernet_trace(duration=args.duration + 5, seed=args.seed)
    if family == "abc-legacy":
        return abc_legacy_trace(duration=args.duration + 5, seed=args.seed)
    return make_trace(family, duration=args.duration + 5, seed=args.seed)


def _config_from_args(args, ap_mode: str) -> ScenarioConfig:
    return ScenarioConfig(
        trace=_load_trace(args),
        protocol=args.protocol,
        cca=args.cca,
        ap_mode=ap_mode,
        queue_kind=args.queue,
        duration=args.duration,
        seed=args.seed,
        max_bps=args.max_mbps * 1e6,
        competitors=args.competitors,
        interferers=args.interferers,
    )


def _summarize(label: str, result) -> list[str]:
    flow = result.flows[0]
    lines = [f"--- {label} ---"]
    if flow.rtt.count:
        lines.append(f"  P50 / P99 RTT:      "
                     f"{percentile(flow.rtt.rtts, 50) * 1000:6.0f} ms / "
                     f"{percentile(flow.rtt.rtts, 99) * 1000:.0f} ms")
    lines.append(f"  RTT > 200 ms:       {flow.rtt.tail_ratio() * 100:6.2f}%")
    lines.append(f"  frame delay >400ms: "
                 f"{flow.frames.delayed_ratio() * 100:6.2f}%")
    lines.append(f"  frames decoded:     {flow.frames.count:6d}")
    lines.append(f"  goodput:            "
                 f"{flow.goodput_bps / 1e6:6.2f} Mbps")
    return lines


def cmd_run(args) -> int:
    result = run_scenario(_config_from_args(args, args.ap))
    print("\n".join(_summarize(
        f"{args.protocol}/{args.cca} over {args.trace}, AP={args.ap}",
        result)))
    return 0


def cmd_compare(args) -> int:
    for ap_mode in ("none", "zhuge"):
        result = run_scenario(_config_from_args(args, ap_mode))
        print("\n".join(_summarize(f"AP mode: {ap_mode}", result)))
    return 0


def cmd_trace(args) -> int:
    if args.family == "eth":
        trace = ethernet_trace(duration=args.duration, seed=args.seed)
    elif args.family == "abc-legacy":
        trace = abc_legacy_trace(duration=args.duration, seed=args.seed)
    else:
        trace = make_trace(args.family, duration=args.duration,
                           seed=args.seed)
    trace.save(args.out)
    print(f"wrote {args.out}: {len(trace)} samples, "
          f"mean {trace.mean_bps / 1e6:.1f} Mbps")
    return 0


def cmd_trace_stats(args) -> int:
    from repro.traces.abw import reduction_tail_fraction
    trace = BandwidthTrace.load(args.file)
    print(f"{trace.name}: {len(trace)} samples x {trace.interval * 1000:.0f} ms")
    print(f"  mean: {trace.mean_bps / 1e6:.2f} Mbps")
    print(f"  min/max: {min(trace.rates_bps) / 1e6:.2f} / "
          f"{max(trace.rates_bps) / 1e6:.2f} Mbps")
    for threshold in (2.0, 5.0, 10.0):
        fraction = reduction_tail_fraction(trace, threshold)
        print(f"  P(ABW drop >= {threshold:g}x): {fraction * 100:.2f}%")
    return 0


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default="W1",
                        choices=list(TRACE_NAMES) + ["eth", "abc-legacy"])
    parser.add_argument("--trace-file", default=None,
                        help="JSON trace file (overrides --trace)")
    parser.add_argument("--protocol", default="rtp", choices=("rtp", "tcp"))
    parser.add_argument("--cca", default="gcc",
                        help="gcc/nada/scream (rtp) or copa/bbr/cubic/abc (tcp)")
    parser.add_argument("--queue", default="fifo",
                        choices=("fifo", "codel", "fq_codel"))
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--max-mbps", type=float, default=4.0)
    parser.add_argument("--competitors", type=int, default=0)
    parser.add_argument("--interferers", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Zhuge (SIGCOMM 2022) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scenario")
    _add_scenario_args(run_parser)
    run_parser.add_argument("--ap", default="zhuge",
                            choices=("none", "zhuge", "fastack", "abc"))
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser("compare",
                                    help="run plain AP vs Zhuge AP")
    _add_scenario_args(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    trace_parser = sub.add_parser("trace", help="generate a trace file")
    trace_parser.add_argument("--family", default="W1",
                              choices=list(TRACE_NAMES) + ["eth",
                                                           "abc-legacy"])
    trace_parser.add_argument("--duration", type=float, default=60.0)
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--out", required=True)
    trace_parser.set_defaults(func=cmd_trace)

    stats_parser = sub.add_parser("trace-stats",
                                  help="summarize a trace file")
    stats_parser.add_argument("file")
    stats_parser.set_defaults(func=cmd_trace_stats)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
