"""repro.control — the adaptive control plane over the Zhuge loop.

Two layers (ROADMAP item 3, the wanctl pattern):

* :class:`~repro.control.controller.ZhugeController` — a per-AP
  GREEN/YELLOW/SOFT_RED/RED state machine with multi-signal voting and
  dwell hysteresis, retuning live Zhuge parameters per state.
* :class:`~repro.control.steering.SteeringDaemon` — a fleet loop that
  continuously re-homes RTC flows to the healthiest AP on multi-AP
  topologies.

Both are configured by the pure-data
:class:`~repro.control.spec.ControlSpec` embedded in
:class:`~repro.campaign.spec.ScenarioSpec`.
"""

from repro.control.controller import ZhugeController
from repro.control.spec import (CONTROL_STATES, GREEN, RED, SOFT_RED, YELLOW,
                                ControllerConfig, ControlPolicy, ControlSpec,
                                SteeringConfig)
from repro.control.steering import SteeringDaemon

__all__ = [
    "CONTROL_STATES", "GREEN", "YELLOW", "SOFT_RED", "RED",
    "ControlPolicy", "ControllerConfig", "SteeringConfig", "ControlSpec",
    "ZhugeController", "SteeringDaemon",
]
