"""Per-AP adaptive controller: the slow loop around the Zhuge loop.

Zhuge itself is the shortest control loop — per-packet predictions and
per-ACK feedback shaping at the AP. The :class:`ZhugeController` closes
a second, deliberately slower loop *around* it (ROADMAP item 3, the
wanctl pattern): every ``check_interval`` it collects one severity vote
per signal and walks an explicit GREEN/YELLOW/SOFT_RED/RED state
machine with dwell-time hysteresis, retuning the live Zhuge parameters
through :meth:`~repro.core.zhuge_ap.ZhugeAP.apply_policy` on every
transition. RED rides the AP's existing passthrough demotion.

Signals and their votes (severity 0..3):

=========  =============================================================
signal     vote
=========  =============================================================
health     watchdog degraded with evidence (open predictions or joined
           errors) -> 2; 3 only when additionally *stale on an
           unimpaired link* (deliveries stopped for no visible reason —
           the client vanished). An idle, evidence-free watchdog scores
           0 so an unused AP reads GREEN.
accuracy   P95 of the watchdog's windowed |predicted - actual| errors
           (the :class:`~repro.obs.audit.PredictionAuditor` join):
           above ``p95_soft_red`` -> 2, above ``p95_yellow`` -> 1.
           Needs ``min_error_samples`` joins to vote.
queue      downlink occupancy: above ``queue_soft_red`` -> 2, above
           ``queue_yellow`` -> 1.
link       blocked while the edge is enabled, or channel
           ``fault_scale`` under ``link_scale_soft_red`` -> 2 (known
           outage / rate crash: keep fast-tracking, never surrender
           the loop). Disabled edges abstain.
=========  =============================================================

The target state is the ``quorum``-th highest vote. When the controller
attaches it takes over the watchdog's demote/promote callbacks: the
watchdog keeps running as a *sensor*, but the only actuator is the
per-state :class:`~repro.control.spec.ControlPolicy`.
"""

from __future__ import annotations

from typing import Optional

from repro.control.spec import (CONTROL_STATES, GREEN, RED, STATE_LEVEL,
                                ControllerConfig)
from repro.faults.watchdog import STATE_DEGRADED
from repro.metrics.stats import percentile
from repro.sim.engine import Simulator, Timer


class ZhugeController:
    """GREEN/YELLOW/SOFT_RED/RED state machine over one Zhuge AP."""

    def __init__(self, sim: Simulator, zhuge,
                 config: Optional[ControllerConfig] = None,
                 edge=None, trace=None, track: str = "control"):
        self.sim = sim
        self.zhuge = zhuge
        self.config = config or ControllerConfig()
        #: Edge runtime handle (duck-typed: ``enabled``, ``link.blocked``,
        #: ``queue``, ``channel.fault_scale``); ``None`` means no
        #: link-level signal (bench harnesses, bare APs).
        self.edge = edge
        self.trace = trace
        self.track = track
        self.state = GREEN
        #: (time, new_state, reason) for every transition, in order.
        self.transitions: list[tuple[float, str, str]] = []
        #: Latest per-signal votes, for tests and trace events.
        self.last_votes: dict[str, int] = {}
        self._proposed: Optional[str] = None
        self._proposed_since = 0.0
        self._proposed_reason = ""
        # The controller owns the actuation: the watchdog stays attached
        # as a sensor but its direct demote/promote callbacks are
        # detached so policy application is the single writer of
        # passthrough state.
        if zhuge.watchdog is None:
            zhuge.enable_watchdog(self.config.watchdog)
        self.watchdog = zhuge.watchdog
        self.watchdog.on_demote = None
        self.watchdog.on_promote = None
        zhuge.apply_policy(self.config.policy_for(GREEN))
        # Queue drops (tail overflow, the SOFT_RED/RED clamp's head
        # trim) leave unfalsifiable open predictions in the watchdog;
        # unregister them so a deliberate shed never reads as "the
        # client vanished". Subscribed here, not in the AP, so
        # controller-less scenarios keep their exact PR 4 semantics.
        self._drop_hook = None
        queue = getattr(zhuge, "downlink_queue", None)
        if queue is not None and hasattr(queue, "on_drop"):
            self._drop_hook = (
                lambda packet, reason: self.watchdog.note_drop(packet.pkt_id))
            queue.on_drop.append(self._drop_hook)
        self._timer = Timer(sim, self.config.check_interval, self._check)

    # -- signal voting -------------------------------------------------------

    def _vote_health(self, link_impaired: bool) -> int:
        dog = self.watchdog
        if dog.state != STATE_DEGRADED:
            return 0
        # Degraded with no open predictions and no joined errors means
        # "no traffic since the last reset" — an idle AP, not a sick
        # one. Abstain so steering can still route back to it.
        if dog.open_prediction_count == 0 and not dog.recent_errors():
            return 0
        # Stale on an *unimpaired* link is the give-up signal:
        # deliveries stopped for no reason the controller can see (the
        # client vanished), so the predictions describe nothing — RED.
        # Stale behind a visible blackout or rate crash is expected,
        # and inaccuracy calls for faster tracking, not surrender:
        # SOFT_RED keeps the short AP-side feedback loop engaged — the
        # only loop that still reaches the sender while the client path
        # is down.
        return 3 if dog.stale and not link_impaired else 2

    def _vote_accuracy(self) -> int:
        errors = self.watchdog.recent_errors()
        if len(errors) < self.config.min_error_samples:
            return 0
        p95 = percentile(errors, 95)
        if p95 > self.config.p95_soft_red:
            return 2
        if p95 > self.config.p95_yellow:
            return 1
        return 0

    def _vote_queue(self) -> int:
        queue = (self.edge.queue if self.edge is not None
                 else self.zhuge.downlink_queue)
        capacity = getattr(queue, "capacity_bytes", 0)
        if not capacity:
            return 0
        occupancy = queue.byte_length / capacity
        if occupancy > self.config.queue_soft_red:
            return 2
        if occupancy > self.config.queue_yellow:
            return 1
        return 0

    def _link_impaired(self) -> bool:
        """True while the edge shows a visible outage (block or crash)."""
        edge = self.edge
        if edge is None or not edge.enabled:
            return False
        if getattr(edge.link, "blocked", False):
            return True
        channel = getattr(edge, "channel", None)
        scale = getattr(channel, "fault_scale", 1.0) if channel else 1.0
        return scale < self.config.link_scale_soft_red

    def _vote_link(self, link_impaired: bool) -> int:
        # A visible outage (blocked link, crashed rate) is a *known*
        # condition: vote SOFT_RED to track it with tight windows,
        # never RED — passthrough would silence the AP-synthesized
        # feedback, the one signal a blacked-out client cannot deliver
        # itself.
        return 2 if link_impaired else 0

    def _check(self) -> None:
        now = self.sim.now
        self._enforce_sojourn(now)
        impaired = self._link_impaired()
        votes = {"health": self._vote_health(impaired),
                 "accuracy": self._vote_accuracy(),
                 "queue": self._vote_queue(),
                 "link": self._vote_link(impaired)}
        self.last_votes = votes
        ranked = sorted(votes.values(), reverse=True)
        quorum = min(self.config.quorum, len(ranked))
        level = ranked[quorum - 1]
        target = CONTROL_STATES[level]
        if target == self.state:
            self._proposed = None
            return
        if target != self._proposed:
            self._proposed = target
            self._proposed_since = now
            self._proposed_reason = ",".join(
                f"{name}={vote}" for name, vote in votes.items() if vote)
            self._proposed_reason = self._proposed_reason or "recovered"
        dwell = (self.config.escalate_after
                 if STATE_LEVEL[target] > STATE_LEVEL[self.state]
                 else self.config.relax_after)
        if now - self._proposed_since >= dwell:
            self._transition(target, self._proposed_reason)

    def _enforce_sojourn(self, now: float) -> None:
        """Shed head packets older than the active policy's bound.

        ``apply_policy`` trims to the byte clamp once on entry; the
        sojourn ceiling instead needs *continuous* enforcement — during
        a blackout the head never drains, so packets admitted after the
        entry trim would otherwise age for the whole outage and drain
        as a multi-second tail afterwards.
        """
        policy = self.zhuge.policy
        if policy is None or policy.max_sojourn is None:
            return
        queue = getattr(self.zhuge, "downlink_queue", None)
        if queue is not None and hasattr(queue, "trim_aged"):
            queue.trim_aged(now, policy.max_sojourn, "control-sojourn")

    def _transition(self, state: str, reason: str) -> None:
        self.state = state
        self.transitions.append((self.sim.now, state, reason))
        self._proposed = None
        policy = self.config.policy_for(state)
        self.zhuge.apply_policy(policy)
        if self.trace is not None:
            self.trace.control_state(self.track, state, reason)
            self.trace.control_policy(self.track, state, policy.window,
                                      policy.passthrough)

    # -- steering interface --------------------------------------------------

    @property
    def level(self) -> int:
        """Severity level of the current state (GREEN=0 .. RED=3)."""
        return STATE_LEVEL[self.state]

    def stop(self) -> None:
        self._timer.stop()
        if self._drop_hook is not None:
            hooks = self.zhuge.downlink_queue.on_drop
            if self._drop_hook in hooks:
                hooks.remove(self._drop_hook)
            self._drop_hook = None


__all__ = ["ZhugeController", "CONTROL_STATES", "GREEN", "RED"]
