"""Pure-data control-plane specs.

A :class:`ControlSpec` is the declarative half of the control layer: a
per-AP controller configuration (state machine thresholds, dwell times,
and one :class:`ControlPolicy` per state) plus an optional fleet-level
steering configuration, all plain JSON values. It lives inside
:class:`~repro.campaign.spec.ScenarioSpec`, so it participates in the
spec content hash (a controlled cell never aliases a static one in the
campaign cache) and survives pickling across worker processes.
``control=None`` is the identity: payloads and hashes are bit-identical
to pre-control specs, pinned by the golden digests.

The state machine (wanctl pattern, ROADMAP item 3):

.. code-block:: text

   GREEN -> YELLOW -> SOFT_RED -> RED      (escalate_after dwell)
   RED -> SOFT_RED -> YELLOW -> GREEN      (relax_after dwell)

Each state maps to a :class:`ControlPolicy` that retunes the live Zhuge
parameters through :meth:`~repro.core.zhuge_ap.ZhugeAP.apply_policy`.
The default ladder shortens the estimation windows and token TTLs as
conditions degrade (track a fast-changing channel, stop spending stale
credits, bound the worst-case ACK delay), clamps the downlink queue in
SOFT_RED/RED (shed stale backlog instead of draining it at a crashed
link rate), and finally falls back to the existing passthrough demotion
in RED.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Optional

from repro.faults.spec import WatchdogConfig

GREEN = "green"
YELLOW = "yellow"
SOFT_RED = "soft_red"
RED = "red"

#: Ordered worst-last; index = severity level (0..3).
CONTROL_STATES = (GREEN, YELLOW, SOFT_RED, RED)

STATE_LEVEL = {state: level for level, state in enumerate(CONTROL_STATES)}


@dataclass(frozen=True)
class ControlPolicy:
    """One state's live Zhuge parameter set (§4/§5 knobs).

    ``window`` drives every sliding-window estimator (tx rate, dequeue
    intervals, delta history; the long-term rate window stays 10x as in
    :class:`~repro.core.fortune_teller.FortuneTeller`). ``token_ttl`` /
    ``token_bank_cap`` bound the out-of-band token bank,
    ``burst_correction`` gates the §4.2 burst discount,
    ``feedback_interval`` is the in-band TWCC cadence,
    ``max_extra_delay`` clamps the worst-case ACK delay,
    ``queue_limit`` clamps the downlink queue to that fraction of its
    native capacity (head-trimming the excess — a full queue at a
    crashed link rate is seconds of committed tail latency that no
    estimator retune can undo), ``max_sojourn`` sheds head packets
    that have already queued longer than the bound (enforced at the
    controller cadence: a packet that stale arrives too late to
    matter), and ``passthrough`` forwards everything undelayed (the
    RED fallback).
    """

    window: float = 0.040
    token_ttl: Optional[float] = None
    token_bank_cap: int = 65536
    burst_correction: bool = True
    feedback_interval: float = 0.040
    max_extra_delay: float = 0.5
    queue_limit: Optional[float] = None
    max_sojourn: Optional[float] = None
    passthrough: bool = False

    def __post_init__(self) -> None:
        for name in ("window", "feedback_interval", "max_extra_delay"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive: "
                                 f"{getattr(self, name)}")
        if self.token_ttl is not None and self.token_ttl <= 0:
            raise ValueError(f"token_ttl must be positive: {self.token_ttl}")
        if self.queue_limit is not None and not 0 < self.queue_limit <= 1:
            raise ValueError(f"queue_limit must be in (0, 1]: "
                             f"{self.queue_limit}")
        if self.max_sojourn is not None and self.max_sojourn <= 0:
            raise ValueError(f"max_sojourn must be positive: "
                             f"{self.max_sojourn}")
        if self.token_bank_cap < 1:
            raise ValueError(f"token_bank_cap must be >= 1: "
                             f"{self.token_bank_cap}")

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ControlPolicy":
        return cls(**payload)


def _yellow_policy() -> ControlPolicy:
    return ControlPolicy(window=0.020, feedback_interval=0.020,
                         token_ttl=0.5, max_extra_delay=0.25)


def _soft_red_policy() -> ControlPolicy:
    return ControlPolicy(window=0.010, feedback_interval=0.010,
                         token_ttl=0.2, token_bank_cap=4096,
                         burst_correction=False, max_extra_delay=0.1,
                         queue_limit=0.25, max_sojourn=0.25)


def _red_policy() -> ControlPolicy:
    return ControlPolicy(window=0.010, feedback_interval=0.010,
                         token_ttl=0.2, token_bank_cap=4096,
                         burst_correction=False, max_extra_delay=0.1,
                         queue_limit=0.1, max_sojourn=0.1,
                         passthrough=True)


@dataclass(frozen=True)
class ControllerConfig:
    """Per-AP state machine: voting thresholds, dwells, and policies.

    Every ``check_interval`` the controller collects one severity vote
    per signal (watchdog health, windowed P95 prediction error, queue
    occupancy, link state) and targets the ``quorum``-th highest vote.
    A *worse* target must persist ``escalate_after`` seconds before the
    transition fires; a *better* one ``relax_after`` seconds — dwell
    hysteresis on every edge, so a flapping signal cannot flap the
    policy.
    """

    check_interval: float = 0.1
    escalate_after: float = 0.2
    relax_after: float = 1.0
    quorum: int = 1
    min_error_samples: int = 8
    p95_yellow: float = 0.08
    p95_soft_red: float = 0.2
    queue_yellow: float = 0.5
    queue_soft_red: float = 0.85
    link_scale_soft_red: float = 0.5
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)
    green: ControlPolicy = field(default_factory=ControlPolicy)
    yellow: ControlPolicy = field(default_factory=_yellow_policy)
    soft_red: ControlPolicy = field(default_factory=_soft_red_policy)
    red: ControlPolicy = field(default_factory=_red_policy)

    def __post_init__(self) -> None:
        for name in ("check_interval", "escalate_after", "relax_after"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive: "
                                 f"{getattr(self, name)}")
        if self.quorum < 1:
            raise ValueError(f"quorum must be >= 1: {self.quorum}")
        if self.min_error_samples < 1:
            raise ValueError(f"min_error_samples must be >= 1: "
                             f"{self.min_error_samples}")
        if not 0 < self.p95_yellow <= self.p95_soft_red:
            raise ValueError(f"need 0 < p95_yellow <= p95_soft_red: "
                             f"{self.p95_yellow}, {self.p95_soft_red}")
        if not 0 < self.queue_yellow <= self.queue_soft_red <= 1:
            raise ValueError(f"need 0 < queue_yellow <= queue_soft_red <= 1: "
                             f"{self.queue_yellow}, {self.queue_soft_red}")
        if not 0 < self.link_scale_soft_red <= 1:
            raise ValueError(f"link_scale_soft_red must be in (0, 1]: "
                             f"{self.link_scale_soft_red}")

    def policy_for(self, state: str) -> ControlPolicy:
        if state not in CONTROL_STATES:
            raise ValueError(f"unknown control state {state!r}; "
                             f"expected one of {CONTROL_STATES}")
        return getattr(self, state)

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ControllerConfig":
        payload = dict(payload)
        watchdog = payload.get("watchdog")
        if watchdog is not None:
            payload["watchdog"] = WatchdogConfig.from_dict(watchdog)
        for state in CONTROL_STATES:
            policy = payload.get(state)
            if policy is not None:
                payload[state] = ControlPolicy.from_dict(policy)
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass(frozen=True)
class SteeringConfig:
    """Fleet-level re-homing: move RTC flows to the healthiest AP.

    Every ``check_interval`` the daemon scores each candidate AP from
    its controller state (GREEN=3 .. RED=0) and re-homes a client when
    the best candidate beats the serving AP by at least
    ``score_margin`` — with the default margin of 2 a GREEN AP pulls
    clients off SOFT_RED/RED ones but never off another GREEN/YELLOW,
    so symmetric healthy APs never flap. ``min_dwell`` spaces
    consecutive moves of the same client; ``handoff`` is the
    begin-roam to re-association gap (the over-the-air handshake).
    """

    check_interval: float = 0.25
    min_dwell: float = 2.0
    score_margin: float = 2.0
    handoff: float = 0.05

    def __post_init__(self) -> None:
        for name in ("check_interval", "min_dwell", "handoff"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive: "
                                 f"{getattr(self, name)}")
        if self.score_margin <= 0:
            raise ValueError(f"score_margin must be positive: "
                             f"{self.score_margin}")

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SteeringConfig":
        return cls(**payload)


@dataclass(frozen=True)
class ControlSpec:
    """A scenario's full control-plane configuration.

    ``controller=None`` disables per-AP adaptation (steering then scores
    every AP as neutral); ``steering=None`` disables re-homing. A spec
    with both disabled is the identity: :class:`ScenarioSpec` normalizes
    it to ``None``, so it hashes and behaves exactly like no spec.
    """

    controller: Optional[ControllerConfig] = field(
        default_factory=ControllerConfig)
    steering: Optional[SteeringConfig] = None

    @property
    def enabled(self) -> bool:
        return self.controller is not None or self.steering is not None

    @classmethod
    def default(cls) -> "ControlSpec":
        """Controller plus steering, all defaults (the CLI ``--control``)."""
        return cls(controller=ControllerConfig(), steering=SteeringConfig())

    def as_dict(self) -> dict:
        payload = {}
        if self.controller is not None:
            payload["controller"] = self.controller.as_dict()
        if self.steering is not None:
            payload["steering"] = self.steering.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ControlSpec":
        controller = payload.get("controller")
        steering = payload.get("steering")
        return cls(
            controller=(ControllerConfig.from_dict(controller)
                        if controller is not None else None),
            steering=(SteeringConfig.from_dict(steering)
                      if steering is not None else None))
