"""Fleet-level steering: continuously re-home RTC flows to healthy APs.

PR 5's roam handoff moved a client once, as a scripted fault response.
The :class:`SteeringDaemon` generalizes it into an ongoing optimization
loop (the wanctl "steer latency-sensitive traffic to the healthiest
WAN" half): every ``check_interval`` it scores each candidate AP from
its :class:`~repro.control.controller.ZhugeController` state (GREEN=3
.. RED=0, controller-less APs score neutral 1.5) and re-homes a
dual-homed client when the best candidate beats the serving AP by at
least ``score_margin``. Moves reuse the builder's real handoff —
``begin_roam`` (block + flush) followed ``handoff`` seconds later by
``complete_roam`` (re-associate, release-floor carry-over, 802.11r
frame forwarding) — so a steered move is indistinguishable from a
scripted roam fault at the datapath level.

Hysteresis is layered: the margin keeps symmetric healthy APs from
flapping, ``min_dwell`` spaces consecutive moves of one client, and the
controller's own dwell times debounce the scores themselves.
"""

from __future__ import annotations

from repro.control.spec import SteeringConfig
from repro.sim.engine import Simulator, Timer

#: Score of an AP with no controller attached (between YELLOW and
#: SOFT_RED): unknown health neither attracts nor repels traffic.
NEUTRAL_SCORE = 1.5


class SteeringDaemon:
    """Periodic re-homing loop over a built multi-AP topology."""

    def __init__(self, sim: Simulator, builder, controllers: dict,
                 config: SteeringConfig = None, trace=None,
                 track: str = "steering"):
        self.sim = sim
        self.builder = builder
        self.controllers = controllers
        self.config = config or SteeringConfig()
        self.trace = trace
        self.track = track
        #: (time, client, old_ap, new_ap) for every completed move.
        self.moves: list[tuple[float, str, str, str]] = []
        self._last_move: dict[str, float] = {}
        self._in_flight: set[str] = set()
        self._timer = Timer(sim, self.config.check_interval, self._check)

    # -- scoring -------------------------------------------------------------

    def score(self, ap_name: str) -> float:
        controller = self.controllers.get(ap_name)
        if controller is None:
            return NEUTRAL_SCORE
        return 3.0 - controller.level

    def _candidates(self, client: str) -> list[str]:
        """APs the client could attach to, in topology declaration order."""
        seen = []
        for er in self.builder._attachment_edges(client):
            ap = (er.spec.src if er.spec.src in self.builder.aps
                  else er.spec.dst)
            if ap not in seen:
                seen.append(ap)
        return seen

    def _serving_ap(self, client: str) -> str:
        for fr in self.builder._rtc:
            if client in (fr.spec.src, fr.spec.dst) and fr.serving_ap:
                return fr.serving_ap
        return ""

    def _clients(self) -> list[str]:
        """Dual-homed RTC clients, in flow declaration order."""
        seen = []
        for fr in self.builder._rtc:
            for node in (fr.spec.src, fr.spec.dst):
                if node in seen or node in self.builder.aps:
                    continue
                if len(self._candidates(node)) >= 2:
                    seen.append(node)
        return seen

    # -- the steering loop ---------------------------------------------------

    def _check(self) -> None:
        now = self.sim.now
        for client in self._clients():
            if client in self._in_flight:
                continue
            if now - self._last_move.get(client, -1e18) < self.config.min_dwell:
                continue
            serving = self._serving_ap(client)
            if not serving:
                continue
            candidates = self._candidates(client)
            best = max(candidates, key=self.score)
            if best == serving:
                continue
            if self.score(best) - self.score(serving) < self.config.score_margin:
                continue
            self._begin(client, serving, best)

    def _begin(self, client: str, old_ap: str, new_ap: str) -> None:
        now = self.sim.now
        self._in_flight.add(client)
        self._last_move[client] = now
        self.builder.begin_roam(client)
        if self.trace is not None:
            self.trace.control_steer(self.track, client, old_ap, new_ap,
                                     "begin")
        self.sim.schedule(self.config.handoff,
                          lambda: self._complete(client, old_ap, new_ap))

    def _complete(self, client: str, old_ap: str, new_ap: str) -> None:
        self.builder.complete_roam(client, new_ap)
        self._in_flight.discard(client)
        self.moves.append((self.sim.now, client, old_ap, new_ap))
        if self.trace is not None:
            self.trace.control_steer(self.track, client, old_ap, new_ap,
                                     "complete")
        # The abandoned AP keeps open predictions for frames that will
        # never be delivered — wipe them so its watchdog reads "idle"
        # rather than "stale forever" and the AP can be steered back to
        # once it is actually healthy again. Only safe when no RTC flow
        # is still served there.
        old_rt = self.builder.aps.get(old_ap)
        if (old_rt is not None and old_rt.zhuge is not None
                and not any(fr.serving_ap == old_ap
                            for fr in self.builder._rtc)):
            old_rt.zhuge.reset_state()

    def stop(self) -> None:
        self._timer.stop()


__all__ = ["SteeringDaemon", "NEUTRAL_SCORE"]
