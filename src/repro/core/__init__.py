"""Zhuge: the paper's primary contribution.

* :class:`FortuneTeller` predicts each downlink packet's remaining delay
  on arrival at the AP (qLong + qShort + tx, §4).
* :class:`OutOfBandFeedbackUpdater` delays uplink ACKs by sampled delay
  deltas with a token bank and order preservation (§5.2, Algorithms 1-2).
* :class:`InBandFeedbackUpdater` constructs TWCC feedback at the AP from
  predicted arrival times and suppresses client feedback (§5.3).
* :class:`ZhugeAP` is the middlebox wiring both into an access point.
"""

from repro.core.sliding_window import (
    SlidingWindowRate,
    DequeueIntervalEstimator,
    BurstSizeTracker,
    DelayDeltaHistory,
)
from repro.core.fortune_teller import FortuneTeller, NaiveQueueEstimator
from repro.core.feedback_updater import (
    FeedbackKind,
    OutOfBandFeedbackUpdater,
    classify_protocol,
)
from repro.core.inband import InBandFeedbackUpdater
from repro.core.zhuge_ap import ZhugeAP

__all__ = [
    "SlidingWindowRate",
    "DequeueIntervalEstimator",
    "BurstSizeTracker",
    "DelayDeltaHistory",
    "FortuneTeller",
    "NaiveQueueEstimator",
    "FeedbackKind",
    "OutOfBandFeedbackUpdater",
    "classify_protocol",
    "InBandFeedbackUpdater",
    "ZhugeAP",
]
