"""Out-of-band Feedback Updater: delaying ACKs (§5.2, Algorithms 1-2).

On each downlink data-packet arrival, the updater computes the delay
delta against the previous packet's predicted total delay. Non-negative
deltas enter a sliding-window history; negative deltas are banked as
*tokens* (an ACK cannot be delayed by a negative amount).

On each uplink feedback-packet arrival, the updater:

1. clamps the earliest send time to the previous ACK's send time
   (order preservation),
2. samples one delta from the recent-delta distribution
   (distributional equivalence, not per-packet mapping),
3. spends banked tokens against the sampled delay so the *average*
   injected delay matches the average predicted delta,
4. schedules the ACK's forwarding after the resulting delay.

The updater never parses transport payloads — it identifies flows by
five-tuple only, so it works for encrypted QUIC exactly as for TCP.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Optional

from repro.core.fortune_teller import DelayPrediction, FortuneTeller
from repro.core.sliding_window import (DEFAULT_WINDOW, DelayDeltaHistory,
                                       TokenBank)
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom


#: The uplink kinds the updater delays (hoisted: the per-ACK membership
#: test must not rebuild the tuple of enum attributes per packet).
_FEEDBACK_KINDS = frozenset((PacketKind.ACK, PacketKind.RTCP_TWCC,
                             PacketKind.RTCP_OTHER))


class FeedbackKind(enum.Enum):
    """Table 2's protocol classification."""

    OUT_OF_BAND = "out-of-band"  # TCP, QUIC: ACK arrival timing is the signal
    IN_BAND = "in-band"          # RTP/RTCP: feedback payload carries timings


def classify_protocol(protocol: str) -> FeedbackKind:
    """Map a protocol name to its feedback mechanism (paper Table 2)."""
    mapping = {
        "tcp": FeedbackKind.OUT_OF_BAND,
        "quic": FeedbackKind.OUT_OF_BAND,
        "rtp": FeedbackKind.IN_BAND,
        "rtcp": FeedbackKind.IN_BAND,
        "webrtc": FeedbackKind.IN_BAND,
    }
    key = protocol.lower()
    if key not in mapping:
        raise ValueError(f"unknown protocol {protocol!r}; "
                         f"expected one of {sorted(mapping)}")
    return mapping[key]


class OutOfBandFeedbackUpdater:
    """Delays uplink ACKs to carry predicted downlink delay deltas."""

    def __init__(self, sim: Simulator, fortune_teller: FortuneTeller,
                 rng: Optional[DeterministicRandom] = None,
                 window: float = DEFAULT_WINDOW,
                 use_tokens: bool = True,
                 distributional: bool = True,
                 max_extra_delay: float = 0.5,
                 max_tokens: int = 65536,
                 token_ttl: Optional[float] = None):
        self.sim = sim
        self.fortune_teller = fortune_teller
        self.window = window
        self.use_tokens = use_tokens
        self.distributional = distributional
        self.max_extra_delay = max_extra_delay
        self.delta_history = DelayDeltaHistory(
            window, rng or DeterministicRandom(0))
        # Bounded token FIFO with an exact O(1) running sum. The default
        # cap (65536) never binds in realistic traces — it is a memory
        # backstop against pathological monotone-improving stretches.
        self.token_history = TokenBank(clock=lambda: self.sim.now,
                                       max_entries=max_tokens,
                                       ttl=token_ttl)
        self._last_total_delay: Optional[float] = None
        self._last_sent_time = 0.0
        #: Degraded-mode switch: while True the updater stops sampling
        #: and banking entirely — ACKs are forwarded with zero extra
        #: delay (order preservation only). Flipped by the AP watchdog.
        self.passthrough = False
        # Non-distributional mode: (banked_at, delta) pairs. Entries age
        # out after ``window`` — when ACKs arrive slower than data
        # packets (delayed-ACK TCP: 1 ACK per 2 segments), the queue
        # would otherwise grow without bound over a long trace, and a
        # delta banked seconds ago no longer describes current downlink
        # delay anyway.
        self._pending_deltas: deque[tuple[float, float]] = deque()
        self.pending_deltas_expired = 0
        self.acks_delayed = 0
        self.total_injected_delay = 0.0
        #: Tracing probe (:class:`repro.obs.bus.TraceBus`); ``None`` =
        #: disabled. Both datapath entry points read it exactly once.
        self.trace = None
        self._track = "ap"
        #: The AP's canonical uplink-forward callable.  When a delayed
        #: ACK's ``forward`` *is* this callable, the hold is served by a
        #: :class:`~repro.sim.engine.TimedRun` instead of a scheduler
        #: event — one sentinel per burst instead of one heap event (and
        #: one closure) per ACK.  Unknown forwards keep the classic
        #: schedule; both assign their seq at ACK time, so the two are
        #: tie-order identical.
        self.release_forward: Optional[Callable[[Packet], None]] = None
        self._release_run = None
        self._macro = sim.event_model == "macro"

    def enable_trace(self, bus, track: str = "ap") -> None:
        self.trace = bus
        self._track = track

    # -- Algorithm 1: on downlink data packets --------------------------------

    def on_data_packet(self, packet: Packet) -> float:
        """Predict the packet's fortune; bank the delta. Returns the delta.

        The ledger updates inline the bodies of
        ``DelayDeltaHistory.push`` (+ its expiry/compaction) and
        ``TokenBank.append`` — identical state transitions, exact-sum
        operation order, and ``ops``/``capped`` accounting, without the
        per-packet call frames.
        """
        teller = self.fortune_teller
        if teller.record_predictions:
            prediction = teller.observe_arrival(packet)
        elif not teller._fast_predict:
            prediction = teller.predict()
        else:
            # Inlined ``FortuneTeller.predict`` fast path — the same
            # cache check, estimator state transitions, arithmetic
            # order, and counters, sharing this frame (the predict call
            # is the hottest per-packet edge in the AP datapath).
            now = self.sim._now
            if (teller.min_estimation_interval > 0
                    and teller._cached_prediction is not None
                    and now - teller._cached_at
                    < teller.min_estimation_interval):
                teller.cache_hits += 1
                prediction = teller._cached_prediction
            else:
                queue = teller.queue
                q_size = queue._bytes
                if teller.burst_correction:
                    bt = teller.burst_tracker
                    bt.ops += 1
                    horizon = now - bt.window
                    bursts = bt._bursts
                    bmax = bt._max
                    while bursts and bursts[0][0] < horizon:
                        entry = bursts.popleft()
                        if bmax and bmax[0] is entry:
                            bmax.popleft()
                    start = bt._current_start
                    if start is not None and now - start >= bt.window:
                        bt._current_start = None
                        bt._current_bytes = 0
                    best = bt._current_bytes
                    if bmax:
                        cand = bmax[0][1]
                        if cand > best:
                            best = cand
                    q_size -= best
                    if q_size < 0:
                        q_size = 0
                txr = teller.tx_rate
                txr.ops += 1
                horizon = now - txr.window
                events = txr._events
                while events and events[0][0] < horizon:
                    txr._bytes_in_window -= events.popleft()[1]
                if events:
                    span = txr.window
                    first = txr._first_event
                    if first is not None:
                        elapsed = now - first
                        if elapsed < span:
                            span = elapsed
                    if span < txr.min_span:
                        span = txr.min_span
                    rate = txr._bytes_in_window * 8 / span
                else:
                    rate = 0.0
                if rate <= 0:
                    rate = teller.tx_rate_long.rate_bps(now)
                q_long = (q_size * 8 / rate) if rate > 0 else 0.0
                qpackets = queue._packets
                if qpackets:
                    enqueued = qpackets[0].enqueued_at
                    q_short = (max(0.0, now - enqueued)
                               if enqueued is not None else 0.0)
                else:
                    q_short = 0.0
                di = teller.dequeue_intervals
                di.ops += 1
                horizon = now - di.window
                intervals = di._intervals
                dsum = di._sum
                while intervals and intervals[0][0] < horizon:
                    dsum.subtract(intervals.popleft()[1])
                if intervals:
                    tx = dsum.value() / len(intervals)
                else:
                    dsum.reset()
                    tx = 0.0
                teller.predictions_made += 1
                prediction = DelayPrediction(q_long, q_short, tx)
                teller._cached_prediction = prediction
                teller._cached_at = now
        tr = self.trace
        if tr is not None:
            tr.ap_prediction(self._track, packet, prediction)
        # ``prediction.total``, spelled out (property body: left-to-right).
        current = prediction.q_long + prediction.q_short + prediction.tx
        last = self._last_total_delay
        if last is None:
            self._last_total_delay = current
            return 0.0
        delta = current - last
        self._last_total_delay = current
        if self.passthrough:
            # Degraded: keep observing (so health can recover) but bank
            # nothing — stale predictions must not shape future ACKs.
            return delta
        if delta >= 0:
            now = self.sim._now
            hist = self.delta_history
            hist.ops += 1
            times = hist._times
            values = hist._values
            hsum = hist._sum
            times.append(now)
            values.append(delta)
            hsum.add(delta)
            horizon = now - hist.window
            head = hist._head
            n = len(times)
            while head < n and times[head] < horizon:
                hsum.subtract(values[head])
                head += 1
            hist._head = head
            if head == n:
                times.clear()
                values.clear()
                hist._head = 0
                hsum.reset()
            elif head > hist._COMPACT_MIN and head * 2 > n:
                del times[:head]
                del values[:head]
                hist._head = 0
            if not self.distributional:
                self._pending_deltas.append((now, delta))
                self._expire_pending(now)
            if tr is not None:
                tr.ap_delta(self._track, delta, banked=False)
        elif self.use_tokens:
            bank = self.token_history
            entries = bank._entries
            if len(entries) >= bank.max_entries:
                _, old = entries.popleft()
                bank._sum.subtract(old)
                bank.capped += 1
            token = -delta
            entries.append((self.sim.now, token))
            bank._sum.add(token)
            if tr is not None:
                tr.ap_delta(self._track, delta, banked=True)
                tr.ap_tokens(self._track, self.outstanding_tokens)
        elif tr is not None:
            tr.ap_delta(self._track, delta, banked=False)
        return delta

    def _expire_pending(self, now: float) -> None:
        horizon = now - self.window
        while self._pending_deltas and self._pending_deltas[0][0] < horizon:
            self._pending_deltas.popleft()
            self.pending_deltas_expired += 1

    @property
    def pending_delta_count(self) -> int:
        return len(self._pending_deltas)

    # -- Algorithm 2: on uplink feedback packets ---------------------------------

    def ack_delay(self, arrival_time: float) -> float:
        """Compute how long to hold the ACK that just arrived.

        Three goals from §5.2, reconciled:

        * *order preservation* — release times never go backwards; an ACK
          arriving while the previous one is still held waits for it;
        * *no RTT overestimation* — the ordering wait is NOT fed back
          into the delay ledger, so one large sampled delta delays its
          immediate successors but does not ratchet all later ACKs
          (tokens additionally cancel sampled deltas);
        * *distributional equivalence* — the extra delay is sampled from
          the recent downlink delay-delta distribution.
        """
        if self.passthrough:
            # Degraded: no injected delay; only order preservation so
            # release times stay monotone across the demote boundary.
            release = max(arrival_time, self._last_sent_time)
            self._last_sent_time = release
            tr = self.trace
            if tr is not None:
                tr.ap_ack_delay(self._track, 0.0, release - arrival_time,
                                self.outstanding_tokens)
            return release - arrival_time
        bank = self.token_history
        if bank.ttl is not None:
            bank.expire(arrival_time)
        if self.distributional:
            # Inlined ``DelayDeltaHistory.sample`` (expiry, compaction,
            # and the single uniform index draw — same RNG sequence).
            hist = self.delta_history
            hist.ops += 1
            times = hist._times
            values = hist._values
            hsum = hist._sum
            horizon = arrival_time - hist.window
            head = hist._head
            n = len(times)
            while head < n and times[head] < horizon:
                hsum.subtract(values[head])
                head += 1
            hist._head = head
            if head == n:
                times.clear()
                values.clear()
                hist._head = 0
                hsum.reset()
                extra = 0.0
            else:
                if head > hist._COMPACT_MIN and head * 2 > n:
                    del times[:head]
                    del values[:head]
                    hist._head = 0
                    n -= head
                    head = 0
                extra = values[head + hist.rng.randindex(n - head)]
        else:
            self._expire_pending(arrival_time)
            if self._pending_deltas:
                _, extra = self._pending_deltas.popleft()
            else:
                extra = 0.0
        sampled = extra

        # Spend banked tokens against the sampled delay (inlined
        # ``TokenBank`` index/assign/popleft — same exact-sum op order).
        if self.use_tokens and extra > 0:
            entries = bank._entries
            bsum = bank._sum
            while entries:
                stamp, front = entries[0]
                if front > extra:
                    remainder = front - extra
                    entries[0] = (stamp, remainder)
                    bsum.subtract(front)
                    bsum.add(remainder)
                    extra = 0.0
                    break
                extra -= front
                entries.popleft()
                bsum.subtract(front)
                if not entries:
                    bsum.reset()
                if extra <= 0:
                    break

        extra = min(extra, self.max_extra_delay)
        release = max(arrival_time + extra, self._last_sent_time)
        self._last_sent_time = release
        tr = self.trace
        if tr is not None:
            tr.ap_ack_delay(self._track, sampled, release - arrival_time,
                            self.outstanding_tokens)
        return release - arrival_time

    def on_feedback_packet(self, packet: Packet,
                           forward: Callable[[Packet], None]) -> None:
        """Hold the ACK for the computed delay, then forward it."""
        if packet.kind not in _FEEDBACK_KINDS:
            forward(packet)
            return
        now = self.sim._now
        # Inlined :meth:`ack_delay` — identical branch structure, RNG
        # draw, and exact-sum operation order; the method remains the
        # public/test API and must stay in lockstep with this body.
        if self.passthrough:
            release = max(now, self._last_sent_time)
            self._last_sent_time = release
            tr = self.trace
            if tr is not None:
                tr.ap_ack_delay(self._track, 0.0, release - now,
                                self.outstanding_tokens)
            delay = release - now
        else:
            bank = self.token_history
            if bank.ttl is not None:
                bank.expire(now)
            if self.distributional:
                hist = self.delta_history
                hist.ops += 1
                times = hist._times
                values = hist._values
                hsum = hist._sum
                horizon = now - hist.window
                head = hist._head
                n = len(times)
                while head < n and times[head] < horizon:
                    hsum.subtract(values[head])
                    head += 1
                hist._head = head
                if head == n:
                    times.clear()
                    values.clear()
                    hist._head = 0
                    hsum.reset()
                    extra = 0.0
                else:
                    if head > hist._COMPACT_MIN and head * 2 > n:
                        del times[:head]
                        del values[:head]
                        hist._head = 0
                        n -= head
                        head = 0
                    extra = values[head + hist.rng.randindex(n - head)]
            else:
                self._expire_pending(now)
                if self._pending_deltas:
                    _, extra = self._pending_deltas.popleft()
                else:
                    extra = 0.0
            sampled = extra
            if self.use_tokens and extra > 0:
                entries = bank._entries
                bsum = bank._sum
                while entries:
                    stamp, front = entries[0]
                    if front > extra:
                        remainder = front - extra
                        entries[0] = (stamp, remainder)
                        bsum.subtract(front)
                        bsum.add(remainder)
                        extra = 0.0
                        break
                    extra -= front
                    entries.popleft()
                    bsum.subtract(front)
                    if not entries:
                        bsum.reset()
                    if extra <= 0:
                        break
            extra = min(extra, self.max_extra_delay)
            release = max(now + extra, self._last_sent_time)
            self._last_sent_time = release
            tr = self.trace
            if tr is not None:
                tr.ap_ack_delay(self._track, sampled, release - now,
                                self.outstanding_tokens)
            delay = release - now
        self.acks_delayed += 1
        self.total_injected_delay += delay
        if delay <= 0:
            forward(packet)
        elif self._macro and forward is self.release_forward:
            run = self._release_run
            if run is None:
                run = self._release_run = self.sim.timed_run(forward)
            # Same time expression the classic schedule produces
            # (``now + delay``).  Releases are monotone by the
            # ``_last_sent_time`` clamp, but the float round-trip
            # ``arrival + (release - arrival)`` can regress by an ulp —
            # the classic event heap tolerates that, so mirror it by
            # falling back to a classic event for the stragglers.
            time = now + delay
            times = run._times
            if times and time < times[-1]:
                self.sim.schedule(delay, lambda p=packet: forward(p))
            else:
                run.push(time, packet)
        else:
            self.sim.schedule(delay, lambda p=packet: forward(p))

    @property
    def outstanding_tokens(self) -> float:
        return self.token_history.total

    @property
    def release_floor(self) -> float:
        """The monotone release clamp (last feedback release instant)."""
        return self._last_sent_time

    def adopt_release_floor(self, floor: float) -> None:
        """Raise the clamp to ``floor`` — used when an inter-AP handoff
        carries the ordering constraint from the old AP's updater."""
        if floor > self._last_sent_time:
            self._last_sent_time = floor

    def reset_state(self) -> None:
        """Forget the delay ledger (AP restart / client handover).

        ``_last_sent_time`` is deliberately preserved: it is an output
        ordering constraint, not estimator state — resetting it could
        release a post-reset ACK before a pre-reset one.
        """
        self.delta_history.clear()
        self.token_history.clear()
        self._pending_deltas.clear()
        self._last_total_delay = None
