"""Out-of-band Feedback Updater: delaying ACKs (§5.2, Algorithms 1-2).

On each downlink data-packet arrival, the updater computes the delay
delta against the previous packet's predicted total delay. Non-negative
deltas enter a sliding-window history; negative deltas are banked as
*tokens* (an ACK cannot be delayed by a negative amount).

On each uplink feedback-packet arrival, the updater:

1. clamps the earliest send time to the previous ACK's send time
   (order preservation),
2. samples one delta from the recent-delta distribution
   (distributional equivalence, not per-packet mapping),
3. spends banked tokens against the sampled delay so the *average*
   injected delay matches the average predicted delta,
4. schedules the ACK's forwarding after the resulting delay.

The updater never parses transport payloads — it identifies flows by
five-tuple only, so it works for encrypted QUIC exactly as for TCP.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Optional

from repro.core.fortune_teller import FortuneTeller
from repro.core.sliding_window import (DEFAULT_WINDOW, DelayDeltaHistory,
                                       TokenBank)
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom


class FeedbackKind(enum.Enum):
    """Table 2's protocol classification."""

    OUT_OF_BAND = "out-of-band"  # TCP, QUIC: ACK arrival timing is the signal
    IN_BAND = "in-band"          # RTP/RTCP: feedback payload carries timings


def classify_protocol(protocol: str) -> FeedbackKind:
    """Map a protocol name to its feedback mechanism (paper Table 2)."""
    mapping = {
        "tcp": FeedbackKind.OUT_OF_BAND,
        "quic": FeedbackKind.OUT_OF_BAND,
        "rtp": FeedbackKind.IN_BAND,
        "rtcp": FeedbackKind.IN_BAND,
        "webrtc": FeedbackKind.IN_BAND,
    }
    key = protocol.lower()
    if key not in mapping:
        raise ValueError(f"unknown protocol {protocol!r}; "
                         f"expected one of {sorted(mapping)}")
    return mapping[key]


class OutOfBandFeedbackUpdater:
    """Delays uplink ACKs to carry predicted downlink delay deltas."""

    def __init__(self, sim: Simulator, fortune_teller: FortuneTeller,
                 rng: Optional[DeterministicRandom] = None,
                 window: float = DEFAULT_WINDOW,
                 use_tokens: bool = True,
                 distributional: bool = True,
                 max_extra_delay: float = 0.5,
                 max_tokens: int = 65536,
                 token_ttl: Optional[float] = None):
        self.sim = sim
        self.fortune_teller = fortune_teller
        self.window = window
        self.use_tokens = use_tokens
        self.distributional = distributional
        self.max_extra_delay = max_extra_delay
        self.delta_history = DelayDeltaHistory(
            window, rng or DeterministicRandom(0))
        # Bounded token FIFO with an exact O(1) running sum. The default
        # cap (65536) never binds in realistic traces — it is a memory
        # backstop against pathological monotone-improving stretches.
        self.token_history = TokenBank(clock=lambda: self.sim.now,
                                       max_entries=max_tokens,
                                       ttl=token_ttl)
        self._last_total_delay: Optional[float] = None
        self._last_sent_time = 0.0
        #: Degraded-mode switch: while True the updater stops sampling
        #: and banking entirely — ACKs are forwarded with zero extra
        #: delay (order preservation only). Flipped by the AP watchdog.
        self.passthrough = False
        # Non-distributional mode: (banked_at, delta) pairs. Entries age
        # out after ``window`` — when ACKs arrive slower than data
        # packets (delayed-ACK TCP: 1 ACK per 2 segments), the queue
        # would otherwise grow without bound over a long trace, and a
        # delta banked seconds ago no longer describes current downlink
        # delay anyway.
        self._pending_deltas: deque[tuple[float, float]] = deque()
        self.pending_deltas_expired = 0
        self.acks_delayed = 0
        self.total_injected_delay = 0.0
        #: Tracing probe (:class:`repro.obs.bus.TraceBus`); ``None`` =
        #: disabled. Both datapath entry points read it exactly once.
        self.trace = None
        self._track = "ap"

    def enable_trace(self, bus, track: str = "ap") -> None:
        self.trace = bus
        self._track = track

    # -- Algorithm 1: on downlink data packets --------------------------------

    def on_data_packet(self, packet: Packet) -> float:
        """Predict the packet's fortune; bank the delta. Returns the delta."""
        prediction = self.fortune_teller.observe_arrival(packet)
        tr = self.trace
        if tr is not None:
            tr.ap_prediction(self._track, packet, prediction)
        current = prediction.total
        if self._last_total_delay is None:
            self._last_total_delay = current
            return 0.0
        delta = current - self._last_total_delay
        self._last_total_delay = current
        if self.passthrough:
            # Degraded: keep observing (so health can recover) but bank
            # nothing — stale predictions must not shape future ACKs.
            return delta
        if delta >= 0:
            now = self.sim._now
            self.delta_history.push(now, delta)
            if not self.distributional:
                self._pending_deltas.append((now, delta))
                self._expire_pending(now)
            if tr is not None:
                tr.ap_delta(self._track, delta, banked=False)
        elif self.use_tokens:
            self.token_history.append(-delta)
            if tr is not None:
                tr.ap_delta(self._track, delta, banked=True)
                tr.ap_tokens(self._track, self.outstanding_tokens)
        elif tr is not None:
            tr.ap_delta(self._track, delta, banked=False)
        return delta

    def _expire_pending(self, now: float) -> None:
        horizon = now - self.window
        while self._pending_deltas and self._pending_deltas[0][0] < horizon:
            self._pending_deltas.popleft()
            self.pending_deltas_expired += 1

    @property
    def pending_delta_count(self) -> int:
        return len(self._pending_deltas)

    # -- Algorithm 2: on uplink feedback packets ---------------------------------

    def ack_delay(self, arrival_time: float) -> float:
        """Compute how long to hold the ACK that just arrived.

        Three goals from §5.2, reconciled:

        * *order preservation* — release times never go backwards; an ACK
          arriving while the previous one is still held waits for it;
        * *no RTT overestimation* — the ordering wait is NOT fed back
          into the delay ledger, so one large sampled delta delays its
          immediate successors but does not ratchet all later ACKs
          (tokens additionally cancel sampled deltas);
        * *distributional equivalence* — the extra delay is sampled from
          the recent downlink delay-delta distribution.
        """
        if self.passthrough:
            # Degraded: no injected delay; only order preservation so
            # release times stay monotone across the demote boundary.
            release = max(arrival_time, self._last_sent_time)
            self._last_sent_time = release
            tr = self.trace
            if tr is not None:
                tr.ap_ack_delay(self._track, 0.0, release - arrival_time,
                                self.outstanding_tokens)
            return release - arrival_time
        if self.token_history.ttl is not None:
            self.token_history.expire(arrival_time)
        if self.distributional:
            extra = self.delta_history.sample(arrival_time)
        else:
            self._expire_pending(arrival_time)
            if self._pending_deltas:
                _, extra = self._pending_deltas.popleft()
            else:
                extra = 0.0
        sampled = extra

        # Spend banked tokens against the sampled delay.
        while self.use_tokens and self.token_history and extra > 0:
            front = self.token_history[0]
            if front > extra:
                self.token_history[0] = front - extra
                extra = 0.0
                break
            extra -= front
            self.token_history.popleft()

        extra = min(extra, self.max_extra_delay)
        release = max(arrival_time + extra, self._last_sent_time)
        self._last_sent_time = release
        tr = self.trace
        if tr is not None:
            tr.ap_ack_delay(self._track, sampled, release - arrival_time,
                            self.outstanding_tokens)
        return release - arrival_time

    def on_feedback_packet(self, packet: Packet,
                           forward: Callable[[Packet], None]) -> None:
        """Hold the ACK for the computed delay, then forward it."""
        if packet.kind not in (PacketKind.ACK, PacketKind.RTCP_TWCC,
                               PacketKind.RTCP_OTHER):
            forward(packet)
            return
        delay = self.ack_delay(self.sim._now)
        self.acks_delayed += 1
        self.total_injected_delay += delay
        if delay <= 0:
            forward(packet)
        else:
            self.sim.schedule(delay, lambda p=packet: forward(p))

    @property
    def outstanding_tokens(self) -> float:
        return self.token_history.total

    @property
    def release_floor(self) -> float:
        """The monotone release clamp (last feedback release instant)."""
        return self._last_sent_time

    def adopt_release_floor(self, floor: float) -> None:
        """Raise the clamp to ``floor`` — used when an inter-AP handoff
        carries the ordering constraint from the old AP's updater."""
        if floor > self._last_sent_time:
            self._last_sent_time = floor

    def reset_state(self) -> None:
        """Forget the delay ledger (AP restart / client handover).

        ``_last_sent_time`` is deliberately preserved: it is an output
        ordering constraint, not estimator state — resetting it could
        release a post-reset ACK before a pre-reset one.
        """
        self.delta_history.clear()
        self.token_history.clear()
        self._pending_deltas.clear()
        self._last_total_delay = None
