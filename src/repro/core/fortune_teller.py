"""Fortune Teller: per-packet delay prediction on AP arrival (§4).

``totalDelay = qLong + qShort + tx`` where

* ``qLong  = cur(qSize) / avg(txRate)`` — long-term queuing delay, with
  ``qSize = max(bytesInQueue - maxBurstSize, 0)`` (Eq. 1) discounting
  packets that will leave in the current link-layer burst;
* ``qShort = cur(qFrontWaitTime)`` — how long the head packet has
  already waited, the earliest observable signal of an ABW drop;
* ``tx     = avg(dequeueIntvl)`` — link-layer transmission delay,
  measured as the mean inter-departure interval (ignoring sub-1 ms
  intervals inside one AMPDU).

The teller attaches to a queue's callbacks; with FQ-CoDel it attaches to
the RTC flow's own sub-queue (§4.1, "Calculation with queue
disciplines").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.sliding_window import (
    DEFAULT_WINDOW,
    BurstSizeTracker,
    DequeueIntervalEstimator,
    SlidingWindowRate,
)
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator


@dataclass(slots=True)
class DelayPrediction:
    """The decomposed fortune of one packet."""

    q_long: float
    q_short: float
    tx: float

    @property
    def total(self) -> float:
        return self.q_long + self.q_short + self.tx


@dataclass
class PredictionRecord:
    """Predicted vs (later) actual delay, for the Fig. 19 accuracy study."""

    pkt_id: int
    predicted: float
    arrival_time: float
    actual: Optional[float] = None


class FortuneTeller:
    """Per-packet delay predictor attached to one queue.

    Call :meth:`observe_arrival` when a downlink packet of the target
    flow arrives at the AP (before it is enqueued is fine — qSize is read
    from the queue at call time), and wire ``queue.on_departure`` to
    :meth:`observe_departure` so the estimators see the dequeue stream.
    """

    def __init__(self, sim: Simulator, queue: DropTailQueue,
                 window: float = DEFAULT_WINDOW,
                 burst_correction: bool = True,
                 record_predictions: bool = False,
                 flow=None,
                 min_estimation_interval: float = 0.0):
        self.sim = sim
        self.queue = queue
        # §4.1, "Calculation with queue disciplines": with flow-isolating
        # disciplines (fq_codel, per-UE cellular queues) the teller must
        # read the statistics of the RTC flow's own sub-queue, not the
        # aggregate. When ``flow`` is set and the queue exposes
        # ``flow_queue``, qSize/qFrontWaitTime come from the sub-queue
        # and only this flow's departures feed the rate estimators.
        self.flow = flow
        self.burst_correction = burst_correction
        self.tx_rate = SlidingWindowRate(window)
        # Fallback for deep stalls: when the 40 ms window saw no
        # departures at all (the channel is the problem, not the lack of
        # traffic), a 10x longer window still carries a usable drain-rate
        # estimate. Without it qLong would read zero exactly when the
        # queue is most congested.
        self.tx_rate_long = SlidingWindowRate(window * 10)
        self.dequeue_intervals = DequeueIntervalEstimator(window)
        self.burst_tracker = BurstSizeTracker()
        self.record_predictions = record_predictions
        # §7.6 CPU optimization: with a positive interval, predictions
        # within ``min_estimation_interval`` of the previous one reuse it
        # instead of recomputing ("Zhuge could selectively update the
        # network conditions ... as long as the interval is negligible").
        self.min_estimation_interval = min_estimation_interval
        self._cached_prediction: Optional[DelayPrediction] = None
        self._cached_at = -1.0
        self.cache_hits = 0
        self.records: dict[int, PredictionRecord] = {}
        self.predictions_made = 0
        #: Cached discipline capability: whether the queue exposes
        #: per-flow sub-queues.  Read on every predict; the queue's
        #: class does not change after construction.
        self._has_flow_queue = hasattr(queue, "flow_queue")
        #: Fast-path eligibility, resolved once: the aggregate-queue,
        #: no-isolation case reads plain DropTailQueue attributes
        #: directly (byte count, head packet), so :meth:`predict` can
        #: inline the four estimator reads into one stack frame.
        self._fast_predict = flow is None and type(queue) is DropTailQueue
        if flow is None:
            # No flow filter: skip the `_on_queue_departure` trampoline
            # and observe every departure directly.
            queue.on_departure.append(self.observe_departure)
            queue.on_departure_batch.append(self.observe_departure_batch)
        else:
            queue.on_departure.append(self._on_queue_departure)
            queue.on_departure_batch.append(self._on_queue_departure_batch)

    # -- departure-side measurement ----------------------------------------

    def _on_queue_departure(self, packet: Packet, queue: DropTailQueue) -> None:
        if self.flow is not None and packet.flow != self.flow:
            return
        self.observe_departure(packet)

    def _on_queue_departure_batch(self, packets: list,
                                  queue: DropTailQueue = None) -> None:
        """Flow-filtered twin of :meth:`observe_departure_batch`."""
        flow = self.flow
        if flow is None:
            self.observe_departure_batch(packets)
            return
        matched = [packet for packet in packets if packet.flow == flow]
        if matched:
            self.observe_departure_batch(matched)

    def observe_departure(self, packet: Packet, queue=None) -> None:
        """Feed one departure to all four estimators (fused).

        The bodies of ``SlidingWindowRate.record`` (x2),
        ``DequeueIntervalEstimator.record_departure`` and
        ``BurstSizeTracker.record_departure`` are inlined here in their
        exact original order — identical state transitions and ``ops``
        accounting, one stack frame instead of eight on the per-packet
        departure path.  ``queue`` is accepted (and ignored) so the
        method can sit directly on ``queue.on_departure``.
        """
        # Trust the queue's dequeue stamp: it is the authoritative departure
        # time even when the queue is driven outside the event loop.
        now = packet.dequeued_at
        if now is None:
            now = self.sim._now
        size = packet.size

        for rate in (self.tx_rate, self.tx_rate_long):
            rate.ops += 1
            horizon = now - rate.window
            events = rate._events
            while events and events[0][0] < horizon:
                rate._bytes_in_window -= events.popleft()[1]
            if not events:
                rate._first_event = now
            events.append((now, size))
            rate._bytes_in_window += size

        di = self.dequeue_intervals
        di.ops += 1
        last = di._last_departure
        if last is not None:
            interval = now - last
            if di.min_interval <= interval <= di.max_interval:
                di._intervals.append((now, interval))
                di._sum.add(interval)
        di._last_departure = now
        horizon = now - di.window
        intervals = di._intervals
        dsum = di._sum
        while intervals and intervals[0][0] < horizon:
            dsum.subtract(intervals.popleft()[1])
        if not intervals:
            dsum.reset()

        bt = self.burst_tracker
        bt.ops += 1
        last = bt._last_departure
        if last is None or now - last >= bt.resolution:
            start = bt._current_start
            if start is not None:
                entry = (start, bt._current_bytes)
                bt._bursts.append(entry)
                bmax = bt._max
                while bmax and bmax[-1][1] <= entry[1]:
                    bmax.pop()
                bmax.append(entry)
            bt._current_start = now
            bt._current_bytes = size
        else:
            bt._current_bytes += size
        bt._last_departure = now
        horizon = now - bt.window
        bursts = bt._bursts
        bmax = bt._max
        while bursts and bursts[0][0] < horizon:
            entry = bursts.popleft()
            if bmax and bmax[0] is entry:
                bmax.popleft()
        start = bt._current_start
        if start is not None and now - start >= bt.window:
            bt._current_start = None
            bt._current_bytes = 0

    def observe_departure_batch(self, packets: list, queue=None) -> None:
        """Same-instant batch twin of :meth:`observe_departure`.

        ``dequeue_burst`` stamps every packet of an AMPDU with one
        dequeue instant, so the per-packet loop repeats the expiry
        scans and interval/burst checks for an unchanged ``now``: from
        the second packet on, the tx windows reduce to appends, the
        interval estimator sees only zero intervals (excluded by
        ``min_interval``), and the burst tracker accumulates bytes into
        the current burst.  This twin performs those identical state
        transitions in one pass — the first packet plays the full
        per-packet logic, the rest collapse to appends/byte sums.
        Configs where same-instant departures are *not* inert fall
        back to the loop (``min_interval <= 0``: zero intervals would
        enter the window; ``resolution <= 0``: every departure would
        close a burst).
        """
        di = self.dequeue_intervals
        bt = self.burst_tracker
        n = len(packets)
        if n == 1 or di.min_interval <= 0.0 or bt.resolution <= 0.0:
            observe = self.observe_departure
            for packet in packets:
                observe(packet)
            return
        first = packets[0]
        now = first.dequeued_at
        if now is None:
            now = self.sim._now
        total = 0
        pairs = []
        for packet in packets:
            size = packet.size
            total += size
            pairs.append((now, size))

        for rate in (self.tx_rate, self.tx_rate_long):
            rate.ops += n
            horizon = now - rate.window
            events = rate._events
            while events and events[0][0] < horizon:
                rate._bytes_in_window -= events.popleft()[1]
            if not events:
                rate._first_event = now
            events.extend(pairs)
            rate._bytes_in_window += total

        di.ops += n
        last = di._last_departure
        intervals = di._intervals
        dsum = di._sum
        if last is not None:
            interval = now - last
            if di.min_interval <= interval <= di.max_interval:
                intervals.append((now, interval))
                dsum.add(interval)
        di._last_departure = now
        horizon = now - di.window
        while intervals and intervals[0][0] < horizon:
            dsum.subtract(intervals.popleft()[1])
        if not intervals:
            dsum.reset()

        bt.ops += n
        last = bt._last_departure
        s1 = first.size
        bursts = bt._bursts
        bmax = bt._max
        if last is None or now - last >= bt.resolution:
            start = bt._current_start
            if start is not None:
                entry = (start, bt._current_bytes)
                bursts.append(entry)
                while bmax and bmax[-1][1] <= entry[1]:
                    bmax.pop()
                bmax.append(entry)
            bt._current_start = now
            bt._current_bytes = total
            bt._last_departure = now
            horizon = now - bt.window
            while bursts and bursts[0][0] < horizon:
                entry = bursts.popleft()
                if bmax and bmax[0] is entry:
                    bmax.popleft()
            # Stale-current check: the current burst just started at
            # ``now``, so it cannot be stale.
        else:
            # Extend: the first packet joins the ongoing burst, then
            # the per-packet stale check may retire it — the remaining
            # packets extend whatever survives, exactly as the loop
            # would.
            bt._current_bytes += s1
            bt._last_departure = now
            horizon = now - bt.window
            while bursts and bursts[0][0] < horizon:
                entry = bursts.popleft()
                if bmax and bmax[0] is entry:
                    bmax.popleft()
            start = bt._current_start
            if start is not None and now - start >= bt.window:
                bt._current_start = None
                bt._current_bytes = 0
            bt._current_bytes += total - s1

    # -- arrival-side prediction ----------------------------------------------

    def _observed_queue(self) -> DropTailQueue:
        """The queue whose state this teller reads (flow sub-queue when
        the discipline isolates flows)."""
        if self.flow is not None and self._has_flow_queue:
            sub = self.queue.flow_queue(self.flow)
            if sub is not None:
                return sub
        return self.queue

    def predict(self) -> DelayPrediction:
        """Predict the remaining delay of a packet arriving right now."""
        now = self.sim._now
        if (self.min_estimation_interval > 0
                and self._cached_prediction is not None
                and now - self._cached_at < self.min_estimation_interval):
            self.cache_hits += 1
            return self._cached_prediction
        if not self._fast_predict:
            return self._predict_generic(now)

        # Fast path: aggregate plain DropTailQueue, no flow isolation.
        # The estimator reads below are the inlined bodies of
        # ``max_burst_bytes`` / ``rate_bps`` / ``front_wait_time`` /
        # ``average_interval``, in the exact order and arithmetic of
        # :meth:`_predict_generic` — same state transitions, same
        # ``ops`` accounting, one stack frame.
        queue = self.queue
        q_size = queue._bytes
        if self.burst_correction:
            bt = self.burst_tracker
            bt.ops += 1
            horizon = now - bt.window
            bursts = bt._bursts
            bmax = bt._max
            while bursts and bursts[0][0] < horizon:
                entry = bursts.popleft()
                if bmax and bmax[0] is entry:
                    bmax.popleft()
            start = bt._current_start
            if start is not None and now - start >= bt.window:
                bt._current_start = None
                bt._current_bytes = 0
            best = bt._current_bytes
            if bmax:
                cand = bmax[0][1]
                if cand > best:
                    best = cand
            q_size -= best
            if q_size < 0:
                q_size = 0

        tr = self.tx_rate
        tr.ops += 1
        horizon = now - tr.window
        events = tr._events
        while events and events[0][0] < horizon:
            tr._bytes_in_window -= events.popleft()[1]
        if events:
            span = tr.window
            first = tr._first_event
            if first is not None:
                elapsed = now - first
                if elapsed < span:
                    span = elapsed
            if span < tr.min_span:
                span = tr.min_span
            rate = tr._bytes_in_window * 8 / span
        else:
            rate = 0.0
        if rate <= 0:
            rate = self.tx_rate_long.rate_bps(now)
        q_long = (q_size * 8 / rate) if rate > 0 else 0.0

        packets = queue._packets
        if packets:
            enqueued = packets[0].enqueued_at
            q_short = (max(0.0, now - enqueued)
                       if enqueued is not None else 0.0)
        else:
            q_short = 0.0

        di = self.dequeue_intervals
        di.ops += 1
        horizon = now - di.window
        intervals = di._intervals
        dsum = di._sum
        while intervals and intervals[0][0] < horizon:
            dsum.subtract(intervals.popleft()[1])
        if intervals:
            tx = dsum.value() / len(intervals)
        else:
            dsum.reset()
            tx = 0.0

        self.predictions_made += 1
        prediction = DelayPrediction(q_long, q_short, tx)
        self._cached_prediction = prediction
        self._cached_at = now
        return prediction

    def _predict_generic(self, now: float) -> DelayPrediction:
        """The discipline-agnostic prediction path (flow isolation,
        AQM subclasses) — the reference the fast path mirrors."""
        if self.flow is None:
            observed = self.queue
            isolating_no_sub = False
        else:
            observed = self._observed_queue()
            isolating_no_sub = (self._has_flow_queue
                                and observed is self.queue)
        q_size = observed.byte_length
        if isolating_no_sub:
            # Flow-isolating queue with no sub-queue yet: nothing queued.
            q_size = 0
        if self.burst_correction:
            q_size = max(q_size - self.burst_tracker.max_burst_bytes(now), 0)
        rate = self.tx_rate.rate_bps(now)
        if rate <= 0:
            rate = self.tx_rate_long.rate_bps(now)
        q_long = (q_size * 8 / rate) if rate > 0 else 0.0
        q_short = 0.0 if isolating_no_sub else observed.front_wait_time(now)
        tx = self.dequeue_intervals.average_interval(now)
        self.predictions_made += 1
        prediction = DelayPrediction(q_long, q_short, tx)
        self._cached_prediction = prediction
        self._cached_at = now
        return prediction

    def observe_arrival(self, packet: Packet) -> DelayPrediction:
        """Predict a specific arriving packet's fortune (and track it)."""
        prediction = self.predict()
        if self.record_predictions:
            self.records[packet.pkt_id] = PredictionRecord(
                packet.pkt_id, prediction.total, self.sim._now)
        return prediction

    def observe_delivery(self, packet: Packet) -> None:
        """Record the packet's actual delay once it reaches the client."""
        record = self.records.get(packet.pkt_id)
        if record is not None:
            record.actual = self.sim.now - record.arrival_time

    @property
    def last_prediction(self) -> Optional[DelayPrediction]:
        """The most recent prediction, or ``None`` before the first."""
        return self._cached_prediction

    def reset(self) -> None:
        """Wipe estimator state (AP restart / client handover).

        The Fig. 19 ``records`` ledger survives — it is an offline
        accuracy log, not live estimator state.
        """
        self.tx_rate.reset()
        self.tx_rate_long.reset()
        self.dequeue_intervals.reset()
        self.burst_tracker.reset()
        self._cached_prediction = None
        self._cached_at = -1.0

    def accuracy_pairs(self) -> list[tuple[float, float]]:
        """(predicted, actual) pairs for delivered packets (Fig. 19)."""
        return [(r.predicted, r.actual) for r in self.records.values()
                if r.actual is not None]


class NaiveQueueEstimator:
    """The strawman of §3.1: ``delay = qSize / avg(txRate)`` only.

    Kept for the estimator ablation bench: it misses sub-RTT fluctuation
    (no qShort) and over-counts burst departures (no Eq. 1 correction).
    """

    def __init__(self, sim: Simulator, queue: DropTailQueue,
                 window: float = DEFAULT_WINDOW):
        self.sim = sim
        self.queue = queue
        self.tx_rate = SlidingWindowRate(window)
        queue.on_departure.append(self._on_departure)

    def _on_departure(self, packet: Packet, queue: DropTailQueue) -> None:
        now = packet.dequeued_at if packet.dequeued_at is not None else self.sim.now
        self.tx_rate.record(now, packet.size)

    def predict(self) -> DelayPrediction:
        rate = self.tx_rate.rate_bps(self.sim.now)
        q_long = (self.queue.byte_length * 8 / rate) if rate > 0 else 0.0
        return DelayPrediction(q_long, 0.0, 0.0)
