"""In-band Feedback Updater: constructing TWCC feedback at the AP (§5.3).

Step 1 (packet fortune recording): on each downlink RTP packet, the
updater reads the TWCC sequence number from the (unencrypted) header,
predicts the packet's delay with the Fortune Teller, and stores the
predicted arrival time ``now + predicted``.

Step 2 (feedback construction): on its own timer — like an RTP receiver
would, roughly once per frame — the updater builds a TWCC feedback
packet from stored predictions and sends it uplink. Client-built TWCC
packets are dropped to keep timestamps consistent (one clock: the
AP's); all other RTCP (NACKs, receiver reports) passes through.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.fortune_teller import FortuneTeller
from repro.net.packet import FiveTuple, Packet, PacketKind, RTCP_SIZE
from repro.sim.engine import Simulator, Timer
from repro.transport.rtp import TwccFeedback


class InBandFeedbackUpdater:
    """AP-resident TWCC feedback constructor for one RTP flow."""

    def __init__(self, sim: Simulator, fortune_teller: FortuneTeller,
                 flow: FiveTuple, feedback_interval: float = 0.040,
                 feedback_size: int = RTCP_SIZE):
        self.sim = sim
        self.fortune_teller = fortune_teller
        self.flow = flow
        self.feedback_size = feedback_size
        self.send_uplink: Optional[Callable[[Packet], None]] = None

        self._predicted_arrivals: dict[int, float] = {}
        self._last_predicted = 0.0
        self._base_seq = 0
        self._dropped_seqs: set[int] = set()
        self.feedback_constructed = 0
        self.client_feedback_dropped = 0
        #: Degraded-mode switch: while True the AP stops synthesizing
        #: TWCC and lets the client's own feedback through unmodified.
        #: Flipped by the AP watchdog.
        self.passthrough = False
        #: Tracing probe (:class:`repro.obs.bus.TraceBus`); ``None`` =
        #: disabled.
        self.trace = None
        self._track = "ap"
        self._timer = Timer(sim, feedback_interval, self._emit_feedback)
        # The AP sees its own queue drop packets whose fortunes were
        # already recorded; those must be reported as LOST, not as
        # arriving at their predicted time, or the sender's loss-based
        # controller goes blind.
        fortune_teller.queue.on_drop.append(self._on_queue_drop)

    def _on_queue_drop(self, packet, reason: str) -> None:
        if packet.flow != self.flow:
            return
        twcc_seq = packet.headers.get("twcc_seq")
        if twcc_seq is not None and twcc_seq in self._predicted_arrivals:
            del self._predicted_arrivals[twcc_seq]
            self._dropped_seqs.add(twcc_seq)

    # -- Step 1: fortune recording ------------------------------------------

    def enable_trace(self, bus, track: str = "ap") -> None:
        self.trace = bus
        self._track = track

    def on_data_packet(self, packet: Packet) -> None:
        prediction = self.fortune_teller.observe_arrival(packet)
        if self.trace is not None:
            self.trace.ap_prediction(self._track, packet, prediction)
        twcc_seq = packet.headers.get("twcc_seq")
        if twcc_seq is not None and not self.passthrough:
            # Real receivers stamp monotone arrival times; clamp so
            # prediction noise never reports time running backwards.
            predicted = max(self.sim.now + prediction.total,
                            self._last_predicted)
            self._predicted_arrivals[twcc_seq] = predicted
            self._last_predicted = predicted

    # -- Step 2: feedback construction -----------------------------------------

    def _emit_feedback(self) -> None:
        if self.passthrough:
            return
        if not self._predicted_arrivals or self.send_uplink is None:
            return
        feedback = TwccFeedback(base_seq=self._base_seq,
                                arrivals=dict(self._predicted_arrivals),
                                constructed_at=self.sim.now,
                                constructed_by="zhuge-ap")
        # Dropped seqs below the reported frontier are implicitly "not
        # in arrivals" => the sender marks them lost.
        self._base_seq = max(self._predicted_arrivals) + 1
        self._dropped_seqs = {s for s in self._dropped_seqs
                              if s >= self._base_seq}
        self._predicted_arrivals.clear()
        packet = Packet(self.flow.reversed(), self.feedback_size,
                        PacketKind.RTCP_TWCC, sent_at=self.sim.now)
        packet.headers["twcc_feedback"] = feedback
        self.feedback_constructed += 1
        if self.trace is not None:
            self.trace.ap_feedback(self._track, len(feedback.arrivals),
                                   feedback.base_seq)
        self.send_uplink(packet)

    # -- uplink interception -------------------------------------------------------

    def on_feedback_packet(self, packet: Packet,
                           forward: Callable[[Packet], None]) -> None:
        """Drop client TWCC (ours replaces it); forward everything else."""
        if self.passthrough:
            # Degraded: the client's own TWCC is the only trustworthy
            # feedback — let it through untouched.
            forward(packet)
            return
        if packet.kind == PacketKind.RTCP_TWCC:
            feedback: TwccFeedback | None = packet.headers.get("twcc_feedback")
            if feedback is None or feedback.constructed_by != "zhuge-ap":
                self.client_feedback_dropped += 1
                return
        forward(packet)

    def reset_state(self) -> None:
        """Forget recorded fortunes (AP restart / client handover).

        ``_last_predicted`` and ``_base_seq`` survive: the first keeps
        reported arrival times monotone across the reset, the second
        keeps the TWCC sequence frontier consistent for the sender.
        """
        self._predicted_arrivals.clear()
        self._dropped_seqs.clear()

    def stop(self) -> None:
        self._timer.stop()
