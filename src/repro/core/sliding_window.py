"""Sliding-window building blocks of the Fortune Teller and Feedback Updater.

The paper sets the window to 40 ms — roughly one frame interval of a
25 fps stream — so that the average covers at least one sender burst
(§4.2) while still tracking sub-RTT fluctuation.

Amortized-O(1) invariant
------------------------
Every estimator in this module does amortized O(1) work per recorded
event *and* per query.  This is the property that lets the Zhuge control
loop run on every packet (Fig. 21: near-linear scaling in concurrent
flows):

* windowed sums are running sums maintained on push/expire, never
  re-scans (``SlidingWindowRate``, ``DequeueIntervalEstimator.average_interval``,
  ``DelayDeltaHistory.mean``);
* the windowed maximum in ``BurstSizeTracker`` is a monotonic deque, so
  ``max_burst_bytes`` reads the front instead of scanning all bursts;
* ``DelayDeltaHistory.sample`` indexes a ring buffer through a zero-copy
  view instead of materializing the window as a list.

Floating-point sums use :class:`ExactFloatSum` — exact binary
fixed-point accumulation over Python big ints — so expiring events from
the running sum introduces no rounding drift and every mean equals the
correctly-rounded (``math.fsum``) re-scan of the live window,
bit-for-bit.  ``tests/test_properties_hotpath.py`` asserts behavioural
equivalence against the naive re-scan implementations kept in
:mod:`repro.core.sliding_window_reference`;
``benchmarks/bench_hotpath_regression.py`` records the speedup in
``BENCH_hotpath.json``.

Each estimator counts its operations in ``.ops`` (one int increment per
record/query) for the :mod:`repro.metrics.hotpath` profiling module.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim.random import DeterministicRandom

DEFAULT_WINDOW = 0.040


class ExactFloatSum:
    """Exact running sum of floats, supporting subtraction.

    Values are accumulated in binary fixed-point over Python big ints
    (every finite double is n/2**e exactly), so add/subtract are exact
    and a window that empties returns to an exact zero — no compensated
    residue, no drift.  :meth:`value` rounds the exact sum to the
    nearest double, which is by construction the same float
    ``math.fsum`` returns for the live window.
    """

    __slots__ = ("_num", "_exp", "_value")

    def __init__(self):
        self._num = 0   # sum == _num / 2**_exp exactly
        self._exp = 0
        #: Cached rounded value; ``None`` after any mutation.  A query
        #: between mutations (predict between departures) skips the
        #: big-int division entirely.
        self._value: Optional[float] = 0.0

    def add(self, x: float) -> None:
        n, d = x.as_integer_ratio()
        e = d.bit_length() - 1  # d is a power of two for finite floats
        exp = self._exp
        if e > exp:
            self._num = (self._num << (e - exp)) + n
            self._exp = e
        else:
            self._num += n << (exp - e)
        self._value = None

    def subtract(self, x: float) -> None:
        n, d = x.as_integer_ratio()
        e = d.bit_length() - 1
        exp = self._exp
        if e > exp:
            self._num = (self._num << (e - exp)) - n
            self._exp = e
        else:
            self._num -= n << (exp - e)
        self._value = None

    def reset(self) -> None:
        self._num = 0
        self._exp = 0
        self._value = 0.0

    def value(self) -> float:
        # int/int true division is correctly rounded.
        result = self._value
        if result is None:
            result = self._num / (1 << self._exp)
            self._value = result
        return result


class _RingView:
    """Zero-copy sequence view over the live suffix of a ring buffer.

    Implements just enough of the Sequence protocol (``__len__`` /
    ``__getitem__``) for :meth:`DeterministicRandom.sample_from` to
    index it without a per-call copy of the window.
    """

    __slots__ = ("_buf", "_head")

    def __init__(self, buf: list, head: int):
        self._buf = buf
        self._head = head

    def __len__(self) -> int:
        return len(self._buf) - self._head

    def __getitem__(self, index: int):
        if index < 0:
            index += len(self)
        return self._buf[self._head + index]


class SlidingWindowRate:
    """Average rate (bps) of recorded byte events over a sliding window.

    During warm-up — before the estimator has seen a full window of
    traffic — the byte count is divided by the elapsed busy time
    ``min(window, now - first_event_time)`` (floored at ``min_span``)
    instead of the full window.  Dividing by the full window would
    under-report txRate (and inflate qLong) for the first 40 ms of a
    flow and right after the long-window fallback engages.  The elapsed
    clock restarts whenever the window empties (idle gap > window).
    """

    def __init__(self, window: float = DEFAULT_WINDOW,
                 min_span: float = 0.001):
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.window = window
        self.min_span = min_span
        self._events: deque[tuple[float, int]] = deque()
        self._bytes_in_window = 0
        self._first_event: Optional[float] = None
        self.ops = 0

    def record(self, now: float, nbytes: int) -> None:
        self.ops += 1
        self._expire(now)
        if not self._events:
            self._first_event = now
        self._events.append((now, nbytes))
        self._bytes_in_window += nbytes

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        events = self._events
        while events and events[0][0] < horizon:
            _, nbytes = events.popleft()
            self._bytes_in_window -= nbytes

    def rate_bps(self, now: float) -> float:
        """Average rate over the (possibly warming-up) window; 0 when
        no events are in window."""
        self.ops += 1
        self._expire(now)
        if not self._events:
            return 0.0
        span = self.window
        if self._first_event is not None:
            span = min(span, now - self._first_event)
        if span < self.min_span:
            span = self.min_span
        return self._bytes_in_window * 8 / span

    @property
    def event_count(self) -> int:
        return len(self._events)

    def reset(self) -> None:
        """Forget all events (AP restart / handover); keeps ``.ops``."""
        self._events.clear()
        self._bytes_in_window = 0
        self._first_event = None


class DequeueIntervalEstimator:
    """Average interval between packet departures (the ``tx`` estimator).

    Intervals below ``min_interval`` (default 1 ms) are treated as parts
    of one aggregated AMPDU departure and skipped, per §4.2: "we do not
    calculate the intervals that are less than one millisecond".

    Intervals above ``max_interval`` (default 30 ms) are idle gaps of an
    app-limited flow (e.g. the 40 ms spacing between video frames), not
    transmission time, and are skipped too — §4.2 requires the window to
    "cover at least two bursts from the sender so that packets are
    continuously measured"; counting idle gaps would report the frame
    interval as link-layer delay and destabilize delay-based CCAs.
    """

    def __init__(self, window: float = DEFAULT_WINDOW,
                 min_interval: float = 0.001,
                 max_interval: float = 0.030):
        self.window = window
        self.min_interval = min_interval
        self.max_interval = max_interval
        self._intervals: deque[tuple[float, float]] = deque()
        self._sum = ExactFloatSum()
        self._last_departure: Optional[float] = None
        self.ops = 0

    def record_departure(self, now: float) -> None:
        self.ops += 1
        if self._last_departure is not None:
            interval = now - self._last_departure
            if self.min_interval <= interval <= self.max_interval:
                self._intervals.append((now, interval))
                self._sum.add(interval)
        self._last_departure = now
        self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        intervals = self._intervals
        while intervals and intervals[0][0] < horizon:
            _, interval = intervals.popleft()
            self._sum.subtract(interval)
        if not intervals:
            self._sum.reset()

    def average_interval(self, now: float) -> float:
        """Mean qualifying interval in the window; 0 with no samples."""
        self.ops += 1
        self._expire(now)
        if not self._intervals:
            return 0.0
        return self._sum.value() / len(self._intervals)

    def reset(self) -> None:
        """Forget all intervals (AP restart / handover); keeps ``.ops``."""
        self._intervals.clear()
        self._sum.reset()
        self._last_departure = None


class BurstSizeTracker:
    """Maximum size of simultaneous departures at 1 ms resolution (Eq. 1).

    Departures closer together than ``resolution`` belong to one burst;
    the tracker reports the largest burst (bytes) seen in its window,
    which the Fortune Teller subtracts from qSize.

    The maximum is kept in a monotonic (decreasing-bytes) deque, so
    :meth:`max_burst_bytes` is O(1) instead of scanning every burst.
    The *current* (unclosed) burst is expired as soon as
    ``now - start >= window``: without that, a long idle gap would leave
    a stale current burst inflating the Eq. 1 correction exactly when
    the queue goes idle-then-bursty, making the Fortune Teller
    under-predict qLong on the first packets after the gap.
    """

    def __init__(self, window: float = 1.0, resolution: float = 0.001):
        self.window = window
        self.resolution = resolution
        self._bursts: deque[tuple[float, int]] = deque()  # (start, bytes)
        self._max: deque[tuple[float, int]] = deque()     # decreasing bytes
        self._current_start: Optional[float] = None
        self._current_bytes = 0
        self._last_departure: Optional[float] = None
        self.ops = 0

    def record_departure(self, now: float, nbytes: int) -> None:
        self.ops += 1
        if (self._last_departure is None
                or now - self._last_departure >= self.resolution):
            self._close_current()
            self._current_start = now
            self._current_bytes = nbytes
        else:
            self._current_bytes += nbytes
        self._last_departure = now
        self._expire(now)

    def _close_current(self) -> None:
        if self._current_start is not None:
            entry = (self._current_start, self._current_bytes)
            self._bursts.append(entry)
            while self._max and self._max[-1][1] <= entry[1]:
                self._max.pop()
            self._max.append(entry)
        self._current_start = None
        self._current_bytes = 0

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        bursts = self._bursts
        while bursts and bursts[0][0] < horizon:
            entry = bursts.popleft()
            if self._max and self._max[0] is entry:
                self._max.popleft()
        # Stale-current bugfix: an unclosed burst older than the window
        # must stop feeding the Eq. 1 correction.
        if (self._current_start is not None
                and now - self._current_start >= self.window):
            self._current_start = None
            self._current_bytes = 0

    def max_burst_bytes(self, now: float) -> int:
        self.ops += 1
        self._expire(now)
        best = self._current_bytes
        if self._max and self._max[0][1] > best:
            best = self._max[0][1]
        return best

    def reset(self) -> None:
        """Forget all bursts (AP restart / handover); keeps ``.ops``."""
        self._bursts.clear()
        self._max.clear()
        self._current_start = None
        self._current_bytes = 0
        self._last_departure = None


class DelayDeltaHistory:
    """Recent non-negative delay deltas, sampled distributionally (§5.2).

    Rather than mapping one data-packet delta onto one ACK (impossible:
    the streams are asynchronous), the updater keeps the distribution of
    recent deltas and samples it per ACK, achieving distributional
    equivalence between downlink delay increase and uplink ACK delays.

    The window lives in a ring buffer (a list plus a head index,
    compacted when the dead prefix dominates), so :meth:`sample` indexes
    the live suffix in O(1) instead of copying it per ACK, and
    :meth:`mean` reads a running exact sum.
    """

    _COMPACT_MIN = 64  # compact once the dead prefix exceeds this and half

    def __init__(self, window: float = DEFAULT_WINDOW,
                 rng: Optional[DeterministicRandom] = None):
        self.window = window
        self.rng = rng or DeterministicRandom(0)
        self._times: list[float] = []
        self._values: list[float] = []
        self._head = 0
        self._sum = ExactFloatSum()
        self.ops = 0

    def push(self, now: float, delta: float) -> None:
        if delta < 0:
            raise ValueError(f"delta history only stores non-negative: {delta}")
        self.ops += 1
        self._times.append(now)
        self._values.append(delta)
        self._sum.add(delta)
        self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        times, values, head = self._times, self._values, self._head
        while head < len(times) and times[head] < horizon:
            self._sum.subtract(values[head])
            head += 1
        self._head = head
        if head == len(times):
            self._times.clear()
            self._values.clear()
            self._head = 0
            self._sum.reset()
        elif head > self._COMPACT_MIN and head * 2 > len(times):
            del times[:head]
            del values[:head]
            self._head = 0

    def clear(self) -> None:
        """Drop the whole window (e.g. when a flow's ledger resets)."""
        self._times.clear()
        self._values.clear()
        self._head = 0
        self._sum.reset()

    def sample(self, now: float) -> float:
        """Random recent delta; 0.0 when the window is empty."""
        self.ops += 1
        self._expire(now)
        head = self._head
        n = len(self._times) - head
        if n == 0:
            return 0.0
        # One uniform index draw — the same single ``randrange(n)`` the
        # ring-view sample_from path consumes, minus the view object.
        return self._values[head + self.rng.randindex(n)]

    def mean(self, now: float) -> float:
        self.ops += 1
        self._expire(now)
        n = len(self._times) - self._head
        if n == 0:
            return 0.0
        return self._sum.value() / n

    def __len__(self) -> int:
        return len(self._times) - self._head


class TokenBank:
    """Bounded FIFO of delay-reduction tokens with an O(1) running sum.

    Drop-in replacement for the bare deque the out-of-band updater used
    as ``token_history`` (same append/extend/popleft/index protocol, so
    existing call sites — including tests and the ablation driver that
    push raw floats — keep working), plus the two things a deque cannot
    do:

    * ``total`` reads an :class:`ExactFloatSum` instead of
      ``sum(deque)`` — O(1) per query, exact to the last bit;
    * growth is bounded: beyond ``max_entries`` the *oldest* tokens are
      evicted (they are the stalest claims on future ACKs), and with a
      ``ttl`` tokens banked more than that many seconds before an
      :meth:`expire` sweep are dropped — stale tokens banked before a
      blackout must not cancel delay that the post-recovery queue
      genuinely accrued.

    Timestamps come from ``clock`` (the simulator's ``now``); when no
    clock is given entries are stamped 0.0 and only the size cap
    applies.
    """

    __slots__ = ("clock", "max_entries", "ttl", "_entries", "_sum",
                 "capped", "expired")

    def __init__(self, clock=None, max_entries: int = 65536,
                 ttl: Optional[float] = None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive: {ttl}")
        self.clock = clock
        self.max_entries = max_entries
        self.ttl = ttl
        self._entries: deque[tuple[float, float]] = deque()
        self._sum = ExactFloatSum()
        self.capped = 0    # tokens evicted by the size cap
        self.expired = 0   # tokens evicted by the ttl

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def append(self, value: float) -> None:
        if len(self._entries) >= self.max_entries:
            _, old = self._entries.popleft()
            self._sum.subtract(old)
            self.capped += 1
        self._entries.append((self._now(), value))
        self._sum.add(value)

    def extend(self, values) -> None:
        for value in values:
            self.append(value)

    def popleft(self) -> float:
        _, value = self._entries.popleft()
        self._sum.subtract(value)
        if not self._entries:
            self._sum.reset()
        return value

    def expire(self, now: float) -> int:
        """Drop tokens older than ``ttl``; no-op when ttl is unset."""
        if self.ttl is None:
            return 0
        horizon = now - self.ttl
        dropped = 0
        entries = self._entries
        while entries and entries[0][0] < horizon:
            _, value = entries.popleft()
            self._sum.subtract(value)
            dropped += 1
        if not entries:
            self._sum.reset()
        self.expired += dropped
        return dropped

    def clear(self) -> None:
        self._entries.clear()
        self._sum.reset()

    @property
    def total(self) -> float:
        """Exact sum of banked tokens (what ``sum(deque)`` used to be)."""
        if not self._entries:
            return 0.0
        return self._sum.value()

    def __getitem__(self, index: int) -> float:
        return self._entries[index][1]

    def __setitem__(self, index: int, value: float) -> None:
        stamp, old = self._entries[index]
        self._entries[index] = (stamp, value)
        self._sum.subtract(old)
        self._sum.add(value)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return (value for _, value in self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)
