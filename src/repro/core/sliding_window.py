"""Sliding-window building blocks of the Fortune Teller and Feedback Updater.

The paper sets the window to 40 ms — roughly one frame interval of a
25 fps stream — so that the average covers at least one sender burst
(§4.2) while still tracking sub-RTT fluctuation.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim.random import DeterministicRandom

DEFAULT_WINDOW = 0.040


class SlidingWindowRate:
    """Average rate (bps) of recorded byte events over a sliding window."""

    def __init__(self, window: float = DEFAULT_WINDOW):
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.window = window
        self._events: deque[tuple[float, int]] = deque()
        self._bytes_in_window = 0

    def record(self, now: float, nbytes: int) -> None:
        self._events.append((now, nbytes))
        self._bytes_in_window += nbytes
        self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._events and self._events[0][0] < horizon:
            _, nbytes = self._events.popleft()
            self._bytes_in_window -= nbytes

    def rate_bps(self, now: float) -> float:
        """Average rate over the window; 0 when no events are in window."""
        self._expire(now)
        if not self._events:
            return 0.0
        return self._bytes_in_window * 8 / self.window

    @property
    def event_count(self) -> int:
        return len(self._events)


class DequeueIntervalEstimator:
    """Average interval between packet departures (the ``tx`` estimator).

    Intervals below ``min_interval`` (default 1 ms) are treated as parts
    of one aggregated AMPDU departure and skipped, per §4.2: "we do not
    calculate the intervals that are less than one millisecond".

    Intervals above ``max_interval`` (default 30 ms) are idle gaps of an
    app-limited flow (e.g. the 40 ms spacing between video frames), not
    transmission time, and are skipped too — §4.2 requires the window to
    "cover at least two bursts from the sender so that packets are
    continuously measured"; counting idle gaps would report the frame
    interval as link-layer delay and destabilize delay-based CCAs.
    """

    def __init__(self, window: float = DEFAULT_WINDOW,
                 min_interval: float = 0.001,
                 max_interval: float = 0.030):
        self.window = window
        self.min_interval = min_interval
        self.max_interval = max_interval
        self._intervals: deque[tuple[float, float]] = deque()
        self._last_departure: Optional[float] = None

    def record_departure(self, now: float) -> None:
        if self._last_departure is not None:
            interval = now - self._last_departure
            if self.min_interval <= interval <= self.max_interval:
                self._intervals.append((now, interval))
        self._last_departure = now
        self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._intervals and self._intervals[0][0] < horizon:
            self._intervals.popleft()

    def average_interval(self, now: float) -> float:
        """Mean qualifying interval in the window; 0 with no samples."""
        self._expire(now)
        if not self._intervals:
            return 0.0
        return sum(i for _, i in self._intervals) / len(self._intervals)


class BurstSizeTracker:
    """Maximum size of simultaneous departures at 1 ms resolution (Eq. 1).

    Departures closer together than ``resolution`` belong to one burst;
    the tracker reports the largest burst (bytes) seen in its window,
    which the Fortune Teller subtracts from qSize.
    """

    def __init__(self, window: float = 1.0, resolution: float = 0.001):
        self.window = window
        self.resolution = resolution
        self._bursts: deque[tuple[float, int]] = deque()  # (start, bytes)
        self._current_start: Optional[float] = None
        self._current_bytes = 0
        self._last_departure: Optional[float] = None

    def record_departure(self, now: float, nbytes: int) -> None:
        if (self._last_departure is None
                or now - self._last_departure >= self.resolution):
            self._close_current()
            self._current_start = now
            self._current_bytes = nbytes
        else:
            self._current_bytes += nbytes
        self._last_departure = now
        self._expire(now)

    def _close_current(self) -> None:
        if self._current_start is not None:
            self._bursts.append((self._current_start, self._current_bytes))
        self._current_start = None
        self._current_bytes = 0

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._bursts and self._bursts[0][0] < horizon:
            self._bursts.popleft()

    def max_burst_bytes(self, now: float) -> int:
        self._expire(now)
        best = self._current_bytes
        for _, nbytes in self._bursts:
            best = max(best, nbytes)
        return best


class DelayDeltaHistory:
    """Recent non-negative delay deltas, sampled distributionally (§5.2).

    Rather than mapping one data-packet delta onto one ACK (impossible:
    the streams are asynchronous), the updater keeps the distribution of
    recent deltas and samples it per ACK, achieving distributional
    equivalence between downlink delay increase and uplink ACK delays.
    """

    def __init__(self, window: float = DEFAULT_WINDOW,
                 rng: Optional[DeterministicRandom] = None):
        self.window = window
        self.rng = rng or DeterministicRandom(0)
        self._deltas: deque[tuple[float, float]] = deque()

    def push(self, now: float, delta: float) -> None:
        if delta < 0:
            raise ValueError(f"delta history only stores non-negative: {delta}")
        self._deltas.append((now, delta))
        self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._deltas and self._deltas[0][0] < horizon:
            self._deltas.popleft()

    def sample(self, now: float) -> float:
        """Random recent delta; 0.0 when the window is empty."""
        self._expire(now)
        if not self._deltas:
            return 0.0
        return self.rng.sample_from([d for _, d in self._deltas])

    def mean(self, now: float) -> float:
        self._expire(now)
        if not self._deltas:
            return 0.0
        return sum(d for _, d in self._deltas) / len(self._deltas)

    def __len__(self) -> int:
        return len(self._deltas)
