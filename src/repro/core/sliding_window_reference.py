"""Naive re-scan reference implementations of the sliding-window estimators.

These are the seed-era O(n)-per-query estimators, kept (with the same
bug fixes as the optimized versions: warm-up rate divisor, stale
current-burst expiry) as the behavioural oracle for the amortized-O(1)
implementations in :mod:`repro.core.sliding_window`:

* ``tests/test_properties_hotpath.py`` drives both against random event
  streams and asserts bit-identical outputs — means here use
  ``math.fsum`` (the correctly-rounded sum of the window), which the
  optimized exact-big-int accumulator reproduces exactly;
* ``benchmarks/bench_hotpath_regression.py`` measures the optimized
  versions' speedup over these and records it in ``BENCH_hotpath.json``.

Never use these on the datapath — every query re-scans its window.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

from repro.core.sliding_window import DEFAULT_WINDOW
from repro.sim.random import DeterministicRandom


class ReferenceSlidingWindowRate:
    """Re-scan version of :class:`repro.core.sliding_window.SlidingWindowRate`."""

    def __init__(self, window: float = DEFAULT_WINDOW,
                 min_span: float = 0.001):
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.window = window
        self.min_span = min_span
        self._events: deque[tuple[float, int]] = deque()
        self._first_event: Optional[float] = None

    def record(self, now: float, nbytes: int) -> None:
        self._expire(now)
        if not self._events:
            self._first_event = now
        self._events.append((now, nbytes))

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def rate_bps(self, now: float) -> float:
        self._expire(now)
        if not self._events:
            return 0.0
        total = sum(nbytes for _, nbytes in self._events)  # O(n) re-scan
        span = self.window
        if self._first_event is not None:
            span = min(span, now - self._first_event)
        if span < self.min_span:
            span = self.min_span
        return total * 8 / span

    @property
    def event_count(self) -> int:
        return len(self._events)


class ReferenceDequeueIntervalEstimator:
    """Re-scan version of
    :class:`repro.core.sliding_window.DequeueIntervalEstimator`."""

    def __init__(self, window: float = DEFAULT_WINDOW,
                 min_interval: float = 0.001,
                 max_interval: float = 0.030):
        self.window = window
        self.min_interval = min_interval
        self.max_interval = max_interval
        self._intervals: deque[tuple[float, float]] = deque()
        self._last_departure: Optional[float] = None

    def record_departure(self, now: float) -> None:
        if self._last_departure is not None:
            interval = now - self._last_departure
            if self.min_interval <= interval <= self.max_interval:
                self._intervals.append((now, interval))
        self._last_departure = now
        self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._intervals and self._intervals[0][0] < horizon:
            self._intervals.popleft()

    def average_interval(self, now: float) -> float:
        self._expire(now)
        if not self._intervals:
            return 0.0
        # fsum = correctly-rounded sum of the window, the float the
        # optimized exact accumulator produces.
        return math.fsum(i for _, i in self._intervals) / len(self._intervals)


class ReferenceBurstSizeTracker:
    """Re-scan version of :class:`repro.core.sliding_window.BurstSizeTracker`."""

    def __init__(self, window: float = 1.0, resolution: float = 0.001):
        self.window = window
        self.resolution = resolution
        self._bursts: deque[tuple[float, int]] = deque()
        self._current_start: Optional[float] = None
        self._current_bytes = 0
        self._last_departure: Optional[float] = None

    def record_departure(self, now: float, nbytes: int) -> None:
        if (self._last_departure is None
                or now - self._last_departure >= self.resolution):
            self._close_current()
            self._current_start = now
            self._current_bytes = nbytes
        else:
            self._current_bytes += nbytes
        self._last_departure = now
        self._expire(now)

    def _close_current(self) -> None:
        if self._current_start is not None:
            self._bursts.append((self._current_start, self._current_bytes))
        self._current_start = None
        self._current_bytes = 0

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._bursts and self._bursts[0][0] < horizon:
            self._bursts.popleft()
        if (self._current_start is not None
                and now - self._current_start >= self.window):
            self._current_start = None
            self._current_bytes = 0

    def max_burst_bytes(self, now: float) -> int:
        self._expire(now)
        best = self._current_bytes
        for _, nbytes in self._bursts:  # O(n) re-scan
            if nbytes > best:
                best = nbytes
        return best


class ReferenceDelayDeltaHistory:
    """Re-scan version of :class:`repro.core.sliding_window.DelayDeltaHistory`."""

    def __init__(self, window: float = DEFAULT_WINDOW,
                 rng: Optional[DeterministicRandom] = None):
        self.window = window
        self.rng = rng or DeterministicRandom(0)
        self._deltas: deque[tuple[float, float]] = deque()

    def push(self, now: float, delta: float) -> None:
        if delta < 0:
            raise ValueError(f"delta history only stores non-negative: {delta}")
        self._deltas.append((now, delta))
        self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._deltas and self._deltas[0][0] < horizon:
            self._deltas.popleft()

    def sample(self, now: float) -> float:
        self._expire(now)
        if not self._deltas:
            return 0.0
        return self.rng.sample_from([d for _, d in self._deltas])  # O(n) copy

    def mean(self, now: float) -> float:
        self._expire(now)
        if not self._deltas:
            return 0.0
        return math.fsum(d for _, d in self._deltas) / len(self._deltas)

    def __len__(self) -> int:
        return len(self._deltas)
