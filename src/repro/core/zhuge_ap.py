"""ZhugeAP: the middlebox wiring Fortune Teller + Feedback Updater.

Sits at the last-mile AP between the WAN port and the wireless downlink
queue. For each registered RTC flow it:

* intercepts downlink data packets, runs the Fortune Teller, updates the
  Feedback Updater state, then forwards the packet to the wireless link
  as usual;
* intercepts uplink feedback packets of the same flow (matched by the
  reversed five-tuple) and either delays them (out-of-band) or replaces
  them with AP-constructed TWCC (in-band) before sending them up the
  WAN.

Non-registered flows pass through untouched — Zhuge only optimizes the
flows on its configurable IP list (§7.1).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.feedback_updater import (FeedbackKind,
                                         OutOfBandFeedbackUpdater)
from repro.core.fortune_teller import FortuneTeller
from repro.core.inband import InBandFeedbackUpdater
from repro.net.packet import FiveTuple, Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom

ForwardCallback = Callable[[Packet], None]


class ZhugeAP:
    """Access point running Zhuge for a set of registered flows."""

    def __init__(self, sim: Simulator, downlink_queue: DropTailQueue,
                 rng: Optional[DeterministicRandom] = None,
                 window: float = 0.040,
                 record_predictions: bool = False):
        self.sim = sim
        self.downlink_queue = downlink_queue
        self.rng = rng or DeterministicRandom(0)
        self.window = window
        self.record_predictions = record_predictions

        # One shared Fortune Teller when every flow shares the queue.
        # Flow-isolating disciplines (fq_codel) instead get a per-flow
        # teller at registration (§4.1): the flow's delay depends on its
        # own sub-queue and its own service share, not the aggregate.
        self._flow_isolating = hasattr(downlink_queue, "flow_queue")
        self.fortune_teller = FortuneTeller(
            sim, downlink_queue, window=window,
            record_predictions=record_predictions)
        self._flow_tellers: dict[FiveTuple, FortuneTeller] = {}

        self.forward_downlink: Optional[ForwardCallback] = None
        self.forward_uplink: Optional[ForwardCallback] = None
        #: Canonical uplink-out callable.  A bound method read off the
        #: instance is a fresh object every time (`self._uplink_out is
        #: self._uplink_out` is False), so the one identity the feedback
        #: updaters key their release TimedRun on is cached here.
        self._uplink_out_cb: ForwardCallback = self._uplink_out

        self._oob: dict[FiveTuple, OutOfBandFeedbackUpdater] = {}
        self._inband: dict[FiveTuple, InBandFeedbackUpdater] = {}
        # Hot-path lookup tables: one merged dict per direction, so the
        # per-packet path costs a single ``.get``. The uplink table is
        # keyed by the *uplink* five-tuple, so the per-ACK path looks
        # the updater up with the packet's own flow instead of building
        # a reversed tuple per ACK.
        self._downlink_updaters: dict[FiveTuple, object] = {}
        self._uplink_updaters: dict[FiveTuple, object] = {}
        self.packets_processed = 0
        #: Estimator-health watchdog (:mod:`repro.faults.watchdog`);
        #: ``None`` until :meth:`enable_watchdog`, in which case the AP
        #: never degrades and behaves exactly as before.
        self.watchdog = None
        #: True while demoted to passthrough (mirrored onto updaters).
        self.passthrough = False
        #: Number of :meth:`reset_state` calls (restart/handover events).
        self.resets = 0
        #: Tracing bus (:class:`repro.obs.bus.TraceBus`); ``None`` =
        #: disabled. Set via :meth:`enable_trace`, which also fans the bus
        #: out to every registered updater (and to ones registered later).
        self.trace = None
        #: Trace-track prefix; multi-AP topologies set this to the AP's
        #: node name so each AP gets its own track family.
        self.track_name = "ap"
        #: Active :class:`~repro.control.spec.ControlPolicy`; ``None``
        #: until :meth:`apply_policy`. Flows registered later inherit it.
        self.policy = None
        # Downlink capacity before any policy clamp; restored when a
        # policy without a queue_limit is applied.
        self._native_queue_capacity: Optional[int] = None

    # -- flow registration (the AP's configurable IP list) -------------------

    def register_flow(self, flow: FiveTuple, kind: FeedbackKind,
                      distributional: bool = True) -> None:
        """Enable Zhuge for ``flow`` (downlink direction five-tuple).

        ``distributional`` selects §5.2's delta sampling for out-of-band
        flows; ``False`` maps banked deltas onto ACKs one-to-one (the
        per-packet ablation variant). It is ignored for in-band flows.
        """
        teller = self._teller_for(flow)
        if kind is FeedbackKind.OUT_OF_BAND:
            updater = OutOfBandFeedbackUpdater(
                self.sim, teller,
                rng=self.rng.fork(f"oob-{flow.src_port}-{flow.dst_port}"),
                window=self.window,
                distributional=distributional)
            updater.release_forward = self._uplink_out_cb
            self._oob[flow] = updater
        else:
            updater = InBandFeedbackUpdater(
                self.sim, teller, flow,
                feedback_interval=self.window)
            updater.send_uplink = self._uplink_out_cb
            self._inband[flow] = updater
        self._downlink_updaters[flow] = updater
        self._uplink_updaters[flow.reversed()] = updater
        if self.trace is not None:
            updater.enable_trace(self.trace, self._flow_track(flow))
        # A flow registered while the AP is degraded starts degraded too,
        # and one registered under an active control policy inherits it.
        updater.passthrough = self.passthrough
        if self.policy is not None:
            self._retune_updater(updater, self.policy)

    def enable_trace(self, bus) -> None:
        """Attach a trace bus to the AP and all registered updaters."""
        self.trace = bus
        for flow, updater in {**self._oob, **self._inband}.items():
            updater.enable_trace(bus, self._flow_track(flow))
        if self.watchdog is not None:
            self.watchdog.enable_trace(bus)

    # -- graceful degradation (repro.faults) ---------------------------------

    def enable_watchdog(self, config=None) -> None:
        """Attach an estimator-health watchdog that can demote the AP.

        Lazy import: ``repro.core`` stays importable without the fault
        layer, and un-watchdogged APs pay nothing.
        """
        from repro.faults.watchdog import EstimatorHealthWatchdog
        self.watchdog = EstimatorHealthWatchdog(
            self.sim, config,
            on_demote=self._on_watchdog_demote,
            on_promote=self._on_watchdog_promote)
        if self.trace is not None:
            self.watchdog.enable_trace(self.trace)

    def _on_watchdog_demote(self, reason: str) -> None:
        """Fall back to passthrough: forward everything undelayed."""
        self.passthrough = True
        for updater in self._oob.values():
            updater.passthrough = True
            updater.reset_state()
        for updater in self._inband.values():
            updater.passthrough = True
            updater.reset_state()

    def _on_watchdog_promote(self, reason: str) -> None:
        """Re-engage Zhuge once predictions track reality again."""
        self.passthrough = False
        for updater in self._oob.values():
            updater.passthrough = False
        for updater in self._inband.values():
            updater.passthrough = False

    # -- adaptive control (repro.control) ------------------------------------

    def apply_policy(self, policy) -> None:
        """Retune the live Zhuge parameters to ``policy``.

        The :class:`~repro.control.controller.ZhugeController` calls
        this on every state transition. All knobs take effect on the
        next packet: sliding windows re-expire against their new
        horizon, the token bank is trimmed to the new cap, the downlink
        queue is clamped (head-shedding any excess backlog now), and
        the in-band feedback timer re-anchors at its already-scheduled
        tick. ``passthrough`` rides the existing watchdog
        demote/promote paths so RED is exactly the PR 4 fallback.
        """
        self.policy = policy
        self.window = policy.window
        self._apply_queue_limit(policy)
        self._retune_teller(self.fortune_teller, policy)
        for teller in self._flow_tellers.values():
            self._retune_teller(teller, policy)
        for updater in self._oob.values():
            self._retune_updater(updater, policy)
        for updater in self._inband.values():
            self._retune_updater(updater, policy)
        if policy.passthrough and not self.passthrough:
            self._on_watchdog_demote("policy")
        elif not policy.passthrough and self.passthrough:
            self._on_watchdog_promote("policy")

    def _apply_queue_limit(self, policy) -> None:
        """Clamp (or restore) the downlink queue per ``policy``.

        A full queue at a crashed link rate is seconds of committed
        tail latency; for RTC traffic the stale head packets are worth
        less than the loss signal their drop produces, so the clamp
        head-trims immediately instead of waiting for the drain.
        """
        queue = self.downlink_queue
        if queue is None or not hasattr(queue, "trim_head"):
            return
        if policy.queue_limit is None:
            if self._native_queue_capacity is not None:
                queue.capacity_bytes = self._native_queue_capacity
                self._native_queue_capacity = None
            return
        if self._native_queue_capacity is None:
            self._native_queue_capacity = queue.capacity_bytes
        limit = max(1, int(self._native_queue_capacity * policy.queue_limit))
        queue.capacity_bytes = limit
        queue.trim_head(limit, "control-trim")

    @staticmethod
    def _retune_teller(teller: FortuneTeller, policy) -> None:
        teller.window = policy.window
        teller.tx_rate.window = policy.window
        teller.tx_rate_long.window = policy.window * 10
        teller.dequeue_intervals.window = policy.window
        teller.burst_correction = policy.burst_correction

    @staticmethod
    def _retune_updater(updater, policy) -> None:
        if isinstance(updater, OutOfBandFeedbackUpdater):
            updater.window = policy.window
            updater.delta_history.window = policy.window
            updater.max_extra_delay = policy.max_extra_delay
            bank = updater.token_history
            bank.ttl = policy.token_ttl
            bank.max_entries = policy.token_bank_cap
            while len(bank) > bank.max_entries:
                bank.popleft()
                bank.capped += 1
        else:
            updater._timer.interval = policy.feedback_interval

    def reset_state(self) -> None:
        """Simulate an AP restart / client handover: wipe learned state.

        Estimator windows, token banks, and delta ledgers are forgotten;
        output-ordering clamps survive (release times stay monotone).
        The watchdog, if attached, demotes immediately — post-reset
        predictions are garbage until the windows refill.
        """
        self.resets += 1
        self.fortune_teller.reset()
        for teller in self._flow_tellers.values():
            teller.reset()
        for updater in self._oob.values():
            updater.reset_state()
        for updater in self._inband.values():
            updater.reset_state()
        if self.watchdog is not None:
            self.watchdog.notify_reset()

    def _flow_track(self, flow: FiveTuple) -> str:
        return f"{self.track_name}/{flow.src_port}->{flow.dst_port}"

    def _teller_for(self, flow: FiveTuple) -> FortuneTeller:
        if not self._flow_isolating:
            return self.fortune_teller
        if flow not in self._flow_tellers:
            self._flow_tellers[flow] = FortuneTeller(
                self.sim, self.downlink_queue, window=self.window,
                record_predictions=self.record_predictions, flow=flow)
        return self._flow_tellers[flow]

    def registered_kind(self, flow: FiveTuple) -> Optional[FeedbackKind]:
        if flow in self._oob:
            return FeedbackKind.OUT_OF_BAND
        if flow in self._inband:
            return FeedbackKind.IN_BAND
        return None

    def release_floor(self, flow: FiveTuple) -> float:
        """The flow's feedback release-time floor (0 if not applicable).

        Only out-of-band flows carry one: the last release instant that
        no later feedback may precede. Inter-AP handoffs read it off the
        old AP and :meth:`adopt_release_floor` it onto the new one so
        release times stay monotone across the move.
        """
        updater = self._oob.get(flow)
        return updater.release_floor if updater is not None else 0.0

    def adopt_release_floor(self, flow: FiveTuple, floor: float) -> None:
        """Raise the flow's release floor to ``floor`` (handoff import)."""
        updater = self._oob.get(flow)
        if updater is not None:
            updater.adopt_release_floor(floor)

    def out_of_band_updater(self, flow: FiveTuple) -> OutOfBandFeedbackUpdater:
        return self._oob[flow]

    def in_band_updater(self, flow: FiveTuple) -> InBandFeedbackUpdater:
        return self._inband[flow]

    # -- datapath ----------------------------------------------------------------

    def on_downlink(self, packet: Packet) -> None:
        """A packet arrived from the WAN heading to the wireless client."""
        self.packets_processed += 1
        updater = self._downlink_updaters.get(packet.flow)
        if updater is not None:
            updater.on_data_packet(packet)
            if self.watchdog is not None:
                prediction = updater.fortune_teller.last_prediction
                if prediction is not None:
                    self.watchdog.note_prediction(packet.pkt_id,
                                                  prediction.total)
        if self.forward_downlink is not None:
            self.forward_downlink(packet)

    def on_uplink(self, packet: Packet) -> None:
        """A packet arrived from the client heading to the WAN."""
        self.packets_processed += 1
        updater = self._uplink_updaters.get(packet.flow)
        if updater is not None:
            updater.on_feedback_packet(packet, self._uplink_out_cb)
        else:
            self._uplink_out(packet)

    def on_data_batch(self, packets: list) -> None:
        """Batch twin of :meth:`on_downlink` (macro event model).

        Loops the exact per-packet logic without re-entering the
        scheduler between packets; a caller must only hand over packets
        that genuinely share one delivery instant.
        """
        on_downlink = self.on_downlink
        for packet in packets:
            on_downlink(packet)

    def on_ack_batch(self, packets: list) -> None:
        """Batch twin of :meth:`on_uplink` (macro event model).

        One AMPDU's worth of uplink feedback in a single call: per
        packet the updater lookup, feedback handling and release
        scheduling are identical to :meth:`on_uplink`, but delayed ACKs
        land on the updater's release TimedRun instead of costing one
        scheduler event each.
        """
        self.packets_processed += len(packets)
        updaters = self._uplink_updaters
        out = self._uplink_out_cb
        for packet in packets:
            updater = updaters.get(packet.flow)
            if updater is not None:
                updater.on_feedback_packet(packet, out)
            else:
                out(packet)

    def on_wireless_delivery(self, packet: Packet) -> None:
        """The wireless hop delivered a packet (accuracy bookkeeping)."""
        if self.watchdog is not None:
            self.watchdog.note_delivery(packet.pkt_id)
        if self.record_predictions:
            self.fortune_teller.observe_delivery(packet)
            teller = self._flow_tellers.get(packet.flow)
            if teller is not None:
                teller.observe_delivery(packet)

    def hotpath_stats(self):
        """Per-component hot-path counter snapshots (plus a total).

        Lazy import keeps ``repro.core`` free of metrics dependencies on
        the datapath; only this reporting accessor crosses the boundary.
        """
        from repro.metrics.hotpath import snapshot_ap
        return snapshot_ap(self)

    def _uplink_out(self, packet: Packet) -> None:
        if self.forward_uplink is not None:
            self.forward_uplink(packet)

    def stop(self) -> None:
        for updater in self._inband.values():
            updater.stop()
        if self.watchdog is not None:
            self.watchdog.stop()
