"""Experiment harness: scenario builder and per-figure drivers."""

from repro.experiments.scenario import (
    ScenarioConfig,
    ScenarioResult,
    run_scenario,
)

__all__ = ["ScenarioConfig", "ScenarioResult", "run_scenario"]
