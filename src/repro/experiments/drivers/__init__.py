"""Per-figure experiment drivers.

Each module reproduces one (or a family of) evaluation artifacts from
the paper and returns structured rows; ``benchmarks/`` wraps these in
pytest-benchmark targets and prints the tables.
"""

from repro.experiments.drivers.format import format_table

__all__ = ["format_table"]
