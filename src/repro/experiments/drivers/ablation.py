"""Ablation drivers for DESIGN.md §5 design choices.

These are not paper figures; they validate the design decisions the
paper argues for:

1. qLong/qShort decomposition vs the naive ``qSize/avg(txRate)``
   estimator (§3.1's transience-equilibrium nexus),
2. delay-delta *distribution* sampling vs direct per-ACK deltas,
3. the token bank on/off (drift of injected ACK delay),
4. maxBurstSize correction on/off (qLong accuracy under AMPDU bursts),
5. sliding-window length sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fortune_teller import FortuneTeller, NaiveQueueEstimator
from repro.net.packet import FiveTuple, Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom
from repro.traces.synthetic import make_trace
from repro.traces.trace import BandwidthTrace
from repro.wireless.channel import WirelessChannel
from repro.wireless.link import WirelessLink


@dataclass
class EstimatorAblationRow:
    estimator: str
    window_ms: float
    median_abs_error_ms: float
    p90_abs_error_ms: float
    samples: int


def _run_estimators(trace: BandwidthTrace, estimators: dict,
                    duration: float, seed: int,
                    rate_bps: float = 4e6) -> dict[str, list[float]]:
    """Stream packets through a wireless link; for each arriving packet
    record every estimator's prediction and later the actual delay."""
    sim = Simulator()
    queue = DropTailQueue(capacity_bytes=500_000)
    link = WirelessLink(sim, WirelessChannel(trace), queue)
    built = {name: factory(sim, queue) for name, factory in estimators.items()}
    flow = FiveTuple("s", "c", 1, 2)
    rng = DeterministicRandom(seed)

    pending: dict[int, tuple[float, dict[str, float]]] = {}
    errors: dict[str, list[float]] = {name: [] for name in built}

    def deliver(packet: Packet) -> None:
        entry = pending.pop(packet.pkt_id, None)
        if entry is None:
            return
        arrived_at, predictions = entry
        actual = sim.now - arrived_at
        for name, predicted in predictions.items():
            errors[name].append(abs(predicted - actual))

    link.deliver = deliver
    interval = 1200 * 8 / rate_bps

    def send() -> None:
        packet = Packet(flow, 1200)
        predictions = {name: est.predict().total
                       for name, est in built.items()}
        pending[packet.pkt_id] = (sim.now, predictions)
        link.send(packet)
        # Bursty frame-style arrivals: occasionally send a burst.
        gap = interval * (0.2 if rng.random() < 0.3 else 1.5)
        if sim.now < duration:
            sim.schedule(gap, send)

    sim.schedule(0.0, send)
    sim.run(until=duration)
    return errors


def estimator_ablation(duration: float = 30.0, seed: int = 1,
                       trace_name: str = "W1") -> list[EstimatorAblationRow]:
    """Design choices 1, 4, 5: estimator variants on one trace."""
    from repro.metrics.stats import percentile
    trace = make_trace(trace_name, duration=duration, seed=seed)
    estimators = {
        "naive(qSize/txRate)": lambda sim, q: NaiveQueueEstimator(sim, q),
        "zhuge(40ms)": lambda sim, q: FortuneTeller(sim, q, window=0.040),
        "zhuge(10ms)": lambda sim, q: FortuneTeller(sim, q, window=0.010),
        "zhuge(160ms)": lambda sim, q: FortuneTeller(sim, q, window=0.160),
        "zhuge(no-burst-corr)": lambda sim, q: FortuneTeller(
            sim, q, burst_correction=False),
    }
    errors = _run_estimators(trace, estimators, duration, seed)
    windows = {"naive(qSize/txRate)": 40.0, "zhuge(40ms)": 40.0,
               "zhuge(10ms)": 10.0, "zhuge(160ms)": 160.0,
               "zhuge(no-burst-corr)": 40.0}
    rows = []
    for name, errs in errors.items():
        rows.append(EstimatorAblationRow(
            estimator=name, window_ms=windows[name],
            median_abs_error_ms=percentile(errs, 50) * 1000 if errs else 0.0,
            p90_abs_error_ms=percentile(errs, 90) * 1000 if errs else 0.0,
            samples=len(errs),
        ))
    return rows


@dataclass
class FeedbackAblationRow:
    variant: str
    mean_injected_ms: float
    p99_injected_ms: float
    drift_ms: float  # mean(last quarter) - mean(first quarter)


def feedback_ablation(acks: int = 5000, seed: int = 1
                      ) -> list[FeedbackAblationRow]:
    """Design choices 2 and 3: distributional sampling and tokens."""
    from repro.core.feedback_updater import OutOfBandFeedbackUpdater
    from repro.metrics.stats import percentile
    variants = {
        "distributional+tokens": dict(distributional=True, use_tokens=True),
        "distributional,no-tokens": dict(distributional=True,
                                         use_tokens=False),
        "per-packet+tokens": dict(distributional=False, use_tokens=True),
    }
    rows = []
    for name, options in variants.items():
        sim = Simulator()
        queue = DropTailQueue()
        teller = FortuneTeller(sim, queue)
        updater = OutOfBandFeedbackUpdater(
            sim, teller, rng=DeterministicRandom(seed),
            max_extra_delay=10.0, **options)
        rng = DeterministicRandom(seed + 1)
        injected = []
        t = 0.0
        for _ in range(acks):
            delta = rng.gauss(0.0, 0.003)
            if delta >= 0:
                updater.delta_history.push(t, delta)
                if not updater.distributional:
                    updater._pending_deltas.append((t, delta))
            elif updater.use_tokens:
                updater.token_history.append(-delta)
            injected.append(updater.ack_delay(t))
            t += 0.002
        quarter = len(injected) // 4
        rows.append(FeedbackAblationRow(
            variant=name,
            mean_injected_ms=sum(injected) / len(injected) * 1000,
            p99_injected_ms=percentile(injected, 99) * 1000,
            drift_ms=(sum(injected[-quarter:]) / quarter
                      - sum(injected[:quarter]) / quarter) * 1000,
        ))
    return rows
