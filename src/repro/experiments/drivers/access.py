"""Access-network comparison driver (Fig. 2).

Reproduces the motivation study: RTC flows over Ethernet, WiFi, and
cellular access produce comparable median RTT, but wireless access has
a far heavier tail (RTT, frame delay) and more low-frame-rate seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.stats import ccdf_points, percentile
from repro.traces.synthetic import ethernet_trace, make_trace

ACCESS_TYPES = (
    ("Ethernet", "eth"),
    ("WiFi", "W1"),
    ("4G", "C2"),
)


@dataclass
class AccessRow:
    """Distribution summary for one access type."""

    access: str
    median_rtt: float
    p99_rtt: float
    delayed_frame_ratio: float
    low_fps_ratio: float
    rtt_ccdf: list[tuple[float, float]]
    frame_delay_ccdf: list[tuple[float, float]]


def fig2_access_comparison(duration: float = 60.0,
                           seeds: tuple[int, ...] = (1, 2)) -> list[AccessRow]:
    """One RTP flow per access type; returns tail summaries + CCDFs."""
    rows = []
    for label, family in ACCESS_TYPES:
        rtts: list[float] = []
        delays: list[float] = []
        fps: list[float] = []
        for seed in seeds:
            if family == "eth":
                trace = ethernet_trace(duration=duration, seed=seed)
            else:
                trace = make_trace(family, duration=duration, seed=seed)
            config = ScenarioConfig(trace=trace, protocol="rtp",
                                    duration=duration, seed=seed)
            result = run_scenario(config)
            rtts.extend(result.rtt.rtts)
            delays.extend(result.frames.frame_delays)
            fps.extend(result.frames.per_second_fps(
                duration - config.warmup, start=config.warmup))
        from repro.metrics.stats import tail_fraction
        rows.append(AccessRow(
            access=label,
            median_rtt=percentile(rtts, 50),
            p99_rtt=percentile(rtts, 99),
            delayed_frame_ratio=tail_fraction(delays, 0.400),
            low_fps_ratio=tail_fraction(fps, 10.0, above=False),
            rtt_ccdf=ccdf_points(rtts, points=30),
            frame_delay_ccdf=ccdf_points(delays, points=30),
        ))
    return rows
