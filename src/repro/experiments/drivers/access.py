"""Access-network comparison driver (Fig. 2).

Reproduces the motivation study: RTC flows over Ethernet, WiFi, and
cellular access produce comparable median RTT, but wireless access has
a far heavier tail (RTT, frame delay) and more low-frame-rate seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import ScenarioSpec, TraceSpec, run_specs
from repro.metrics.stats import ccdf_points, percentile, tail_fraction

ACCESS_TYPES = (
    ("Ethernet", "eth"),
    ("WiFi", "W1"),
    ("4G", "C2"),
)


@dataclass
class AccessRow:
    """Distribution summary for one access type."""

    access: str
    median_rtt: float
    p99_rtt: float
    delayed_frame_ratio: float
    low_fps_ratio: float
    rtt_ccdf: list[tuple[float, float]]
    frame_delay_ccdf: list[tuple[float, float]]


def fig2_access_comparison(duration: float = 60.0,
                           seeds: tuple[int, ...] = (1, 2),
                           jobs: int = 0, cache=None) -> list[AccessRow]:
    """One RTP flow per access type; returns tail summaries + CCDFs."""
    specs = [ScenarioSpec(trace=TraceSpec.for_family(family,
                                                     duration=duration,
                                                     seed=seed),
                          protocol="rtp", duration=duration, seed=seed)
             for _, family in ACCESS_TYPES
             for seed in seeds]
    summaries = run_specs(specs, jobs=jobs, cache=cache)
    rows = []
    for position, (label, family) in enumerate(ACCESS_TYPES):
        chunk = summaries[position * len(seeds):(position + 1) * len(seeds)]
        rtts: list[float] = []
        delays: list[float] = []
        fps: list[float] = []
        for summary in chunk:
            warmup = summary.spec.warmup
            rtts.extend(summary.rtt.rtts)
            delays.extend(summary.frames.frame_delays)
            fps.extend(summary.frames.per_second_fps(
                duration - warmup, start=warmup))
        rows.append(AccessRow(
            access=label,
            median_rtt=percentile(rtts, 50),
            p99_rtt=percentile(rtts, 99),
            delayed_frame_ratio=tail_fraction(delays, 0.400),
            low_fps_ratio=tail_fraction(fps, 10.0, above=False),
            rtt_ccdf=ccdf_points(rtts, points=30),
            frame_delay_ccdf=ccdf_points(delays, points=30),
        ))
    return rows
