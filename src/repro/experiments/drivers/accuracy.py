"""Fortune Teller accuracy drivers (Figs. 7 and 19).

Fig. 7 is the illustrative time series: qLong and qShort responding to
an ABW drop — qShort reacts within milliseconds, qLong takes over once
the queue has built.

Fig. 19 is the accuracy study: per-packet predicted vs actual delay,
as an error distribution per trace plus a predicted-vs-real heatmap.
Its statistics are computed by the :mod:`repro.obs` prediction auditor
(:class:`~repro.obs.audit.PredictionAuditor`), fed offline from the
recorded ``(predicted, actual)`` pairs — the same numbers a live
traced run reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fortune_teller import FortuneTeller
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.net.packet import FiveTuple, Packet
from repro.net.queue import DropTailQueue
from repro.obs.audit import BINS, PredictionAuditor, bin_index
from repro.sim.engine import Simulator
from repro.traces.synthetic import make_trace
from repro.traces.trace import BandwidthTrace
from repro.wireless.channel import WirelessChannel
from repro.wireless.link import WirelessLink


@dataclass
class Fig7Point:
    time_ms: float
    q_long_ms: float
    q_short_ms: float
    tx_rate_mbps: float
    queue_kb: float


def fig7_qlong_qshort(drop_at_ms: float = 5.0,
                      duration_ms: float = 30.0) -> list[Fig7Point]:
    """Reproduce Fig. 7: estimator response to an ABW drop at t=5 ms.

    A steady 20 Mbps packet stream flows through a wireless link whose
    capacity collapses 20x at ``drop_at_ms``; we sample qLong and qShort
    every 0.5 ms.
    """
    sim = Simulator()
    trace = BandwidthTrace.from_steps(
        [(drop_at_ms / 1000, 20e6),
         ((duration_ms - drop_at_ms) / 1000, 1e6)], interval=0.0005)
    queue = DropTailQueue(capacity_bytes=1_000_000)
    link = WirelessLink(sim, WirelessChannel(trace), queue,
                        max_ampdu_packets=4, per_txop_overhead=0.0001)
    link.deliver = lambda p: None
    teller = FortuneTeller(sim, queue, window=0.010)

    flow = FiveTuple("s", "c", 1, 2)
    interval = 1200 * 8 / 20e6  # packets arriving at exactly 20 Mbps

    def send() -> None:
        link.send(Packet(flow, 1200))
        sim.schedule(interval, send)

    points: list[Fig7Point] = []

    def sample() -> None:
        prediction = teller.predict()
        points.append(Fig7Point(
            time_ms=sim.now * 1000,
            q_long_ms=prediction.q_long * 1000,
            q_short_ms=prediction.q_short * 1000,
            tx_rate_mbps=teller.tx_rate.rate_bps(sim.now) / 1e6,
            queue_kb=queue.byte_length / 1000,
        ))
        if sim.now * 1000 < duration_ms:
            sim.schedule(0.0005, sample)

    sim.schedule(0.0, send)
    sim.schedule(0.0, sample)
    sim.run(until=duration_ms / 1000)
    return points


@dataclass
class AccuracyResult:
    trace: str
    error_cdf: list[tuple[float, float]]   # (abs error seconds, P<=)
    median_error: float
    p90_error: float
    p95_error: float
    p99_error: float
    heatmap: dict[tuple[int, int], int]    # (pred_bin, real_bin) -> count
    pairs: int


#: Kept as aliases — the bin layout now lives with the auditor.
_BINS = BINS
_bin_index = bin_index


def fig19_prediction_accuracy(traces=("W1", "W2", "C1", "C2"),
                              duration: float = 40.0,
                              seed: int = 1) -> list[AccuracyResult]:
    """Per-trace prediction error of the Fortune Teller under Zhuge."""
    results = []
    for trace_name in traces:
        trace = make_trace(trace_name, duration=duration, seed=seed)
        config = ScenarioConfig(trace=trace, protocol="rtp",
                                ap_mode="zhuge", duration=duration,
                                seed=seed, record_predictions=True)
        result = run_scenario(config)
        report = PredictionAuditor.from_pairs(
            result.prediction_pairs).report(cdf_resolution=30)
        results.append(AccuracyResult(
            trace=trace_name,
            error_cdf=report.error_cdf,
            median_error=report.p50,
            p90_error=report.p90,
            p95_error=report.p95,
            p99_error=report.p99,
            heatmap=report.heatmap,
            pairs=report.pairs,
        ))
    return results
