"""City driver: generate, shard, simulate, and merge a fleet campaign.

This is the ROADMAP item-2 milestone driver: it turns one
:class:`~repro.city.gen.CityGenSpec` into a contention-domain-sharded
campaign and reports fleet-wide delay percentiles. The pipeline is

1. :meth:`CityGenSpec.build` — deterministic TopologySpec;
2. :func:`~repro.city.shard.partition_topology` — shard specs, each an
   ordinary standalone topology (so each cell caches under its own
   content hash and a re-run with a different ``--jobs`` or shard
   completion order is served from cache);
3. :func:`~repro.campaign.runner.run_campaign` with a ``consume``
   callback streaming every finished shard straight into a
   :class:`~repro.city.merge.FleetAccumulator` — per-shard sample
   series are released as soon as they are folded, so peak memory
   stays bounded no matter how many shards the city has;
4. :meth:`FleetAccumulator.finalize` — the fleet summary and its
   shard-count-independent digest.

Because the sharder is bit-exact (each shard simulates identically to
its slice of the whole city), ``run_city(..., shard_aps=0)`` — one
unsharded cell — produces the same fleet digest as any sharded run of
the same city. CI pins that equality (``city-smoke``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.campaign import (CampaignError, CampaignResult, ScenarioSpec,
                            TraceSpec, run_campaign)
from repro.city.gen import CityGenSpec
from repro.city.merge import FleetAccumulator, FleetSummary
from repro.city.shard import ShardPlan, partition_topology
from repro.obs.session import TraceConfig

#: Default per-shard simulated duration: long enough past the 5 s
#: warmup for stable percentiles, short enough that a 1000-AP city
#: finishes on a laptop.
CITY_DURATION = 20.0
#: Default trace family feeding every wireless edge (scaled per edge
#: by the generator's ``trace_scale`` jitter).
CITY_FAMILY = "W2"


@dataclass
class CityResult:
    """Everything one city campaign produced."""

    gen: CityGenSpec
    plan: ShardPlan
    campaign: CampaignResult
    fleet: FleetSummary


def city_specs(gen: CityGenSpec, *,
               duration: float = CITY_DURATION,
               family: str = CITY_FAMILY,
               shard_aps: int = 32,
               trace_config: Optional[TraceConfig] = None
               ) -> tuple[ShardPlan, list[ScenarioSpec]]:
    """The shard plan and one ScenarioSpec per shard, in shard order.

    When tracing is requested, each shard's config gets a
    ``shard<index>`` tag so per-shard artifacts are attributable and
    never overwrite each other.
    """
    plan = partition_topology(gen.build(), max_shard_aps=shard_aps)
    specs = []
    for index, shard in enumerate(plan.shards):
        config = trace_config
        if config is not None and len(plan.shards) > 1:
            config = replace(config, tag=f"shard{index:03d}")
        specs.append(ScenarioSpec(
            trace=TraceSpec.for_family(family, duration=duration,
                                       seed=gen.seed),
            protocol="rtp", cca="gcc", ap_mode=gen.ap_mode,
            queue_kind=gen.queue_kind,
            queue_capacity=gen.queue_capacity,
            wan_delay=gen.wan_delay, uplink_scale=gen.uplink_scale,
            duration=duration, seed=gen.seed,
            topology=shard, trace_config=config))
    return plan, specs


def run_city(gen: CityGenSpec, *,
             duration: float = CITY_DURATION,
             family: str = CITY_FAMILY,
             shard_aps: int = 32,
             jobs: int = 0,
             cache=None,
             timeout: Optional[float] = None,
             retries: int = 1,
             progress: Optional[Callable] = None,
             trace_config: Optional[TraceConfig] = None,
             sample_budget: int = FleetAccumulator.DEFAULT_SAMPLE_BUDGET
             ) -> CityResult:
    """Run one city campaign end to end; raises on any failed shard."""
    plan, specs = city_specs(gen, duration=duration, family=family,
                             shard_aps=shard_aps,
                             trace_config=trace_config)
    accumulator = FleetAccumulator(sample_budget=sample_budget)
    result = run_campaign(
        specs, jobs=jobs, cache=cache, timeout=timeout, retries=retries,
        progress=progress,
        consume=lambda cell: accumulator.add(cell.index, cell.summary))
    failures = result.failures()
    if failures:
        detail = "; ".join(f"shard {c.index}: {c.error}"
                           for c in failures[:5])
        raise CampaignError(
            f"{len(failures)} of {len(result.cells)} shards failed: "
            f"{detail}")
    return CityResult(gen=gen, plan=plan, campaign=result,
                      fleet=accumulator.finalize())
