"""City driver: generate, shard, simulate, and merge a fleet campaign.

This is the ROADMAP item-2 milestone driver: it turns one
:class:`~repro.city.gen.CityGenSpec` into a contention-domain-sharded
campaign and reports fleet-wide delay percentiles. The pipeline is

1. :meth:`CityGenSpec.build` — deterministic TopologySpec;
2. :func:`~repro.city.shard.partition_topology` — shard specs, each an
   ordinary standalone topology (so each cell caches under its own
   content hash and a re-run with a different ``--jobs`` or shard
   completion order is served from cache);
3. :func:`~repro.campaign.runner.run_campaign` with a ``consume``
   callback streaming every finished shard straight into a
   :class:`~repro.city.merge.FleetAccumulator` — per-shard sample
   series are released as soon as they are folded, so peak memory
   stays bounded no matter how many shards the city has;
4. :meth:`FleetAccumulator.finalize` — the fleet summary and its
   shard-count-independent digest.

Because the sharder is bit-exact (each shard simulates identically to
its slice of the whole city), ``run_city(..., shard_aps=0)`` — one
unsharded cell — produces the same fleet digest as any sharded run of
the same city. CI pins that equality (``city-smoke``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.campaign import (CampaignError, CampaignResult, ScenarioSpec,
                            TraceSpec, run_campaign)
from repro.campaign.journal import CampaignJournal
from repro.campaign.runner import CHECKPOINT_EVERY
from repro.campaign.supervise import MemoryWatchdog
from repro.city.gen import CityGenSpec
from repro.city.merge import FleetAccumulator, FleetSummary
from repro.city.shard import ShardPlan, partition_topology
from repro.obs.events import WARN
from repro.obs.harness import harness_event
from repro.obs.session import TraceConfig

#: Default per-shard simulated duration: long enough past the 5 s
#: warmup for stable percentiles, short enough that a 1000-AP city
#: finishes on a laptop.
CITY_DURATION = 20.0
#: Default trace family feeding every wireless edge (scaled per edge
#: by the generator's ``trace_scale`` jitter).
CITY_FAMILY = "W2"


@dataclass
class CityResult:
    """Everything one city campaign produced."""

    gen: CityGenSpec
    plan: ShardPlan
    campaign: CampaignResult
    fleet: FleetSummary


def city_specs(gen: CityGenSpec, *,
               duration: float = CITY_DURATION,
               family: str = CITY_FAMILY,
               shard_aps: int = 32,
               trace_config: Optional[TraceConfig] = None
               ) -> tuple[ShardPlan, list[ScenarioSpec]]:
    """The shard plan and one ScenarioSpec per shard, in shard order.

    When tracing is requested, each shard's config gets a
    ``shard<index>`` tag so per-shard artifacts are attributable and
    never overwrite each other.
    """
    plan = partition_topology(gen.build(), max_shard_aps=shard_aps)
    specs = []
    for index, shard in enumerate(plan.shards):
        config = trace_config
        if config is not None and len(plan.shards) > 1:
            config = replace(config, tag=f"shard{index:03d}")
        specs.append(ScenarioSpec(
            trace=TraceSpec.for_family(family, duration=duration,
                                       seed=gen.seed),
            protocol="rtp", cca="gcc", ap_mode=gen.ap_mode,
            queue_kind=gen.queue_kind,
            queue_capacity=gen.queue_capacity,
            wan_delay=gen.wan_delay, uplink_scale=gen.uplink_scale,
            duration=duration, seed=gen.seed,
            topology=shard, trace_config=config))
    return plan, specs


def run_city(gen: CityGenSpec, *,
             duration: float = CITY_DURATION,
             family: str = CITY_FAMILY,
             shard_aps: int = 32,
             jobs: int = 0,
             cache=None,
             timeout: Optional[float] = None,
             retries: int = 1,
             progress: Optional[Callable] = None,
             trace_config: Optional[TraceConfig] = None,
             sample_budget: int = FleetAccumulator.DEFAULT_SAMPLE_BUDGET,
             journal=None,
             resume: bool = False,
             checkpoint_every: int = CHECKPOINT_EVERY,
             mem_limit_bytes: Optional[int] = None,
             hang_timeout: Optional[float] = None,
             worker: Optional[Callable] = None) -> CityResult:
    """Run one city campaign end to end; raises on any failed shard.

    ``journal=`` makes progress durable (one crash-safe record per
    finished shard plus a fleet-accumulator checkpoint every
    ``checkpoint_every`` shards); ``resume=True`` restores from that
    journal and produces a fleet digest bit-identical to an
    uninterrupted run. ``mem_limit_bytes`` arms an RSS watchdog that
    degrades the accumulator from exact to sketch-only percentiles
    under memory pressure instead of OOMing; ``hang_timeout`` SIGKILLs
    and retries pool workers wedged past that many seconds per shard.
    """
    plan, specs = city_specs(gen, duration=duration, family=family,
                             shard_aps=shard_aps,
                             trace_config=trace_config)
    accumulator = FleetAccumulator(sample_budget=sample_budget)
    if resume and journal is not None:
        # Restore the fold from the journal's latest checkpoint; cells
        # journaled after it are replayed through consume below.
        state = CampaignJournal.load(journal)
        if state.checkpoint is not None:
            accumulator = FleetAccumulator.from_state(state.checkpoint)
    restored = set(accumulator.shard_indices())

    watchdog = None
    if mem_limit_bytes is not None:
        def _on_pressure(rss: int) -> None:
            accumulator.force_collapse()
            harness_event("degrade", severity=WARN,
                          what="fleet accumulator -> sketch-only",
                          rss_bytes=rss, limit_bytes=mem_limit_bytes)
        watchdog = MemoryWatchdog(mem_limit_bytes, _on_pressure)

    def consume(cell) -> None:
        # Checkpoint-restored shards replay as resumed cells but are
        # already folded into the accumulator — skip, don't double-add.
        if cell.index not in restored:
            accumulator.add(cell.index, cell.summary)
        if watchdog is not None:
            watchdog.check()

    result = run_campaign(
        specs, jobs=jobs, cache=cache, timeout=timeout, retries=retries,
        progress=progress, consume=consume, worker=worker,
        journal=journal, resume=resume,
        checkpoint_state=accumulator.to_state,
        checkpoint_every=checkpoint_every,
        hang_timeout=hang_timeout)
    failures = result.failures()
    if failures:
        detail = "; ".join(f"shard {c.index}: {c.error}"
                           for c in failures[:5])
        raise CampaignError(
            f"{len(failures)} of {len(result.cells)} shards failed: "
            f"{detail}")
    return CityResult(gen=gen, plan=plan, campaign=result,
                      fleet=accumulator.finalize())
