"""Flow-competition and wireless-interference drivers (Figs. 16, 17).

Fig. 16: CUBIC bulk flows share the RTC flow's AP queue; we measure
degradation durations versus the number of competitors.

Fig. 17: bulk stations on *other* APs contend for the channel; since
interference is continuous, the paper reports degradation *ratios*
(frequency) rather than per-event durations. Since the
:mod:`repro.topology` layer this runs on a genuine two-AP graph: the
RTC client associates with AP-A while bulk stations associate with
AP-B, every wireless edge sharing one contention domain, so AP-B's
traffic consumes AP-A's airtime the way a neighbouring network really
does. Counts beyond the explicitly simulated stations remain
statistical (the stochastic per-edge interferer model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import ScenarioSpec, TraceSpec, run_specs
from repro.topology.spec import interference_topology

# Zhuge deploys on the system-default queue discipline, which is
# fq_codel on Linux/OpenWrt (§4.1): each flow gets its own sub-queue and
# the Fortune Teller reads the RTC flow's own statistics. The named
# baselines keep the disciplines the paper names them after.
SCHEMES = (
    ("Gcc+FIFO", dict(ap_mode="none", queue_kind="fifo")),
    ("Gcc+CoDel", dict(ap_mode="none", queue_kind="codel")),
    ("Gcc+Zhuge", dict(ap_mode="zhuge", queue_kind="fq_codel")),
)


@dataclass
class CompetitionRow:
    scheme: str
    flows: int
    rtt_degradation_s: float
    frame_delay_degradation_s: float
    low_fps_duration_s: float


@dataclass
class InterferenceRow:
    scheme: str
    interferers: int
    rtt_tail_ratio: float
    delayed_frame_ratio: float
    low_fps_ratio: float


def fig16_flow_competition(flow_counts=(0, 2, 5, 10),
                           duration: float = 40.0,
                           seed: int = 1, jobs: int = 0,
                           cache=None) -> list[CompetitionRow]:
    """Competitors join at t=10 s on a steady 30 Mbps channel; measure
    degradation durations after they arrive."""
    # 10 Mbps channel: a full 375 kB AP buffer is then 300 ms of
    # queueing, so CUBIC competitors can actually push the RTC
    # flow's RTT past the 200 ms threshold.
    grid = [(count, scheme, overrides)
            for count in flow_counts
            for scheme, overrides in SCHEMES]
    specs = [ScenarioSpec(trace=TraceSpec.constant(10e6, duration,
                                                   name="steady10"),
                          protocol="rtp", duration=duration, seed=seed,
                          competitors=count, warmup=2.0, **overrides)
             for count, _, overrides in grid]
    rows = []
    for (count, scheme, _), summary in zip(
            grid, run_specs(specs, jobs=jobs, cache=cache)):
        flow = summary.flows[0]
        rows.append(CompetitionRow(
            scheme=scheme, flows=count,
            rtt_degradation_s=flow.rtt.degradation_duration(0.200,
                                                            start=5.0),
            frame_delay_degradation_s=flow.frames
            .delay_degradation_duration(0.400, start=5.0),
            low_fps_duration_s=flow.frames.low_fps_duration(
                duration - 5.0, start=5.0),
        ))
    return rows


def fig17_interference(interferer_counts=(0, 5, 10, 20, 40),
                       duration: float = 40.0,
                       seed: int = 1, jobs: int = 0,
                       cache=None) -> list[InterferenceRow]:
    """Continuous channel contention on a two-AP graph; report
    degradation frequencies."""
    grid = [(count, scheme, overrides)
            for count in interferer_counts
            for scheme, overrides in SCHEMES]
    specs = [ScenarioSpec(trace=TraceSpec.for_family("W2",
                                                     duration=duration,
                                                     seed=seed),
                          protocol="rtp", duration=duration, seed=seed,
                          interferers=count,
                          topology=interference_topology(
                              interferers=count, **overrides),
                          **overrides)
             for count, _, overrides in grid]
    rows = []
    for (count, scheme, _), summary in zip(
            grid, run_specs(specs, jobs=jobs, cache=cache)):
        flow = summary.flows[0]
        warmup = summary.spec.warmup
        rows.append(InterferenceRow(
            scheme=scheme, interferers=count,
            rtt_tail_ratio=flow.rtt.tail_ratio(),
            delayed_frame_ratio=flow.frames.delayed_ratio(),
            low_fps_ratio=flow.frames.low_fps_ratio(
                duration - warmup, start=warmup),
        ))
    return rows
