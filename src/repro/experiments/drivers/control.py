"""Control driver: adaptive per-AP control + fleet steering under storms.

Not a paper figure — the paper runs Zhuge with one fixed parameter set
on healthy links. This driver answers the deployment question the
control layer (ROADMAP item 3) exists for: under a rate-crash/blackout
storm, does a :class:`~repro.control.controller.ZhugeController`
retuning the live Zhuge parameters beat the same AP with its static
configuration? And on a two-AP fleet, does the
:class:`~repro.control.steering.SteeringDaemon` re-homing the client
to the healthiest AP beat leaving it parked on the faulted one?

Both comparisons aggregate *pooled* fault-window samples across seeds
(the same cursor-chunked aggregation as the resilience driver): the
fault window of each storm is the union of every windowed fault's
``[start, end + RECOVERY_WINDOW]`` span, so the metrics cover the
outages and their recovery transients, not the calm in between.

The static baseline runs with the watchdog disabled: the PR 4 watchdog
demotion is itself a (one-knob) adaptation, and the question here is
what the full control loop buys over a genuinely static configuration.
Cells run through the campaign runner, so sweeps are cached and
parallelizable like every other figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.campaign import ScenarioSpec, TraceSpec, run_specs
from repro.control import ControllerConfig, ControlSpec, SteeringConfig
from repro.faults.spec import FaultPlan
from repro.metrics.stats import percentile
from repro.topology.spec import roaming_topology

#: Default per-AP storm: two rate crashes bracketing a blackout, each
#: outage followed by an AP reset (the client re-associates and the
#: estimator state is gone exactly when traffic resumes).
STORM = ("crash@8+2*0.05,reset@10,blackout@14+1,reset@15,"
         "crash@19+2*0.08,reset@21")
#: Default storm duration (covers the last recovery window).
DURATION = 26.0

#: Default fleet storm: every fault aimed at AP-A's downlink edge of
#: the roaming topology; AP-B stays healthy the whole time.
FLEET_STORM = "blackout@8+2/a-down,crash@14+3*0.05/a-down"
FLEET_DURATION = 24.0

#: Fault-window metrics cover [start, end + RECOVERY_WINDOW] per fault
#: so they include each recovery transient, not just the outage.
RECOVERY_WINDOW = 2.0

#: (row label, ControlSpec factory) — factories, not instances, so the
#: module stays import-time cheap and every call gets fresh specs.
SCHEMES = (
    ("static", lambda: None),
    ("controller", lambda: ControlSpec(controller=ControllerConfig(),
                                       steering=None)),
)

FLEET_SCHEMES = (
    ("no-steering", lambda: ControlSpec(controller=ControllerConfig(),
                                        steering=None)),
    ("steering", lambda: ControlSpec(controller=ControllerConfig(),
                                     steering=SteeringConfig())),
)


def storm_plan(storm: str = STORM, seed: int = 1) -> FaultPlan:
    """Parse ``storm`` with the watchdog disabled (see module docstring)."""
    return FaultPlan.parse(storm, seed=seed, watchdog_enabled=False)


def fault_windows(plan: FaultPlan,
                  recovery: float = RECOVERY_WINDOW) -> list[tuple[float,
                                                                   float]]:
    """Merged ``[start, end + recovery]`` spans of the windowed faults."""
    spans = sorted((fault.start, fault.end + recovery)
                   for fault in plan.faults if fault.duration > 0)
    merged: list[tuple[float, float]] = []
    for lo, hi in spans:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def control_specs(seeds: tuple[int, ...], duration: float = DURATION,
                  storm: str = STORM, family: str = "W2",
                  protocol: str = "rtp", cca: str = "gcc"
                  ) -> list[ScenarioSpec]:
    """Per-AP sweep: one spec per (scheme, seed), scheme-major order."""
    specs = []
    for _, control_factory in SCHEMES:
        for seed in seeds:
            specs.append(ScenarioSpec(
                trace=TraceSpec.for_family(family, duration=duration,
                                           seed=seed),
                protocol=protocol, cca=cca, ap_mode="zhuge",
                duration=duration, seed=seed,
                faults=storm_plan(storm, seed=seed),
                control=control_factory()))
    return specs


def fleet_specs(seeds: tuple[int, ...], duration: float = FLEET_DURATION,
                storm: str = FLEET_STORM, family: str = "W2",
                protocol: str = "rtp", cca: str = "gcc"
                ) -> list[ScenarioSpec]:
    """Two-AP sweep on the roaming topology, scheme-major order."""
    specs = []
    for _, control_factory in FLEET_SCHEMES:
        for seed in seeds:
            specs.append(ScenarioSpec(
                trace=TraceSpec.for_family(family, duration=duration,
                                           seed=seed),
                protocol=protocol, cca=cca, ap_mode="zhuge",
                duration=duration, seed=seed,
                topology=roaming_topology(queue_kind="droptail"),
                faults=storm_plan(storm, seed=seed),
                control=control_factory()))
    return specs


@dataclass
class ControlRow:
    """One per-AP scheme, pooled over seeds."""

    scheme: str
    steady_p50_ms: float     # whole measured run
    fault_p50_ms: float      # fault windows + recovery only
    fault_p99_ms: float
    fault_samples: int
    transitions: int = 0              # controller state changes (all APs)
    first_reaction: Optional[float] = None  # first transition timestamp


@dataclass
class FleetRow:
    """One fleet scheme on the two-AP topology, pooled over seeds."""

    scheme: str
    fault_p50_ms: float
    fault_p99_ms: float
    fault_samples: int
    moves: int = 0           # steering re-homes across all seeds


def _window_samples(summary, spans) -> list[float]:
    rtt = summary.rtt
    return [value for when, value in zip(rtt.times, rtt.rtts)
            if any(lo <= when <= hi for lo, hi in spans)]


def fig_control(seeds: tuple[int, ...] = (1, 2),
                duration: float = DURATION, storm: str = STORM,
                fleet: bool = True, fleet_storm: str = FLEET_STORM,
                fleet_duration: float = FLEET_DURATION,
                jobs: int = 0, cache=None, timeout=None,
                retries: int = 1) -> tuple[list[ControlRow],
                                           list[FleetRow]]:
    """Run both sweeps and aggregate pooled per scheme."""
    specs = control_specs(seeds, duration, storm)
    if fleet:
        specs += fleet_specs(seeds, fleet_duration, fleet_storm)
    summaries = run_specs(specs, jobs=jobs, cache=cache,
                          timeout=timeout, retries=retries)

    spans = fault_windows(storm_plan(storm))
    rows = []
    cursor = 0
    for label, _factory in SCHEMES:
        chunk = summaries[cursor:cursor + len(seeds)]
        cursor += len(seeds)
        steady: list[float] = []
        window: list[float] = []
        transitions = 0
        first: Optional[float] = None
        for summary in chunk:
            steady.extend(summary.rtt.rtts)
            window.extend(_window_samples(summary, spans))
            transitions += len(summary.control_transitions)
            if summary.control_transitions:
                when = summary.control_transitions[0][0]
                first = when if first is None else min(first, when)
        rows.append(ControlRow(
            scheme=label,
            steady_p50_ms=percentile(steady, 50) * 1000 if steady else 0.0,
            fault_p50_ms=percentile(window, 50) * 1000 if window else 0.0,
            fault_p99_ms=percentile(window, 99) * 1000 if window else 0.0,
            fault_samples=len(window),
            transitions=transitions,
            first_reaction=first))

    fleet_rows = []
    if fleet:
        fleet_spans = fault_windows(storm_plan(fleet_storm))
        for label, _factory in FLEET_SCHEMES:
            chunk = summaries[cursor:cursor + len(seeds)]
            cursor += len(seeds)
            window = []
            moves = 0
            for summary in chunk:
                window.extend(_window_samples(summary, fleet_spans))
                moves += len(summary.steering_moves)
            fleet_rows.append(FleetRow(
                scheme=label,
                fault_p50_ms=(percentile(window, 50) * 1000
                              if window else 0.0),
                fault_p99_ms=(percentile(window, 99) * 1000
                              if window else 0.0),
                fault_samples=len(window),
                moves=moves))
    return rows, fleet_rows
