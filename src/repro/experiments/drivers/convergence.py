"""Bandwidth-drop convergence drivers (Figs. 4, 14, 15).

The paper's setup: a 50 ms-RTT, 30 Mbps link; once the CCA reaches
steady state the bandwidth drops by k. We measure, from the drop until
the end of the observation window:

* duration of network RTT > 200 ms,
* duration of frame delay > 400 ms,
* duration of per-second frame rate < 10 fps (Figs. 14/15 (c)),
* CCA re-convergence duration (Fig. 4b): time until the sending rate
  stays within 1.3x of the post-drop capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.traces.synthetic import drop_trace

DROP_AT = 15.0
OBSERVE = 15.0           # seconds after the drop
BASE_RATE = 30e6
# The stream must be able to out-demand the post-drop capacity for the
# drop to congest at all; 8 Mbps keeps k=2 harmless (15 Mbps left) while
# k >= 5 bites, which reproduces the paper's k-sweep shape.
VIDEO_CAP = 8e6


@dataclass
class DropRow:
    """One (scheme, k) bandwidth-drop measurement."""

    scheme: str
    k: float
    rtt_degradation_s: float
    frame_delay_degradation_s: float
    low_fps_duration_s: float
    rate_reconvergence_s: float


FIG4_CCAS = (
    ("Cubic", "cubic"),
    ("Bbr", "bbr"),
    ("Copa", "copa"),
)
FIG4_QUEUES = (("FIFO", "fifo"), ("CoDel", "codel"))

FIG14_SCHEMES = (
    ("Gcc+FIFO", dict(protocol="rtp", ap_mode="none", queue_kind="fifo")),
    ("Gcc+CoDel", dict(protocol="rtp", ap_mode="none", queue_kind="codel")),
    ("Gcc+Zhuge", dict(protocol="rtp", ap_mode="zhuge", queue_kind="fifo")),
)

FIG15_SCHEMES = (
    ("Copa", dict(protocol="tcp", cca="copa", ap_mode="none")),
    ("Copa+FastAck", dict(protocol="tcp", cca="copa", ap_mode="fastack")),
    ("ABC", dict(protocol="tcp", cca="abc", ap_mode="abc")),
    ("Copa+Zhuge", dict(protocol="tcp", cca="copa", ap_mode="zhuge")),
)


def run_drop(scheme: str, overrides: dict, k: float, seed: int = 1,
             max_bps: float = VIDEO_CAP) -> DropRow:
    """One bandwidth-drop run; measures degradation durations."""
    duration = DROP_AT + OBSERVE
    trace = drop_trace(BASE_RATE, k=k, drop_at=DROP_AT, duration=duration)
    config = ScenarioConfig(trace=trace, duration=duration, seed=seed,
                            wan_delay=0.025, max_bps=max_bps,
                            warmup=2.0, **overrides)
    result = run_scenario(config)
    flow = result.flows[0]

    rtt_duration = flow.rtt.degradation_duration(0.200, start=DROP_AT)
    frame_duration = flow.frames.delay_degradation_duration(0.400,
                                                            start=DROP_AT)
    low_fps = flow.frames.low_fps_duration(OBSERVE, start=DROP_AT)
    return DropRow(scheme=scheme, k=k,
                   rtt_degradation_s=rtt_duration,
                   frame_delay_degradation_s=frame_duration,
                   low_fps_duration_s=low_fps,
                   rate_reconvergence_s=_reconvergence(result, k))


def _reconvergence(result, k: float) -> float:
    """Fig. 4b metric: time for the sending rate to settle under the
    post-drop capacity (with 1.3x slack)."""
    # Rate above capacity shows as delay growth in the RTT series.
    # Re-convergence = last time network RTT exceeded 200 ms.
    flow = result.flows[0]
    violations = [t for t, r in zip(flow.rtt.times, flow.rtt.rtts)
                  if t >= DROP_AT and r > 0.200]
    if not violations:
        return 0.0
    return max(violations) - DROP_AT


def fig4_cca_convergence(ks=(2, 5, 10, 20, 50),
                         seed: int = 1) -> list[DropRow]:
    """Fig. 4: convergence duration for CUBIC/BBR/Copa x FIFO/CoDel (TCP)
    and GCC x FIFO/CoDel (RTP), without Zhuge.

    Unlike Figs. 14/15 (rate-capped video), Fig. 4 studies the CCAs
    themselves, so the flows here are allowed to fill the 30 Mbps link.
    """
    rows = []
    greedy_cap = 25e6
    for k in ks:
        for cca_name, cca in FIG4_CCAS:
            for queue_name, queue in FIG4_QUEUES:
                rows.append(run_drop(
                    f"{cca_name}+{queue_name}",
                    dict(protocol="tcp", cca=cca, queue_kind=queue,
                         app="bulk"),
                    k, seed, max_bps=greedy_cap))
        for queue_name, queue in FIG4_QUEUES:
            rows.append(run_drop(
                f"Gcc+{queue_name}",
                dict(protocol="rtp", ap_mode="none", queue_kind=queue),
                k, seed, max_bps=greedy_cap))
    return rows


def fig14_rtp_drop(ks=(2, 5, 10, 20, 50), seed: int = 1) -> list[DropRow]:
    """Fig. 14: RTP schemes under ABW drop."""
    return [run_drop(name, overrides, k, seed)
            for k in ks for name, overrides in FIG14_SCHEMES]


def fig15_tcp_drop(ks=(2, 5, 10, 20, 50), seed: int = 1) -> list[DropRow]:
    """Fig. 15: TCP schemes under ABW drop."""
    return [run_drop(name, overrides, k, seed)
            for k in ks for name, overrides in FIG15_SCHEMES]
