"""Fairness drivers (Fig. 20): internal and external fairness.

Bars of the paper's Fig. 20:
  (a) two RTC flows, neither optimized by Zhuge;
  (b) two RTC flows, exactly one optimized (external fairness);
  (c) two RTC flows, both optimized (internal fairness).

We report each flow's goodput normalized by the link capacity, for both
RTP/GCC and TCP/Copa. Zhuge must not let optimized flows starve the
unoptimized one: per-flow shares in (b) stay within a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import ScenarioSpec, TraceSpec, run_specs
from repro.metrics.stats import jain_fairness

BARS = (
    ("a: none optimized", (False, False)),
    ("b: one optimized", (True, False)),
    ("c: both optimized", (True, True)),
)


@dataclass
class FairnessRow:
    protocol: str
    bar: str
    flow_goodputs_bps: tuple[float, float]
    normalized: tuple[float, float]
    jain_index: float
    bitrate_gap_ratio: float  # |g1-g2| / max(g1,g2)


def fig20_fairness(duration: float = 60.0, seed: int = 1,
                   capacity_bps: float = 10e6, jobs: int = 0,
                   cache=None) -> list[FairnessRow]:
    trace = TraceSpec.constant(capacity_bps, duration, name="fair")
    grid = [(protocol, cca, bar, mask)
            for protocol, cca in (("rtp", "gcc"), ("tcp", "copa"))
            for bar, mask in BARS]
    specs = [ScenarioSpec(trace=trace, protocol=protocol, cca=cca,
                          ap_mode="zhuge" if any(mask) else "none",
                          duration=duration, seed=seed, rtc_flows=2,
                          zhuge_flow_mask=mask, max_bps=capacity_bps)
             for protocol, cca, _, mask in grid]
    rows = []
    for (protocol, _, bar, _), summary in zip(
            grid, run_specs(specs, jobs=jobs, cache=cache)):
        goodputs = tuple(flow.goodput_bps for flow in summary.flows)
        normalized = tuple(g / capacity_bps for g in goodputs)
        gap = (abs(goodputs[0] - goodputs[1]) / max(max(goodputs), 1.0))
        rows.append(FairnessRow(
            protocol=protocol, bar=bar,
            flow_goodputs_bps=goodputs,
            normalized=normalized,
            jain_index=jain_fairness(list(goodputs)),
            bitrate_gap_ratio=gap,
        ))
    return rows
