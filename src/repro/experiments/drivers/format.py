"""Row formatting shared by the benchmark harness."""

from __future__ import annotations

from typing import Sequence


def format_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence], widths: Sequence[int] | None = None
                 ) -> str:
    """Fixed-width text table, printed by every bench."""
    if widths is None:
        widths = []
        for col in range(len(header)):
            cells = [str(header[col])] + [str(row[col]) for row in rows]
            widths.append(max(len(c) for c in cells) + 2)
    lines = [f"== {title} =="]
    lines.append("".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("-" * sum(widths))
    for row in rows:
        lines.append("".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def pct(value: float, digits: int = 2) -> str:
    return f"{value * 100:.{digits}f}%"


def ms(value: float, digits: int = 0) -> str:
    return f"{value * 1000:.{digits}f}ms"


def mbps(value: float, digits: int = 2) -> str:
    return f"{value / 1e6:.{digits}f}Mbps"


def seconds(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}s"
