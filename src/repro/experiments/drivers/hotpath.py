"""Hot-path perf-regression driver: the numbers behind ``BENCH_hotpath.json``.

Two measurement families:

* **micro** — each optimized sliding-window estimator against its naive
  re-scan reference (:mod:`repro.core.sliding_window_reference`, the
  seed implementation) on an identical pre-filled window.  The recorded
  ``speedup`` is the regression guard: the acceptance floor is >= 3x on
  ``DelayDeltaHistory.sample`` and
  ``DequeueIntervalEstimator.average_interval``.
* **datapath** — aggregate ops/sec of the three per-packet entry points
  (``predict``, ``on_data_packet``, ``ack_delay``) through a real
  :class:`ZhugeAP` at 1/10/100 concurrent flows, the quantity Fig. 21
  projects onto router CPUs.
* **end_to_end** — wall-clock packets/sec of the whole simulated
  datapath driven through the event loop: sender bursts -> WAN link ->
  ``ZhugeAP.on_downlink`` -> wireless AMPDU txops -> client -> per-packet
  ACK -> reverse delay line -> ``ZhugeAP.on_uplink``.  This is the
  number the ROADMAP's "1M packets/sec" target is measured against; it
  exercises the scheduler, queue, link batching, and estimators
  together rather than one entry point at a time.

``write_results`` appends one run to the ``runs`` list of the JSON, so
successive PRs accumulate a perf trajectory instead of overwriting it.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core.feedback_updater import FeedbackKind
from repro.core.sliding_window import (
    BurstSizeTracker,
    DelayDeltaHistory,
    DequeueIntervalEstimator,
    SlidingWindowRate,
)
from repro.core.sliding_window_reference import (
    ReferenceBurstSizeTracker,
    ReferenceDelayDeltaHistory,
    ReferenceDequeueIntervalEstimator,
    ReferenceSlidingWindowRate,
)
from repro.core.zhuge_ap import ZhugeAP
from repro.net.packet import ACK_SIZE, FiveTuple, Packet, PacketKind
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom

SCHEMA = "hotpath-regression/v1"
# How many samples the micro benches hold in-window. 256 models a busy
# AP (a 40 ms window at ~6000 pps); the naive implementations re-scan
# all of them per query, the optimized ones touch O(1).
MICRO_FILL = 256


def _time_calls(fn, calls: int) -> float:
    """Wall-clock ops/sec of ``calls`` invocations of ``fn``."""
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    elapsed = time.perf_counter() - start
    return calls / elapsed if elapsed > 0 else float("inf")


def _micro_pair(name, optimized_fn, reference_fn, queries) -> dict:
    return {
        "name": name,
        "window_fill": MICRO_FILL,
        "queries": queries,
        "optimized_ops_per_sec": _time_calls(optimized_fn, queries),
        "reference_ops_per_sec": _time_calls(reference_fn, queries),
    }


def bench_estimator_micro(queries: int = 20_000) -> list[dict]:
    """Optimized-vs-reference query throughput on identical windows."""
    spacing = 0.002
    span = MICRO_FILL * spacing
    now = span  # query time; every recorded event is still in window

    results = []

    opt_hist = DelayDeltaHistory(window=2 * span, rng=DeterministicRandom(7))
    ref_hist = ReferenceDelayDeltaHistory(window=2 * span,
                                          rng=DeterministicRandom(7))
    for i in range(MICRO_FILL):
        t, d = i * spacing, 0.001 + (i % 16) * 0.0001
        opt_hist.push(t, d)
        ref_hist.push(t, d)
    results.append(_micro_pair(
        "DelayDeltaHistory.sample",
        lambda: opt_hist.sample(now), lambda: ref_hist.sample(now), queries))
    results.append(_micro_pair(
        "DelayDeltaHistory.mean",
        lambda: opt_hist.mean(now), lambda: ref_hist.mean(now), queries))

    opt_intervals = DequeueIntervalEstimator(window=2 * span)
    ref_intervals = ReferenceDequeueIntervalEstimator(window=2 * span)
    for i in range(MICRO_FILL + 1):
        opt_intervals.record_departure(i * spacing)
        ref_intervals.record_departure(i * spacing)
    results.append(_micro_pair(
        "DequeueIntervalEstimator.average_interval",
        lambda: opt_intervals.average_interval(now),
        lambda: ref_intervals.average_interval(now), queries))

    opt_bursts = BurstSizeTracker(window=2 * span)
    ref_bursts = ReferenceBurstSizeTracker(window=2 * span)
    for i in range(MICRO_FILL):
        opt_bursts.record_departure(i * spacing, 1200 + (i % 7) * 100)
        ref_bursts.record_departure(i * spacing, 1200 + (i % 7) * 100)
    results.append(_micro_pair(
        "BurstSizeTracker.max_burst_bytes",
        lambda: opt_bursts.max_burst_bytes(now),
        lambda: ref_bursts.max_burst_bytes(now), queries))

    opt_rate = SlidingWindowRate(window=2 * span)
    ref_rate = ReferenceSlidingWindowRate(window=2 * span)
    for i in range(MICRO_FILL):
        opt_rate.record(i * spacing, 1200)
        ref_rate.record(i * spacing, 1200)
    results.append(_micro_pair(
        "SlidingWindowRate.rate_bps",
        lambda: opt_rate.rate_bps(now), lambda: ref_rate.rate_bps(now),
        queries))

    for row in results:
        row["speedup"] = (row["optimized_ops_per_sec"]
                          / row["reference_ops_per_sec"])
    return results


def bench_datapath(flows: int, packets: int = 20_000) -> dict:
    """Aggregate ops/sec of the per-packet entry points at ``flows``."""
    sim = Simulator()
    queue = DropTailQueue(capacity_bytes=10_000_000)
    ap = ZhugeAP(sim, queue, rng=DeterministicRandom(1))
    flow_objs = [FiveTuple("server", "client", 1000 + i, 2000 + i)
                 for i in range(flows)]
    for flow in flow_objs:
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND)
    ap.forward_downlink = lambda p: None
    ap.forward_uplink = lambda p: None

    t_data = 0.0
    t_ack = 0.0
    t = 0.0
    for i in range(packets):
        flow = flow_objs[i % flows]
        data = Packet(flow, 1200, seq=i)
        queue.enqueue(data, t)
        t0 = time.perf_counter()
        ap.on_downlink(data)
        t_data += time.perf_counter() - t0
        queue.dequeue(t + 0.002)
        ack = Packet(flow.reversed(), ACK_SIZE, PacketKind.ACK, ack=i)
        t0 = time.perf_counter()
        ap.on_uplink(ack)
        t_ack += time.perf_counter() - t0
        t += 0.005

    predict_calls = min(packets, 20_000)
    predict_ops = _time_calls(ap.fortune_teller.predict, predict_calls)
    return {
        "flows": flows,
        "packets": packets,
        "predict_ops_per_sec": predict_ops,
        "on_data_packet_ops_per_sec": packets / t_data,
        "ack_delay_ops_per_sec": packets / t_ack,
    }


def bench_end_to_end(packets: int = 30_000, flows: int = 4,
                     link_rate_bps: float = 300e6,
                     watchdog: bool = False,
                     control: bool = False,
                     mode: str | None = None) -> dict:
    """Wall-clock packets/sec of the full datapath through the event loop.

    A paced sender pushes ``packets`` data packets (split across
    ``flows`` registered RTC flows) through a WAN :class:`WiredLink`
    into a :class:`ZhugeAP`, the AP forwards into a
    :class:`WirelessLink` serving AMPDU txops off the shared downlink
    queue, and the client answers every delivery with an ACK routed
    back through a delay line into ``ZhugeAP.on_uplink``.  The reported
    rate counts *data* packets end to end (each of which also costs an
    ACK traversal), so it is the honest "packets/sec the simulator
    sustains" figure for the ROADMAP scaling target.
    """
    from repro.net.link import WiredLink
    from repro.traces.trace import BandwidthTrace
    from repro.wireless.channel import WirelessChannel
    from repro.wireless.link import WirelessLink

    # ``mode`` pins REPRO_EVENT_MODEL for this run (the engine reads it
    # once per Simulator); ``None`` keeps the ambient default.
    saved_mode = os.environ.get("REPRO_EVENT_MODEL")
    if mode is not None:
        os.environ["REPRO_EVENT_MODEL"] = mode
    try:
        sim = Simulator()
    finally:
        if mode is not None:
            if saved_mode is None:
                del os.environ["REPRO_EVENT_MODEL"]
            else:
                os.environ["REPRO_EVENT_MODEL"] = saved_mode
    queue = DropTailQueue(capacity_bytes=4_000_000)
    ap = ZhugeAP(sim, queue, rng=DeterministicRandom(1))
    flow_objs = [FiveTuple("server", "client", 1000 + i, 2000 + i)
                 for i in range(flows)]
    for flow in flow_objs:
        ap.register_flow(flow, FeedbackKind.OUT_OF_BAND)

    channel = WirelessChannel(BandwidthTrace([link_rate_bps], interval=60.0),
                              mac_efficiency=1.0)
    wifi = WirelessLink(sim, channel, queue, propagation_delay=0.001)
    wan = WiredLink(sim, rate_bps=link_rate_bps, delay=0.010, name="wan")
    ack_line = WiredLink(sim, rate_bps=None, delay=0.010, name="ack")

    wan.deliver = ap.on_downlink
    ap.forward_downlink = wifi.send
    delivered = 0

    controller = None
    if control:
        # The GREEN-steady cost cell: a ZhugeController riding a healthy
        # datapath — vote/check timer, drop hook, and the watchdog
        # sensor it attaches.
        from repro.control import ControllerConfig, ZhugeController
        controller = ZhugeController(sim, ap, ControllerConfig())
    elif watchdog:
        # The PR 4 static safety configuration: watchdog sensing per
        # packet, no control loop. The baseline the controller cell's
        # overhead is measured against, since the controller reuses
        # this watchdog as its sensor.
        ap.enable_watchdog()
    sensing = control or watchdog

    # Reverse five-tuples are immutable; building one per ACK would
    # bill flow-object churn to the datapath under measurement.
    reverse_flow = {flow: flow.reversed() for flow in flow_objs}
    Packet_ = Packet
    _ACK = PacketKind.ACK

    def client_deliver(packet):
        nonlocal delivered
        delivered += 1
        if sensing:
            ap.on_wireless_delivery(packet)
            if delivered >= packets:
                # The periodic control/watchdog timers would keep the
                # event queue alive forever; the run ends with the last
                # delivery.
                if controller is not None:
                    controller.stop()
                ap.watchdog.stop()
        ack = Packet(reverse_flow[packet.flow], ACK_SIZE, PacketKind.ACK,
                     ack=packet.seq)
        ack_send(ack)

    def client_deliver_batch(batch):
        # The macro-mode AMPDU twin: one call per txop.  Without
        # sensing the whole txop's ACKs are built in one sweep and
        # pushed seq-consecutively onto the delay line's run —
        # identical to looping ``client_deliver`` (same construction
        # order, same seq assignment, no sensing state to interleave).
        nonlocal delivered
        if sensing:
            for packet in batch:
                client_deliver(packet)
            return
        delivered += len(batch)
        acks = [Packet_(reverse_flow[p.flow], ACK_SIZE, _ACK, ack=p.seq)
                for p in batch]
        ack_send_batch(acks)

    wifi.deliver = client_deliver
    wifi.deliver_batch = client_deliver_batch
    ack_line.deliver = ap.on_uplink
    # One txop's deliveries ACK at the same instant, so the delay line
    # hands the whole burst to the AP in one call (macro mode only; the
    # classic path never forms batches).  ``forward_uplink`` stays None:
    # the bench has no WAN side behind the AP, and the updater skips the
    # forward without a callback trampoline.
    ack_line.deliver_batch = ap.on_ack_batch

    # The wiring above is final, so resolve both wired links' event
    # model now and let the hot closures capture the resolved fast-path
    # ``send`` instead of re-resolving through the generic entry point.
    wan._resolve_macro()
    ack_line._resolve_macro()
    wan_send = wan.send
    ack_send = ack_line.send
    ack_send_batch = ack_line.send_batch

    # Paced sender: bursts of 8 packets at 60% of the nominal link rate
    # (~95% of the txop-overhead-adjusted wifi capacity), so the queue
    # stays busy — real AMPDU aggregation — without steady-state drops.
    burst = 8
    period = burst * 1200 * 8 / (0.6 * link_rate_bps)
    sent = 0

    def send_burst():
        nonlocal sent
        for _ in range(burst):
            if sent >= packets:
                return
            wan_send(Packet(flow_objs[sent % flows], 1200, seq=sent))
            sent += 1
        sim.schedule(period, send_burst)

    sim.schedule(0.0, send_burst)
    # Measure with the cyclic collector paused — the ``timeit``
    # convention — so GC pauses triggered by unrelated allocation
    # history don't land inside one mode's cell and not the other's.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    try:
        sim.run()
    finally:
        elapsed = time.perf_counter() - start
        if gc_was_enabled:
            gc.enable()
    result = {
        "packets": packets,
        "flows": flows,
        "mode": sim.event_model,
        "delivered": delivered,
        "events": sim.events_processed,
        "events_per_packet": sim.events_processed / max(delivered, 1),
        "packets_per_sec": delivered / elapsed if elapsed > 0 else float("inf"),
        "events_per_sec": (sim.events_processed / elapsed
                           if elapsed > 0 else float("inf")),
    }
    if controller is not None:
        result["controller_state"] = controller.state
        result["control_transitions"] = len(controller.transitions)
    return result


def bench_end_to_end_controller(packets: int = 30_000, flows: int = 4,
                                repeats: int = 5) -> dict:
    """GREEN-steady controller overhead on the end-to-end datapath.

    Best-of-``repeats`` packets/sec of a
    :class:`~repro.control.controller.ZhugeController`-managed AP
    against the PR 4 static safety configuration (watchdog enabled, no
    control loop) — the baseline whose watchdog sensor the controller
    reuses, so the delta is the control loop itself: the vote/check
    timer, the drop hook, and policy bookkeeping. The controller must
    stay GREEN for the whole run (a healthy link must not trip the
    voters) and its steady-state cost is pinned under ``ceiling``.
    """
    # Interleave the two cells A/B/A/B instead of running each block
    # back to back: CPU frequency drift over a multi-second block
    # otherwise lands entirely on whichever cell runs later and shows
    # up as phantom overhead several times the ceiling.
    plain_best = 0.0
    runs = []
    for _ in range(repeats):
        plain_best = max(plain_best, bench_end_to_end(
            packets, flows, watchdog=True)["packets_per_sec"])
        runs.append(bench_end_to_end(packets, flows, control=True))
    controlled_best = max(run["packets_per_sec"] for run in runs)
    return {
        "packets": packets,
        "flows": flows,
        "repeats": repeats,
        # Re-pinned for the PR 10 macro datapath: the faster shared
        # path shrank the ratio's denominator ~20% (a fixed absolute
        # controller cost now reads as a larger fraction), and the
        # best-of-N wall-clock spread on a shared runner is itself
        # several percent.  The structural guards (GREEN steady, zero
        # transitions, zero drops) stay strict; the ratio is a coarse
        # brake against gross control-loop bloat, not a tight budget.
        "ceiling": 0.08,
        "plain_best_pps": plain_best,
        "controlled_best_pps": controlled_best,
        "overhead_ratio": plain_best / controlled_best - 1.0,
        "controller_state": runs[-1]["controller_state"],
        "control_transitions": runs[-1]["control_transitions"],
        "delivered": runs[-1]["delivered"],
    }


def _e2e_cells(e2e_packets: int, e2e_repeats: int) -> dict:
    """Best-of-``e2e_repeats`` end-to-end cell per event model,
    interleaved classic/macro (see ``run_hotpath_bench``)."""
    best: dict = {}
    for _ in range(e2e_repeats):
        for model in ("classic", "macro"):
            run = bench_end_to_end(packets=e2e_packets, mode=model)
            cur = best.get(model)
            if cur is None or run["packets_per_sec"] > cur["packets_per_sec"]:
                best[model] = run
    return best


def run_hotpath_bench(queries: int = 20_000, packets: int = 20_000,
                      flow_counts=(1, 10, 100),
                      e2e_packets: int = 30_000,
                      e2e_repeats: int = 5) -> dict:
    return {
        "micro": bench_estimator_micro(queries=queries),
        "datapath": [bench_datapath(flows, packets=packets)
                     for flows in flow_counts],
        # One cell per event model: ``macro`` (the default fused
        # dispatch) against the ``classic`` per-packet escape hatch —
        # best-of-``e2e_repeats`` each, since a single wall-clock run
        # is hostage to scheduler noise.  Repeats are interleaved
        # classic/macro so CPU frequency drift over the block hits both
        # models equally instead of biasing whichever runs later.
        "end_to_end": _e2e_cells(e2e_packets, e2e_repeats),
        "controller": bench_end_to_end_controller(packets=e2e_packets,
                                                  repeats=e2e_repeats),
    }


def write_results(path: str | Path, payload: dict | None = None) -> dict:
    """Append one run to the trajectory file at ``path`` and return it."""
    path = Path(path)
    run = dict(payload if payload is not None else run_hotpath_bench())
    run["recorded_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds")
    run["python"] = sys.version.split()[0]

    doc = {"schema": SCHEMA, "runs": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if existing.get("schema") == SCHEMA:
                doc["runs"] = list(existing.get("runs", []))
        except (json.JSONDecodeError, OSError):
            pass  # corrupt trajectory: start a fresh one
    doc["runs"].append(run)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
