"""Disabled-tracing overhead guard: the ``repro.obs`` <2% contract.

Every probe site in the datapath costs one attribute load plus an
``is not None`` branch while tracing is disabled. This driver measures
that cost *paired*: the real (instrumented, ``trace = None``) queue and
feedback-updater datapath against probe-free subclasses whose hot
methods are byte-for-byte the pre-instrumentation code, interleaved in
one process and compared on the lower quartile of per-round ratios.
A cross-run comparison against absolute ops/sec in
``BENCH_hotpath.json`` would be hopelessly flaky (this container
jitters +-15% between runs); paired per-round ratios are stable to
about a percent.

``benchmarks/bench_obs_overhead.py`` asserts
``overhead_ratio < OVERHEAD_CEILING`` and appends the numbers to the
``BENCH_hotpath.json`` trajectory.
"""

from __future__ import annotations

import gc
import time

from repro.core.feedback_updater import OutOfBandFeedbackUpdater
from repro.core.fortune_teller import FortuneTeller
from repro.net.packet import FiveTuple, Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom

#: The acceptance ceiling: instrumented-but-disabled may cost at most
#: this multiple of the probe-free datapath.
OVERHEAD_CEILING = 1.02


class ProbeFreeQueue(DropTailQueue):
    """The queue datapath with the tracing probe sites removed."""

    def enqueue(self, packet, now):
        if self._bytes + packet.size > self.capacity_bytes:
            self._drop(packet, "tail-overflow")
            return False
        packet.enqueued_at = now
        self._packets.append(packet)
        self._bytes += packet.size
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size
        for callback in self.on_arrival:
            callback(packet, self)
        return True

    def _pop_head(self, now):
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._bytes -= packet.size
        packet.dequeued_at = now
        self.stats.dequeued += 1
        self.stats.bytes_dequeued += packet.size
        return packet

    def _drop(self, packet, reason):
        self.stats.record_drop(packet, reason)
        for callback in self.on_drop:
            callback(packet, reason)


class ProbeFreeUpdater(OutOfBandFeedbackUpdater):
    """``on_data_packet`` / ``ack_delay`` with the probe sites removed."""

    def on_data_packet(self, packet):
        prediction = self.fortune_teller.observe_arrival(packet)
        current = prediction.total
        if self._last_total_delay is None:
            self._last_total_delay = current
            return 0.0
        delta = current - self._last_total_delay
        self._last_total_delay = current
        if self.passthrough:
            return delta
        if delta >= 0:
            now = self.sim._now
            self.delta_history.push(now, delta)
            if not self.distributional:
                self._pending_deltas.append((now, delta))
                self._expire_pending(now)
        elif self.use_tokens:
            self.token_history.append(-delta)
        return delta

    def ack_delay(self, arrival_time):
        if self.passthrough:
            release = max(arrival_time, self._last_sent_time)
            self._last_sent_time = release
            return release - arrival_time
        if self.token_history.ttl is not None:
            self.token_history.expire(arrival_time)
        if self.distributional:
            extra = self.delta_history.sample(arrival_time)
        else:
            self._expire_pending(arrival_time)
            if self._pending_deltas:
                _, extra = self._pending_deltas.popleft()
            else:
                extra = 0.0
        while self.use_tokens and self.token_history and extra > 0:
            front = self.token_history[0]
            if front > extra:
                self.token_history[0] = front - extra
                extra = 0.0
                break
            extra -= front
            self.token_history.popleft()
        extra = min(extra, self.max_extra_delay)
        release = max(arrival_time + extra, self._last_sent_time)
        self._last_sent_time = release
        return release - arrival_time


def _build(queue_cls, updater_cls):
    sim = Simulator()
    queue = queue_cls(capacity_bytes=10_000_000)
    teller = FortuneTeller(sim, queue)
    updater = updater_cls(sim, teller, rng=DeterministicRandom(1))
    flow = FiveTuple("server", "client", 1000, 2000)
    return sim, queue, updater, flow


def _drive(sim, queue, updater, flow, packets):
    """Run the per-packet datapath; returns (elapsed_s, fingerprint).

    The fingerprint proves the probe-free reference followed the exact
    same state trajectory as the instrumented datapath. The collector
    is paused during the timed region — a GC cycle landing in one
    variant but not the other would otherwise dominate the <2% signal.
    """
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        t = 0.0
        for i in range(packets):
            sim._now = t  # drive the virtual clock directly (bench only)
            packet = Packet(flow, 1200, seq=i)
            queue.enqueue(packet, t)
            updater.on_data_packet(packet)
            queue.dequeue(t + 0.002)
            updater.ack_delay(t + 0.004)
            t += 0.005
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    fingerprint = (queue.stats.enqueued, queue.stats.dequeued,
                   round(updater._last_sent_time, 9),
                   round(updater.outstanding_tokens, 9))
    return elapsed, fingerprint


VARIANTS = (
    ("instrumented_disabled", DropTailQueue, OutOfBandFeedbackUpdater),
    ("probe_free", ProbeFreeQueue, ProbeFreeUpdater),
)


def run_overhead_bench(packets: int = 12000, repeats: int = 24) -> dict:
    """Paired interleaved comparison; see the module docstring."""
    times: dict[str, list[float]] = {name: [] for name, _, _ in VARIANTS}
    fingerprints: dict[str, tuple] = {}
    for round_index in range(repeats):
        # Alternate the order each round so slow drift (thermal, cache
        # pressure) cancels instead of biasing one variant.
        order = VARIANTS if round_index % 2 == 0 else VARIANTS[::-1]
        for name, queue_cls, updater_cls in order:
            sim, queue, updater, flow = _build(queue_cls, updater_cls)
            elapsed, fingerprint = _drive(sim, queue, updater, flow,
                                          packets)
            if round_index > 0:  # round 0 is JIT/cache warmup
                times[name].append(elapsed)
            fingerprints[name] = fingerprint
    if len(set(fingerprints.values())) != 1:
        raise AssertionError(
            f"probe-free reference diverged from the instrumented "
            f"datapath: {fingerprints}")
    # Per-round ratios pair measurements taken ~0.2 s apart, so slow
    # machine-speed drift divides out. The remaining noise is one-sided
    # (CPU-steal spikes only ever inflate a round), so take the lower
    # quartile: spikes land above it, while a real probe regression
    # shifts the whole distribution and still trips the ceiling.
    ratios = sorted(i / p for i, p in
                    zip(times["instrumented_disabled"],
                        times["probe_free"]))
    overhead = ratios[len(ratios) // 4]
    best = {name: min(samples) for name, samples in times.items()}
    return {
        "packets": packets,
        "repeats": repeats,
        "instrumented_disabled_best_s": best["instrumented_disabled"],
        "probe_free_best_s": best["probe_free"],
        "overhead_ratio": overhead,
        "ceiling": OVERHEAD_CEILING,
    }
