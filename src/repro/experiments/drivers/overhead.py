"""CPU-overhead driver (Fig. 21).

The paper measures the CPU utilization of two decade-old OpenWrt APs
running 1-5 concurrent Zhuge flows. We have no router hardware, so we
measure the wall-clock per-packet cost of the Fortune Teller + Feedback
Updater datapath and scale it to a router-class CPU budget: utilization
= (per-packet cost x packet rate x flows) / cpu_scale, where
``cpu_scale`` expresses how much slower a 2011 MIPS router core is than
this machine (the absolute numbers are indicative; the *shape* — linear
growth in concurrent flows, headroom at 5 flows — is the claim).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.feedback_updater import OutOfBandFeedbackUpdater
from repro.core.fortune_teller import FortuneTeller
from repro.metrics.hotpath import (HotpathCostReport,
                                   snapshot_fortune_teller,
                                   snapshot_updater)
from repro.net.packet import ACK_SIZE, FiveTuple, Packet, PacketKind
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom

# Packet rate of one 2 Mbps RTC flow (1200 B packets) + its ACK stream.
FLOW_PPS = 210
# cpu_scale = (router-core slowdown vs this machine) / (C-vs-Python
# speedup of the datapath). Both factors are order-of-magnitude
# estimates chosen with margin so the preserved claims — utilization
# grows linearly with flows and five flows fit the budget — hold on any
# reasonable host. Absolute levels are indicative only (DESIGN.md).
ROUTER_MODELS = (
    ("Netgear WNDR3800 (680 MHz MIPS)", 5.0),
    ("TP-Link TL-WDR4900 (800 MHz PPC)", 3.75),
)


@dataclass
class OverheadRow:
    router: str
    flows: int
    per_packet_us: float
    projected_cpu_utilization: float


def measure_per_packet_cost(packets: int = 20_000) -> float:
    """Wall-clock seconds per packet through the full Zhuge datapath."""
    sim = Simulator()
    queue = DropTailQueue(capacity_bytes=10_000_000)
    teller = FortuneTeller(sim, queue)
    updater = OutOfBandFeedbackUpdater(sim, teller,
                                       rng=DeterministicRandom(1))
    flow = FiveTuple("s", "c", 1, 2)
    sink = []

    start = time.perf_counter()
    t = 0.0
    for i in range(packets):
        data = Packet(flow, 1200, seq=i)
        queue.enqueue(data, t)
        updater.on_data_packet(data)
        queue.dequeue(t + 0.002)
        ack = Packet(flow.reversed(), ACK_SIZE, PacketKind.ACK, ack=i)
        updater.ack_delay(t + 0.004)
        sink.append(ack.pkt_id)
        t += 0.005
    elapsed = time.perf_counter() - start
    return elapsed / packets


def measure_component_costs(packets: int = 20_000) -> list[HotpathCostReport]:
    """Per-stage wall-clock cost of the datapath, with hot-path counters.

    Runs the same workload as :func:`measure_per_packet_cost` but times
    the two Zhuge stages separately — ``on_data_packet`` (Fortune Teller
    prediction + delta banking) and ``ack_delay`` (distribution sampling
    + token spending) — and attaches each component's
    :mod:`repro.metrics.hotpath` counter snapshot, so Fig. 21 can report
    where the per-packet budget actually goes.
    """
    sim = Simulator()
    queue = DropTailQueue(capacity_bytes=10_000_000)
    teller = FortuneTeller(sim, queue)
    updater = OutOfBandFeedbackUpdater(sim, teller,
                                       rng=DeterministicRandom(1))
    flow = FiveTuple("s", "c", 1, 2)

    t_data = 0.0
    t_ack = 0.0
    t = 0.0
    for i in range(packets):
        data = Packet(flow, 1200, seq=i)
        queue.enqueue(data, t)
        t0 = time.perf_counter()
        updater.on_data_packet(data)
        t_data += time.perf_counter() - t0
        queue.dequeue(t + 0.002)
        t0 = time.perf_counter()
        updater.ack_delay(t + 0.004)
        t_ack += time.perf_counter() - t0
        t += 0.005

    return [
        HotpathCostReport(
            stage="on_data_packet", calls=packets,
            seconds_per_call=t_data / packets,
            ops_per_sec=packets / t_data if t_data > 0 else float("inf"),
            stats=snapshot_fortune_teller(teller).as_dict()),
        HotpathCostReport(
            stage="ack_delay", calls=packets,
            seconds_per_call=t_ack / packets,
            ops_per_sec=packets / t_ack if t_ack > 0 else float("inf"),
            stats=snapshot_updater(updater).as_dict()),
    ]


def fig21_cpu_overhead(flow_counts=(1, 2, 3, 4, 5),
                       packets: int = 20_000) -> list[OverheadRow]:
    per_packet = measure_per_packet_cost(packets)
    rows = []
    for router, cpu_scale in ROUTER_MODELS:
        for flows in flow_counts:
            busy = per_packet * cpu_scale * FLOW_PPS * flows
            rows.append(OverheadRow(
                router=router, flows=flows,
                per_packet_us=per_packet * 1e6,
                projected_cpu_utilization=min(busy, 1.0),
            ))
    return rows
