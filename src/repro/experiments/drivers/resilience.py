"""Resilience driver: graceful degradation under injected faults.

Not a paper figure — the paper evaluates Zhuge on healthy links. This
driver answers the robustness question the deployment section raises:
when the wireless link blacks out and the AP's estimator state goes
stale (or is wiped by an AP reset), does the Zhuge AP degrade to
*no worse than* a passthrough AP, and how fast does the watchdog
demote/promote it?

Each cell runs one TCP flow through a blackout of configurable length
followed by an estimator reset at recovery, across four schemes:
passthrough (no AP mangling), FastAck, Zhuge with the health watchdog,
and Zhuge with the watchdog disabled (the ablation that shows what the
watchdog buys). Cells run through the campaign runner, so sweeps are
cached and parallelizable like every other figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.campaign import ScenarioSpec, TraceSpec, run_specs
from repro.faults.spec import FaultPlan, FaultSpec
from repro.metrics.stats import percentile

#: Blackouts start here — well past warmup, so the estimator window is
#: fully primed (worst case for stale predictions).
FAULT_START = 10.0
#: Fault-window metrics cover [start, start + length + RECOVERY_WINDOW]
#: so they include the recovery transient, not just the outage itself.
RECOVERY_WINDOW = 5.0

#: (row label, ap_mode, watchdog_enabled).
SCHEMES = (
    ("passthrough", "none", True),
    ("fastack", "fastack", True),
    ("zhuge", "zhuge", True),
    ("zhuge-nodog", "zhuge", False),
)


def blackout_plan(start: float, length: float, *, reset: bool = True,
                  watchdog: bool = True, seed: int = 1) -> FaultPlan:
    """Blackout of ``length`` seconds, then (optionally) an AP reset.

    The reset at recovery models the realistic failure: the client
    re-associates and the AP's per-flow estimator state is gone exactly
    when traffic resumes.
    """
    faults = [FaultSpec(kind="blackout", start=start, duration=length)]
    if reset:
        faults.append(FaultSpec(kind="ap_reset", start=start + length))
    return FaultPlan(faults=tuple(faults), seed=seed,
                     watchdog_enabled=watchdog)


@dataclass
class ResilienceRow:
    """One (scheme, blackout length) cell, aggregated over seeds."""

    scheme: str
    blackout_s: float
    steady_p50_ms: float     # whole measured run
    fault_p50_ms: float      # fault window + recovery only
    fault_p99_ms: float
    fault_samples: int
    demote_at: Optional[float] = None   # first watchdog demotion
    promote_at: Optional[float] = None  # first re-promotion after it


def resilience_specs(blackout_lengths: tuple[float, ...],
                     duration: float, seeds: tuple[int, ...],
                     protocol: str = "tcp", cca: str = "copa",
                     family: str = "W2") -> list[ScenarioSpec]:
    """The full sweep, one spec per (scheme, blackout length, seed)."""
    specs = []
    for _, ap_mode, watchdog in SCHEMES:
        for length in blackout_lengths:
            for seed in seeds:
                specs.append(ScenarioSpec(
                    trace=TraceSpec.for_family(family, duration=duration,
                                               seed=seed),
                    protocol=protocol, cca=cca, ap_mode=ap_mode,
                    duration=duration, seed=seed,
                    faults=blackout_plan(FAULT_START, length,
                                         watchdog=watchdog, seed=seed)))
    return specs


def _first_transition(transitions, state: str,
                      after: float = 0.0) -> Optional[float]:
    for when, to_state, _reason in transitions:
        if to_state == state and when >= after:
            return when
    return None


def fig_resilience(blackout_lengths: tuple[float, ...] = (0.5, 1.0, 2.0),
                   duration: float = 25.0,
                   seeds: tuple[int, ...] = (1,),
                   protocol: str = "tcp", cca: str = "copa",
                   jobs: int = 0, cache=None, timeout=None,
                   retries: int = 1) -> list[ResilienceRow]:
    """Run the sweep and aggregate per (scheme, blackout length)."""
    specs = resilience_specs(blackout_lengths, duration, seeds,
                             protocol=protocol, cca=cca)
    summaries = run_specs(specs, jobs=jobs, cache=cache,
                          timeout=timeout, retries=retries)

    rows = []
    cursor = 0
    for label, _ap_mode, _watchdog in SCHEMES:
        for length in blackout_lengths:
            chunk = summaries[cursor:cursor + len(seeds)]
            cursor += len(seeds)
            steady: list[float] = []
            window: list[float] = []
            demote_at = promote_at = None
            lo, hi = FAULT_START, FAULT_START + length + RECOVERY_WINDOW
            for summary in chunk:
                rtt = summary.rtt
                steady.extend(rtt.rtts)
                window.extend(v for t, v in zip(rtt.times, rtt.rtts)
                              if lo <= t <= hi)
                if demote_at is None:
                    demote_at = _first_transition(
                        summary.watchdog_transitions, "degraded")
                    if demote_at is not None:
                        promote_at = _first_transition(
                            summary.watchdog_transitions, "healthy",
                            after=demote_at)
            rows.append(ResilienceRow(
                scheme=label,
                blackout_s=length,
                steady_p50_ms=(percentile(steady, 50) * 1000
                               if steady else 0.0),
                fault_p50_ms=(percentile(window, 50) * 1000
                              if window else 0.0),
                fault_p99_ms=(percentile(window, 99) * 1000
                              if window else 0.0),
                fault_samples=len(window),
                demote_at=demote_at,
                promote_at=promote_at,
            ))
    return rows
