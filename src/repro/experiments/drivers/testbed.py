"""Testbed-scenario drivers (Fig. 18): scp / mcs / raw.

The paper's §7.5 testbed streams WebRTC video through an OpenWrt AP and
evaluates three scenarios; we reproduce them with the same scenario
drivers on the simulated AP:

* ``scp``  — a bulk transfer toggles on/off every 30 s,
* ``mcs``  — the link-layer modulation scheme is re-picked randomly
  every 30 s,
* ``raw``  — a crowded-office channel (trace family W2), no extra load.

Metrics: tail-RTT ratio, delayed-frame ratio, and the steady-state
bitrate (Fig. 18c shows Zhuge keeps the bitrate, so the improvement is
not bought with rate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.traces.synthetic import make_trace
from repro.traces.trace import BandwidthTrace

SCHEMES = (
    ("Gcc+FIFO", dict(ap_mode="none", queue_kind="fifo")),
    ("Gcc+CoDel", dict(ap_mode="none", queue_kind="codel")),
    ("Gcc+Zhuge", dict(ap_mode="zhuge", queue_kind="fifo")),
)


@dataclass
class TestbedRow:
    scenario: str
    scheme: str
    rtt_tail_ratio: float
    delayed_frame_ratio: float
    mean_bitrate_bps: float


def _scenario_config(scenario: str, duration: float, seed: int,
                     overrides: dict) -> ScenarioConfig:
    if scenario == "scp":
        trace = BandwidthTrace.constant(30e6, duration, name="steady30")
        return ScenarioConfig(trace=trace, protocol="rtp",
                              duration=duration, seed=seed,
                              competitors=1, competitor_period=15.0,
                              **overrides)
    if scenario == "mcs":
        trace = BandwidthTrace.constant(60e6, duration, name="steady60")
        return ScenarioConfig(trace=trace, protocol="rtp",
                              duration=duration, seed=seed,
                              mcs_switch_period=10.0, **overrides)
    if scenario == "raw":
        trace = make_trace("W2", duration=duration, seed=seed)
        return ScenarioConfig(trace=trace, protocol="rtp",
                              duration=duration, seed=seed, **overrides)
    raise ValueError(f"unknown testbed scenario {scenario!r}")


def fig18_testbed(scenarios=("scp", "mcs", "raw"), duration: float = 60.0,
                  seeds: tuple[int, ...] = (1, 2)) -> list[TestbedRow]:
    rows = []
    for scenario in scenarios:
        for scheme, overrides in SCHEMES:
            rtt_tails, delayed, bitrates = [], [], []
            for seed in seeds:
                config = _scenario_config(scenario, duration, seed,
                                          dict(overrides))
                result = run_scenario(config)
                rtt_tails.append(result.rtt.tail_ratio())
                delayed.append(result.frames.delayed_ratio())
                bitrates.append(result.flows[0].mean_bitrate_bps)
            count = len(seeds)
            rows.append(TestbedRow(
                scenario=scenario, scheme=scheme,
                rtt_tail_ratio=sum(rtt_tails) / count,
                delayed_frame_ratio=sum(delayed) / count,
                mean_bitrate_bps=sum(bitrates) / count,
            ))
    return rows
