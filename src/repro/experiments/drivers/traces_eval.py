"""Trace-driven evaluation drivers (Figs. 11, 12, 13, 22; Table 3).

One row per (trace, scheme): tail-latency ratio, delayed-frame ratio,
and low-frame-rate ratio, per the paper's §7.2 metrics.

Every sweep is expressed as a list of :class:`ScenarioSpec` cells and
executed through :func:`repro.campaign.run_specs`, so callers can fan a
whole figure out over worker processes (``jobs=4``) and reuse cached
cells (``cache=...``) — the aggregated rows are bit-identical to a
serial in-process run for fixed seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import ScenarioSpec, TraceSpec, run_specs
from repro.metrics.stats import ccdf_points, tail_fraction

RTP_SCHEMES = (
    ("Gcc+FIFO", dict(protocol="rtp", cca="gcc", ap_mode="none",
                      queue_kind="fifo")),
    ("Gcc+CoDel", dict(protocol="rtp", cca="gcc", ap_mode="none",
                       queue_kind="codel")),
    ("Gcc+Zhuge", dict(protocol="rtp", cca="gcc", ap_mode="zhuge",
                       queue_kind="fifo")),
)

TCP_SCHEMES = (
    ("Copa", dict(protocol="tcp", cca="copa", ap_mode="none")),
    ("Copa+FastAck", dict(protocol="tcp", cca="copa", ap_mode="fastack")),
    ("ABC", dict(protocol="tcp", cca="abc", ap_mode="abc")),
    ("Copa+Zhuge", dict(protocol="tcp", cca="copa", ap_mode="zhuge")),
)

#: name -> overrides for every scheme above (CLI campaign grids use this).
SCHEMES_BY_NAME = {name: overrides
                   for name, overrides in RTP_SCHEMES + TCP_SCHEMES}


@dataclass
class TraceRow:
    """One (trace, scheme) evaluation result."""

    trace: str
    scheme: str
    rtt_tail_ratio: float       # P(network RTT > 200 ms)
    delayed_frame_ratio: float  # P(frame delay > 400 ms)
    low_fps_ratio: float        # P(per-second frame rate < 10 fps)
    mean_bitrate_bps: float
    rtt_samples: list[float] | None = None
    frame_delay_samples: list[float] | None = None
    fps_samples: list[float] | None = None


def scheme_specs(trace_name: str, overrides: dict, duration: float,
                 seeds: tuple[int, ...]) -> list[ScenarioSpec]:
    """One spec per seed for a (trace, scheme) row."""
    return [ScenarioSpec(trace=TraceSpec.for_family(trace_name,
                                                    duration=duration,
                                                    seed=seed),
                         duration=duration, seed=seed, **overrides)
            for seed in seeds]


def row_from_summaries(trace_name: str, scheme_name: str, overrides: dict,
                       summaries, duration: float,
                       keep_samples: bool = False) -> TraceRow:
    """Aggregate one row from its per-seed summaries (seed order)."""
    rtts: list[float] = []
    delays: list[float] = []
    fps: list[float] = []
    bitrates: list[float] = []
    for summary in summaries:
        warmup = summary.spec.warmup
        rtts.extend(summary.rtt.rtts)
        delays.extend(summary.frames.frame_delays)
        fps.extend(summary.frames.per_second_fps(
            duration - warmup, start=warmup))
        if overrides.get("protocol") == "tcp":
            # A window CCA's cwnd/srtt estimate is not a bitrate;
            # report delivered goodput instead.
            bitrates.append(summary.flows[0].goodput_bps)
        else:
            bitrates.append(summary.flows[0].mean_bitrate_bps)

    return TraceRow(
        trace=trace_name,
        scheme=scheme_name,
        rtt_tail_ratio=tail_fraction(rtts, 0.200),
        delayed_frame_ratio=tail_fraction(delays, 0.400),
        low_fps_ratio=tail_fraction(fps, 10.0, above=False),
        mean_bitrate_bps=sum(bitrates) / len(bitrates),
        rtt_samples=rtts if keep_samples else None,
        frame_delay_samples=delays if keep_samples else None,
        fps_samples=fps if keep_samples else None,
    )


def evaluate_scheme(trace_name: str, scheme_name: str, overrides: dict,
                    duration: float = 60.0, seeds: tuple[int, ...] = (1, 2),
                    keep_samples: bool = False, jobs: int = 0,
                    cache=None) -> TraceRow:
    """Run one scheme over one trace family, averaged over seeds."""
    specs = scheme_specs(trace_name, overrides, duration, seeds)
    summaries = run_specs(specs, jobs=jobs, cache=cache)
    return row_from_summaries(trace_name, scheme_name, overrides,
                              summaries, duration, keep_samples)


def _evaluate_grid(grid, duration: float, seeds: tuple[int, ...],
                   jobs: int, cache,
                   keep_samples: bool = False) -> list[TraceRow]:
    """Run every (trace, scheme) pair of ``grid`` as one campaign."""
    specs: list[ScenarioSpec] = []
    for trace_name, _, overrides in grid:
        specs.extend(scheme_specs(trace_name, overrides, duration, seeds))
    summaries = run_specs(specs, jobs=jobs, cache=cache)
    rows = []
    for position, (trace_name, scheme_name, overrides) in enumerate(grid):
        chunk = summaries[position * len(seeds):(position + 1) * len(seeds)]
        rows.append(row_from_summaries(trace_name, scheme_name, overrides,
                                       chunk, duration, keep_samples))
    return rows


def fig11_rtp_traces(traces=("W1", "W2", "C1", "C2", "C3"),
                     duration: float = 60.0,
                     seeds: tuple[int, ...] = (1, 2),
                     jobs: int = 0, cache=None) -> list[TraceRow]:
    """Fig. 11: RTP/RTCP schemes over the five traces."""
    grid = [(trace_name, scheme_name, overrides)
            for trace_name in traces
            for scheme_name, overrides in RTP_SCHEMES]
    return _evaluate_grid(grid, duration, seeds, jobs, cache)


def fig12_tcp_traces(traces=("W1", "W2", "C1", "C2", "C3"),
                     duration: float = 60.0,
                     seeds: tuple[int, ...] = (1, 2),
                     jobs: int = 0, cache=None) -> list[TraceRow]:
    """Fig. 12: TCP schemes over the five traces."""
    grid = [(trace_name, scheme_name, overrides)
            for trace_name in traces
            for scheme_name, overrides in TCP_SCHEMES]
    return _evaluate_grid(grid, duration, seeds, jobs, cache)


def fig13_distributions(trace_name: str = "W1", duration: float = 60.0,
                        seeds: tuple[int, ...] = (1, 2),
                        jobs: int = 0, cache=None) -> dict:
    """Fig. 13: 1-CDF curves (RTT, frame delay, frame rate) per scheme."""
    grid = [(trace_name, scheme_name, overrides)
            for scheme_name, overrides in RTP_SCHEMES]
    rows = _evaluate_grid(grid, duration, seeds, jobs, cache,
                          keep_samples=True)
    curves: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for row in rows:
        curves[row.scheme] = {
            "rtt_ccdf": ccdf_points(row.rtt_samples, points=40),
            "frame_delay_ccdf": ccdf_points(row.frame_delay_samples,
                                            points=40),
            "fps_cdf": ccdf_points([-f for f in row.fps_samples], points=40),
        }
    return curves


def fig22_framerate(duration: float = 60.0,
                    seeds: tuple[int, ...] = (1, 2),
                    jobs: int = 0, cache=None) -> list[TraceRow]:
    """Fig. 22: low-frame-rate ratios over traces for RTP and TCP."""
    grid = [(trace_name, scheme_name, overrides)
            for trace_name in ("W1", "W2", "C1", "C2", "C3")
            for scheme_name, overrides in RTP_SCHEMES + TCP_SCHEMES]
    return _evaluate_grid(grid, duration, seeds, jobs, cache)


def table3_abc_traces(duration: float = 60.0,
                      seeds: tuple[int, ...] = (1, 2),
                      jobs: int = 0, cache=None) -> list[TraceRow]:
    """Table 3: Copa / ABC / Copa+Zhuge on the ABC-legacy trace."""
    grid = [("ABC-legacy", name, overrides)
            for name, overrides in TCP_SCHEMES
            if name in ("Copa", "ABC", "Copa+Zhuge")]
    return _evaluate_grid(grid, duration, seeds, jobs, cache)
