"""Trace-driven evaluation drivers (Figs. 11, 12, 13, 22; Table 3).

One row per (trace, scheme): tail-latency ratio, delayed-frame ratio,
and low-frame-rate ratio, per the paper's §7.2 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.stats import ccdf_points
from repro.traces.synthetic import abc_legacy_trace, make_trace

RTP_SCHEMES = (
    ("Gcc+FIFO", dict(protocol="rtp", cca="gcc", ap_mode="none",
                      queue_kind="fifo")),
    ("Gcc+CoDel", dict(protocol="rtp", cca="gcc", ap_mode="none",
                       queue_kind="codel")),
    ("Gcc+Zhuge", dict(protocol="rtp", cca="gcc", ap_mode="zhuge",
                       queue_kind="fifo")),
)

TCP_SCHEMES = (
    ("Copa", dict(protocol="tcp", cca="copa", ap_mode="none")),
    ("Copa+FastAck", dict(protocol="tcp", cca="copa", ap_mode="fastack")),
    ("ABC", dict(protocol="tcp", cca="abc", ap_mode="abc")),
    ("Copa+Zhuge", dict(protocol="tcp", cca="copa", ap_mode="zhuge")),
)


@dataclass
class TraceRow:
    """One (trace, scheme) evaluation result."""

    trace: str
    scheme: str
    rtt_tail_ratio: float       # P(network RTT > 200 ms)
    delayed_frame_ratio: float  # P(frame delay > 400 ms)
    low_fps_ratio: float        # P(per-second frame rate < 10 fps)
    mean_bitrate_bps: float
    rtt_samples: list[float] | None = None
    frame_delay_samples: list[float] | None = None
    fps_samples: list[float] | None = None


def evaluate_scheme(trace_name: str, scheme_name: str, overrides: dict,
                    duration: float = 60.0, seeds: tuple[int, ...] = (1, 2),
                    keep_samples: bool = False) -> TraceRow:
    """Run one scheme over one trace family, averaged over seeds."""
    rtts: list[float] = []
    delays: list[float] = []
    fps: list[float] = []
    bitrates: list[float] = []
    for seed in seeds:
        if trace_name == "ABC-legacy":
            trace = abc_legacy_trace(duration=duration, seed=seed)
        else:
            trace = make_trace(trace_name, duration=duration, seed=seed)
        config = ScenarioConfig(trace=trace, duration=duration, seed=seed,
                                **overrides)
        result = run_scenario(config)
        rtts.extend(result.rtt.rtts)
        delays.extend(result.frames.frame_delays)
        fps.extend(result.frames.per_second_fps(
            duration - config.warmup, start=config.warmup))
        if overrides.get("protocol") == "tcp":
            # A window CCA's cwnd/srtt estimate is not a bitrate;
            # report delivered goodput instead.
            bitrates.append(result.flows[0].goodput_bps)
        else:
            bitrates.append(result.flows[0].mean_bitrate_bps)

    from repro.metrics.stats import tail_fraction
    return TraceRow(
        trace=trace_name,
        scheme=scheme_name,
        rtt_tail_ratio=tail_fraction(rtts, 0.200),
        delayed_frame_ratio=tail_fraction(delays, 0.400),
        low_fps_ratio=tail_fraction(fps, 10.0, above=False),
        mean_bitrate_bps=sum(bitrates) / len(bitrates),
        rtt_samples=rtts if keep_samples else None,
        frame_delay_samples=delays if keep_samples else None,
        fps_samples=fps if keep_samples else None,
    )


def fig11_rtp_traces(traces=("W1", "W2", "C1", "C2", "C3"),
                     duration: float = 60.0,
                     seeds: tuple[int, ...] = (1, 2)) -> list[TraceRow]:
    """Fig. 11: RTP/RTCP schemes over the five traces."""
    rows = []
    for trace_name in traces:
        for scheme_name, overrides in RTP_SCHEMES:
            rows.append(evaluate_scheme(trace_name, scheme_name, overrides,
                                        duration, seeds))
    return rows


def fig12_tcp_traces(traces=("W1", "W2", "C1", "C2", "C3"),
                     duration: float = 60.0,
                     seeds: tuple[int, ...] = (1, 2)) -> list[TraceRow]:
    """Fig. 12: TCP schemes over the five traces."""
    rows = []
    for trace_name in traces:
        for scheme_name, overrides in TCP_SCHEMES:
            rows.append(evaluate_scheme(trace_name, scheme_name, overrides,
                                        duration, seeds))
    return rows


def fig13_distributions(trace_name: str = "W1", duration: float = 60.0,
                        seeds: tuple[int, ...] = (1, 2)) -> dict:
    """Fig. 13: 1-CDF curves (RTT, frame delay, frame rate) per scheme."""
    curves: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for scheme_name, overrides in RTP_SCHEMES:
        row = evaluate_scheme(trace_name, scheme_name, overrides,
                              duration, seeds, keep_samples=True)
        curves[scheme_name] = {
            "rtt_ccdf": ccdf_points(row.rtt_samples, points=40),
            "frame_delay_ccdf": ccdf_points(row.frame_delay_samples,
                                            points=40),
            "fps_cdf": ccdf_points([-f for f in row.fps_samples], points=40),
        }
    return curves


def fig22_framerate(duration: float = 60.0,
                    seeds: tuple[int, ...] = (1, 2)) -> list[TraceRow]:
    """Fig. 22: low-frame-rate ratios over traces for RTP and TCP."""
    rows = []
    for trace_name in ("W1", "W2", "C1", "C2", "C3"):
        for scheme_name, overrides in RTP_SCHEMES + TCP_SCHEMES:
            rows.append(evaluate_scheme(trace_name, scheme_name, overrides,
                                        duration, seeds))
    return rows


def table3_abc_traces(duration: float = 60.0,
                      seeds: tuple[int, ...] = (1, 2)) -> list[TraceRow]:
    """Table 3: Copa / ABC / Copa+Zhuge on the ABC-legacy trace."""
    schemes = [s for s in TCP_SCHEMES if s[0] in ("Copa", "ABC",
                                                  "Copa+Zhuge")]
    return [evaluate_scheme("ABC-legacy", name, overrides, duration, seeds)
            for name, overrides in schemes]
