"""First-mile Zhuge (§6 discussion, implemented as an extension).

For peer-to-peer RTC (video conferencing upload), the wireless hop is
the *first* mile: the queue builds in the client's own network stack.
The paper notes Zhuge's mechanisms apply there too, by integrating with
the sender's stack instead of an AP.

Topology (:func:`repro.topology.spec.first_mile_topology` — a genuine
two-AP graph since the :mod:`repro.topology` layer)::

    station[encoder + CCA (+ local fortune teller)]
        --uplink wireless (bottleneck)--> AP-A --WAN--> AP-B
        --downlink wireless--> peer[receiver]
    station <---- AP-A wireless <-- WAN <-- AP-B wireless <---- peer

With ``client_zhuge=True``, a :class:`LocalFortuneLoop` watches the
station's own uplink queue and synthesizes TWCC feedback from predicted
delays directly into the CCA — the shortest control loop possible (zero
network traversal). The baseline waits for the peer's real TWCC, which
now crosses two wireless segments and the WAN on the way back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cca.base import FeedbackPacketReport
from repro.core.fortune_teller import FortuneTeller
from repro.metrics.recorder import FrameRecorder, RttRecorder
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator, Timer
from repro.topology.builder import TopologyBuilder
from repro.topology.spec import first_mile_topology
from repro.traces.trace import BandwidthTrace
from repro.transport.rtp import RtpSender


@dataclass
class FirstMileConfig:
    """Uplink-video scenario parameters."""

    trace: BandwidthTrace
    client_zhuge: bool = False
    duration: float = 40.0
    seed: int = 1
    wan_delay: float = 0.020
    fps: float = 24.0
    initial_bps: float = 1e6
    max_bps: float = 4e6
    cca: str = "gcc"
    warmup: float = 5.0


@dataclass
class FirstMileResult:
    config: FirstMileConfig
    rtt: RttRecorder = field(default_factory=RttRecorder)
    frames: FrameRecorder = field(default_factory=FrameRecorder)
    mean_bitrate_bps: float = 0.0


class LocalFortuneLoop:
    """Client-side fortune feedback: predictions -> CCA, no network.

    Periodically converts the Fortune Teller's per-packet predicted
    delays for recently sent packets into synthetic feedback reports and
    feeds them to the sender's CCA. The real server feedback is
    suppressed for rate control (it still drives loss recovery).
    """

    def __init__(self, sim: Simulator, sender: RtpSender,
                 fortune_teller: FortuneTeller,
                 interval: float = 0.040):
        self.sim = sim
        self.sender = sender
        self.fortune_teller = fortune_teller
        self._pending: list[tuple[int, float, int, float]] = []
        # (twcc_seq, send_time, size, predicted_arrival)
        self.synthetic_feedbacks = 0
        self._timer = Timer(sim, interval, self._tick)

    def on_packet_sent(self, packet: Packet) -> None:
        prediction = self.fortune_teller.observe_arrival(packet)
        self._pending.append((packet.headers["twcc_seq"], self.sim.now,
                              packet.size, self.sim.now + prediction.total))

    def _tick(self) -> None:
        if not self._pending:
            return
        reports = [FeedbackPacketReport(seq, size, sent, predicted)
                   for seq, sent, size, predicted in self._pending]
        self._pending.clear()
        self.synthetic_feedbacks += 1
        self.sender.cca.on_feedback(self.sim.now, reports)
        self.sender.rate_recorder.record(self.sim.now,
                                         self.sender.cca.target_bps)

    def stop(self) -> None:
        self._timer.stop()


def run_first_mile(config: FirstMileConfig) -> FirstMileResult:
    """Simulate uplink video with or without client-side Zhuge.

    Materializes :func:`first_mile_topology` — station, two APs, peer —
    through the generic :class:`TopologyBuilder`, then grafts the
    client-side fortune loop onto the station's endpoint: predictions
    from the station's own uplink queue replace the peer's TWCC for
    rate control (real NACK-driven loss recovery stays on).
    """
    from repro.experiments.scenario import ScenarioConfig
    scenario = ScenarioConfig(
        trace=config.trace, protocol="rtp", cca=config.cca,
        duration=config.duration, seed=config.seed,
        wan_delay=config.wan_delay, fps=config.fps,
        initial_bps=config.initial_bps, max_bps=config.max_bps,
        warmup=config.warmup,
        topology=first_mile_topology(wan_delay=config.wan_delay,
                                     duration=config.duration))
    builder = TopologyBuilder(scenario)
    fr = builder._rtc[0]
    sender = fr.sender

    local_loop = None
    if config.client_zhuge:
        teller = FortuneTeller(builder.sim,
                               builder.edges["a-up"].queue)
        local_loop = LocalFortuneLoop(builder.sim, sender, teller)
        transmit = sender.transmit

        def client_transmit(packet: Packet) -> None:
            if packet.kind == PacketKind.DATA:
                local_loop.on_packet_sent(packet)
            transmit(packet)

        sender.transmit = client_transmit

        def client_feedback(packet: Packet) -> None:
            if packet.kind == PacketKind.RTCP_OTHER:
                sender.on_nack(packet)
            # Peer TWCC is ignored for rate control: the local
            # predictions already covered those packets.

        builder.handlers("station")[fr.flow.reversed()] = client_feedback

    scenario_result = builder.run()
    flow = scenario_result.flows[0]
    if local_loop is not None:
        local_loop.stop()
    return FirstMileResult(config=config, rtt=flow.rtt,
                           frames=flow.frames,
                           mean_bitrate_bps=flow.mean_bitrate_bps)
