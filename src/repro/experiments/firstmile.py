"""First-mile Zhuge (§6 discussion, implemented as an extension).

For peer-to-peer RTC (video conferencing upload), the wireless hop is
the *first* mile: the queue builds in the client's own network stack.
The paper notes Zhuge's mechanisms apply there too, by integrating with
the sender's stack instead of an AP.

Topology::

    client[encoder + CCA (+ local fortune teller)]
        --uplink wireless (bottleneck)--> AP --WAN--> server[receiver]
    client <------------- WAN + downlink feedback ------------- server

With ``client_zhuge=True``, a :class:`LocalFortuneLoop` watches the
client's own uplink queue and synthesizes TWCC feedback from predicted
delays directly into the CCA — the shortest control loop possible (zero
network traversal). The baseline waits for the server's real TWCC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.app.video import RtpVideoApp, VideoEncoder
from repro.cca import make_rate_cca
from repro.cca.base import FeedbackPacketReport
from repro.core.fortune_teller import FortuneTeller
from repro.metrics.recorder import FrameRecorder, RttRecorder
from repro.net.link import WiredLink
from repro.net.packet import FiveTuple, Packet, PacketKind
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator, Timer
from repro.sim.random import DeterministicRandom
from repro.traces.trace import BandwidthTrace
from repro.transport.rtp import RtpReceiver, RtpSender
from repro.wireless.channel import WirelessChannel
from repro.wireless.link import WirelessLink


@dataclass
class FirstMileConfig:
    """Uplink-video scenario parameters."""

    trace: BandwidthTrace
    client_zhuge: bool = False
    duration: float = 40.0
    seed: int = 1
    wan_delay: float = 0.020
    fps: float = 24.0
    initial_bps: float = 1e6
    max_bps: float = 4e6
    cca: str = "gcc"
    warmup: float = 5.0


@dataclass
class FirstMileResult:
    config: FirstMileConfig
    rtt: RttRecorder = field(default_factory=RttRecorder)
    frames: FrameRecorder = field(default_factory=FrameRecorder)
    mean_bitrate_bps: float = 0.0


class LocalFortuneLoop:
    """Client-side fortune feedback: predictions -> CCA, no network.

    Periodically converts the Fortune Teller's per-packet predicted
    delays for recently sent packets into synthetic feedback reports and
    feeds them to the sender's CCA. The real server feedback is
    suppressed for rate control (it still drives loss recovery).
    """

    def __init__(self, sim: Simulator, sender: RtpSender,
                 fortune_teller: FortuneTeller,
                 interval: float = 0.040):
        self.sim = sim
        self.sender = sender
        self.fortune_teller = fortune_teller
        self._pending: list[tuple[int, float, int, float]] = []
        # (twcc_seq, send_time, size, predicted_arrival)
        self.synthetic_feedbacks = 0
        self._timer = Timer(sim, interval, self._tick)

    def on_packet_sent(self, packet: Packet) -> None:
        prediction = self.fortune_teller.observe_arrival(packet)
        self._pending.append((packet.headers["twcc_seq"], self.sim.now,
                              packet.size, self.sim.now + prediction.total))

    def _tick(self) -> None:
        if not self._pending:
            return
        reports = [FeedbackPacketReport(seq, size, sent, predicted)
                   for seq, sent, size, predicted in self._pending]
        self._pending.clear()
        self.synthetic_feedbacks += 1
        self.sender.cca.on_feedback(self.sim.now, reports)
        self.sender.rate_recorder.record(self.sim.now,
                                         self.sender.cca.target_bps)

    def stop(self) -> None:
        self._timer.stop()


def run_first_mile(config: FirstMileConfig) -> FirstMileResult:
    """Simulate uplink video with or without client-side Zhuge."""
    sim = Simulator()
    rng = DeterministicRandom(config.seed)
    flow = FiveTuple("client", "server", 5000, 6000, "udp")

    uplink_queue = DropTailQueue(capacity_bytes=375_000, name="client-up")
    uplink = WirelessLink(sim, WirelessChannel(config.trace), uplink_queue,
                          name="first-mile")
    wan = WiredLink(sim, 1e9, config.wan_delay, name="wan")
    feedback_path = WiredLink(sim, None, config.wan_delay, name="wan-back")

    cca = make_rate_cca(config.cca, initial_bps=config.initial_bps,
                        max_bps=config.max_bps)
    sender = RtpSender(sim, flow, cca)
    receiver = RtpReceiver(sim, flow)
    encoder = VideoEncoder(fps=config.fps, rng=rng.fork("enc"))
    app = RtpVideoApp(sim, sender, receiver, encoder)

    result = FirstMileResult(config=config)
    teller = FortuneTeller(sim, uplink_queue)
    local_loop = (LocalFortuneLoop(sim, sender, teller)
                  if config.client_zhuge else None)

    def client_transmit(packet: Packet) -> None:
        if local_loop is not None and packet.kind == PacketKind.DATA:
            local_loop.on_packet_sent(packet)
        uplink.send(packet)

    sender.transmit = client_transmit
    uplink.deliver = wan.send

    def server_receive(packet: Packet) -> None:
        if packet.kind == PacketKind.DATA:
            one_way = sim.now - packet.sent_at
            result.rtt.record(sim.now,
                              max(0.0, one_way) + config.wan_delay)
        receiver.on_data(packet)

    wan.deliver = server_receive
    receiver.transmit = feedback_path.send

    def client_feedback(packet: Packet) -> None:
        if packet.kind == PacketKind.RTCP_OTHER:
            sender.on_nack(packet)
        elif local_loop is None:
            sender.on_feedback(packet)
        # With the local loop active, server TWCC is ignored for rate
        # control (the local predictions already covered those packets).

    feedback_path.deliver = client_feedback

    sim.run(until=config.duration)
    for t, d in zip(app.frame_recorder.frame_times,
                    app.frame_recorder.frame_delays):
        if t >= config.warmup:
            result.frames.record(t, d)
    filtered = RttRecorder()
    for t, r in zip(result.rtt.times, result.rtt.rtts):
        if t >= config.warmup:
            filtered.record(t, r)
    result.rtt = filtered
    result.mean_bitrate_bps = sender.rate_recorder.mean_rate(
        start=config.warmup)
    if local_loop is not None:
        local_loop.stop()
    app.stop()
    return result
