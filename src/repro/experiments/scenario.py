"""Scenario adapter: legacy configs over the declarative topology layer.

One :class:`ScenarioConfig` describes a full experiment: protocol stack
(RTP/GCC or TCP/{Copa,BBR,CUBIC,ABC}), AP mode (plain, Zhuge, FastAck,
ABC router), queue discipline, bandwidth trace, competitors, and
interferers. :func:`run_scenario` builds the topology, runs it, and
returns the recorders every figure reads.

Since the :mod:`repro.topology` refactor this module is a thin adapter:
a config without an explicit ``topology`` is converted into the
canonical single-AP :class:`~repro.topology.spec.TopologySpec` (paper
Fig. 1)::

    sender --WAN down--> [AP: Zhuge] --downlink queue--> wireless --> client
    sender <--WAN up---- [AP: Zhuge] <---uplink wireless (queue)--- client

and materialized by :class:`~repro.topology.builder.TopologyBuilder` —
the same engine that runs multi-AP graphs. The historical
``_ScenarioBuilder`` name is the builder itself; result types and the
warmup/goodput helpers re-export from :mod:`repro.topology.builder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.control.spec import ControlSpec
from repro.faults.spec import FaultPlan
from repro.obs.session import TraceConfig
from repro.topology.builder import (FlowResult, ScenarioResult,
                                    TopologyBuilder, _BulkFlowAdapter,
                                    _filtered_frames, _filtered_rtt,
                                    _flow_goodput)
from repro.topology.spec import TopologySpec, single_ap_topology
from repro.traces.trace import BandwidthTrace

__all__ = [
    "ScenarioConfig", "FlowResult", "ScenarioResult", "run_scenario",
]


@dataclass
class ScenarioConfig:
    """Everything one experiment run needs."""

    trace: BandwidthTrace
    protocol: str = "rtp"          # "rtp" | "tcp" | "quic"
    cca: str = "gcc"               # rtp: "gcc"; tcp: copa/bbr/cubic/abc
    ap_mode: str = "none"          # none | zhuge | fastack | abc
    queue_kind: str = "fifo"       # fifo | codel | fq_codel
    duration: float = 60.0
    seed: int = 1
    wan_delay: float = 0.020       # one-way WAN latency (sender <-> AP)
    uplink_scale: float = 0.5      # uplink wireless capacity vs trace
    queue_capacity: int = 375_000  # ~1 Mbit of buffer (bufferbloat-ish)
    fps: float = 24.0
    initial_bps: float = 1e6
    max_bps: float = 4e6   # encoder cap (paper: ~2 Mbps avg video)
    competitors: int = 0           # CUBIC bulk flows sharing the AP queue
    competitor_period: Optional[float] = None  # scp on/off period (§7.5)
    interferers: int = 0           # stations on other APs, same channel
    mcs_switch_period: Optional[float] = None  # §7.5 `mcs` scenario
    record_predictions: bool = False
    app: str = "video"             # "video" | "bulk" (Fig. 4 CCA study)
    paced_sender: bool = False     # spread frame packets (burstiness ablation)
    link_kind: str = "wifi"        # "wifi" (AMPDU bursts) | "cellular" (TTI slots)
    rtc_flows: int = 1             # fairness experiments use 2
    zhuge_flow_mask: Optional[tuple[bool, ...]] = None  # which RTC flows get Zhuge
    warmup: float = 5.0            # metrics ignore the first seconds
    trace_config: Optional[TraceConfig] = None  # event tracing (repro.obs)
    faults: Optional[FaultPlan] = None  # fault injection (repro.faults)
    #: Explicit experiment graph (repro.topology). ``None`` — the legacy
    #: default — means the canonical single-AP topology derived from the
    #: fields above; a multi-AP spec takes over nodes/edges/flows while
    #: the scenario fields keep supplying protocol, trace, and timing
    #: defaults.
    topology: Optional[TopologySpec] = None
    #: Adaptive control plane (repro.control). ``None`` — the legacy
    #: default — runs the static configuration; a spec attaches a
    #: per-AP :class:`~repro.control.controller.ZhugeController` and,
    #: optionally, the fleet :class:`~repro.control.steering.SteeringDaemon`.
    control: Optional[ControlSpec] = None

    def canonical_topology(self) -> TopologySpec:
        """The graph this config runs on (explicit or derived)."""
        return self.topology or single_ap_topology(self)


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build the topology for ``config``, simulate, and collect results."""
    builder = _ScenarioBuilder(config)
    return builder.run()


#: The scenario builder *is* the topology builder; the historical name
#: stays importable for tests and tools that reach into builder state.
_ScenarioBuilder = TopologyBuilder
