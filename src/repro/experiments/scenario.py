"""Scenario builder: the sender–WAN–AP–wireless–client pipeline.

One :class:`ScenarioConfig` describes a full experiment: protocol stack
(RTP/GCC or TCP/{Copa,BBR,CUBIC,ABC}), AP mode (plain, Zhuge, FastAck,
ABC router), queue discipline, bandwidth trace, competitors, and
interferers. :func:`run_scenario` builds the topology, runs it, and
returns the recorders every figure reads.

Topology (paper Fig. 1)::

    sender --WAN down--> [AP: Zhuge] --downlink queue--> wireless --> client
    sender <--WAN up---- [AP: Zhuge] <---uplink wireless (queue)--- client
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.aqm import make_queue
from repro.app.bulk import BulkSenderApp, PeriodicBulkApp
from repro.app.video import RtpVideoApp, TcpVideoApp, VideoEncoder
from repro.baselines.fastack import FastAckProxy
from repro.baselines.passthrough import PassthroughAP
from repro.cca import make_rate_cca, make_window_cca
from repro.cca.abc import AbcRouter
from repro.core.feedback_updater import FeedbackKind
from repro.core.zhuge_ap import ZhugeAP
from repro.faults.spec import FaultPlan
from repro.metrics.recorder import FrameRecorder, RttRecorder
from repro.net.link import WiredLink
from repro.net.packet import FiveTuple, Packet, PacketKind
from repro.net.queue import DropTailQueue
from repro.obs.session import TraceConfig, TraceSession
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom
from repro.traces.trace import BandwidthTrace
from repro.transport.rtp import RtpReceiver, RtpSender
from repro.transport.tcp import TcpReceiver, TcpSender
from repro.wireless.channel import WirelessChannel
from repro.wireless.interference import InterferenceModel
from repro.wireless.cellular import CellularLink
from repro.wireless.link import WirelessLink
from repro.wireless.mcs import McsController


@dataclass
class ScenarioConfig:
    """Everything one experiment run needs."""

    trace: BandwidthTrace
    protocol: str = "rtp"          # "rtp" | "tcp" | "quic"
    cca: str = "gcc"               # rtp: "gcc"; tcp: copa/bbr/cubic/abc
    ap_mode: str = "none"          # none | zhuge | fastack | abc
    queue_kind: str = "fifo"       # fifo | codel | fq_codel
    duration: float = 60.0
    seed: int = 1
    wan_delay: float = 0.020       # one-way WAN latency (sender <-> AP)
    uplink_scale: float = 0.5      # uplink wireless capacity vs trace
    queue_capacity: int = 375_000  # ~1 Mbit of buffer (bufferbloat-ish)
    fps: float = 24.0
    initial_bps: float = 1e6
    max_bps: float = 4e6   # encoder cap (paper: ~2 Mbps avg video)
    competitors: int = 0           # CUBIC bulk flows sharing the AP queue
    competitor_period: Optional[float] = None  # scp on/off period (§7.5)
    interferers: int = 0           # stations on other APs, same channel
    mcs_switch_period: Optional[float] = None  # §7.5 `mcs` scenario
    record_predictions: bool = False
    app: str = "video"             # "video" | "bulk" (Fig. 4 CCA study)
    paced_sender: bool = False     # spread frame packets (burstiness ablation)
    link_kind: str = "wifi"        # "wifi" (AMPDU bursts) | "cellular" (TTI slots)
    rtc_flows: int = 1             # fairness experiments use 2
    zhuge_flow_mask: Optional[tuple[bool, ...]] = None  # which RTC flows get Zhuge
    warmup: float = 5.0            # metrics ignore the first seconds
    trace_config: Optional[TraceConfig] = None  # event tracing (repro.obs)
    faults: Optional[FaultPlan] = None  # fault injection (repro.faults)


@dataclass
class FlowResult:
    """Per-RTC-flow recorders.

    ``rtt`` is the *network-layer* RTT of data packets (downlink delivery
    time minus send time, plus the stable return-path latency) measured
    at the client side of the wireless hop — the paper's §7.2 metric,
    independent of any feedback manipulation. ``cca_rtt`` is what the
    sender's CCA perceives through its feedback stream (with Zhuge these
    differ by design: the perceived signal is shifted earlier).
    """

    rtt: RttRecorder
    frames: FrameRecorder
    cca_rtt: RttRecorder = field(default_factory=RttRecorder)
    goodput_bps: float = 0.0
    mean_bitrate_bps: float = 0.0


@dataclass
class ScenarioResult:
    """Everything the figures read after a run."""

    config: ScenarioConfig
    flows: list[FlowResult]
    prediction_pairs: list[tuple[float, float]] = field(default_factory=list)
    events_processed: int = 0
    ap_packets: int = 0
    #: Live tracing state when ``config.trace_config`` was set. Holds
    #: the collected events and the prediction auditor; never serialized
    #: into campaign summaries.
    trace_session: Optional[TraceSession] = None
    #: (time, kind, phase) of every executed fault phase, in order.
    fault_log: list = field(default_factory=list)
    #: (time, state, reason) of every AP watchdog transition, in order.
    watchdog_transitions: list = field(default_factory=list)

    @property
    def rtt(self) -> RttRecorder:
        return self.flows[0].rtt

    @property
    def frames(self) -> FrameRecorder:
        return self.flows[0].frames

    def measured_duration(self) -> float:
        return self.config.duration - self.config.warmup


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build the topology for ``config``, simulate, and collect results."""
    builder = _ScenarioBuilder(config)
    return builder.run()


class _ScenarioBuilder:
    """Constructs and runs one scenario; internal to :func:`run_scenario`."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self.sim = Simulator()
        self.rng = DeterministicRandom(config.seed)
        self._build_links()
        self._build_ap()
        self._build_rtc_flows()
        self._build_competitors()
        self.trace_session: Optional[TraceSession] = None
        if config.trace_config is not None:
            self._attach_tracing(config.trace_config)
        self.fault_injector = None
        if config.faults is not None and config.faults.faults:
            self._attach_faults(config.faults)

    # -- topology ------------------------------------------------------------

    def _build_links(self) -> None:
        config = self.config
        mcs = None
        if config.mcs_switch_period is not None:
            mcs = McsController()
            mcs.start_random_switching(self.sim, config.mcs_switch_period,
                                       self.rng.fork("mcs"))
        self.channel = WirelessChannel(config.trace, mcs=mcs)
        interference = None
        if config.interferers > 0:
            interference = InterferenceModel(self.rng.fork("intf"),
                                             config.interferers)
        self.downlink_queue = make_queue(config.queue_kind,
                                         config.queue_capacity, "down")
        if config.link_kind == "cellular":
            self.downlink_wireless = CellularLink(
                self.sim, self.channel, self.downlink_queue, name="down-cell")
        elif config.link_kind == "wifi":
            self.downlink_wireless = WirelessLink(
                self.sim, self.channel, self.downlink_queue,
                interference=interference, name="down-wifi")
        else:
            raise ValueError(f"unknown link_kind {config.link_kind!r}")

        # Uplink wireless: scaled copy of the channel; carries small
        # feedback packets, so it adds latency (segment iii of Fig. 1)
        # but rarely queues.
        self.uplink_channel = uplink_channel = WirelessChannel(
            config.trace.scaled(config.uplink_scale), mcs=mcs)
        uplink_interference = None
        if config.interferers > 0:
            uplink_interference = InterferenceModel(self.rng.fork("intf-up"),
                                                    config.interferers)
        self.uplink_queue = DropTailQueue(capacity_bytes=200_000, name="up")
        self.uplink_wireless = WirelessLink(
            self.sim, uplink_channel, self.uplink_queue,
            interference=uplink_interference, max_ampdu_packets=8,
            name="up-wifi")

        self.wan_down = WiredLink(self.sim, 1e9, config.wan_delay,
                                  name="wan-down")
        self.wan_up = WiredLink(self.sim, None, config.wan_delay,
                                name="wan-up")

    def _build_ap(self) -> None:
        config = self.config
        self.zhuge: Optional[ZhugeAP] = None
        self.abc_router: Optional[AbcRouter] = None
        self.fastack: dict[FiveTuple, FastAckProxy] = {}

        if config.ap_mode == "zhuge":
            self.ap = ZhugeAP(self.sim, self.downlink_queue,
                              rng=self.rng.fork("zhuge"),
                              record_predictions=config.record_predictions)
            self.zhuge = self.ap
        else:
            self.ap = PassthroughAP()
            if config.ap_mode == "abc":
                share = 1.0
                if config.interferers > 0:
                    share = 1.0 / (1.0 + config.interferers)
                self.abc_router = AbcRouter(
                    self.downlink_queue,
                    capacity_fn=lambda now, s=share: self.channel.rate_at(now) * s)
            elif config.ap_mode not in ("none", "fastack"):
                raise ValueError(f"unknown ap_mode {config.ap_mode!r}")

        # Wire: WAN downlink -> AP -> wireless; client -> uplink -> AP -> WAN.
        self.wan_down.deliver = self._ap_downlink_in
        self.ap.forward_downlink = self.downlink_wireless.send
        self.downlink_wireless.deliver = self._wireless_delivered
        self.uplink_wireless.deliver = self._ap_uplink_in
        self.ap.forward_uplink = self.wan_up.send
        self.wan_up.deliver = self._server_receive

        self._client_handlers: dict[FiveTuple, callable] = {}
        self._server_handlers: dict[FiveTuple, callable] = {}
        # Network-layer RTT recorders per RTC flow (the §7.2 metric):
        # sampled at wireless delivery, independent of feedback rewriting.
        self._network_rtt: dict[FiveTuple, RttRecorder] = {}
        # Stable return-path latency: uplink wireless access (~3 ms
        # typical) plus the WAN hop back to the server.
        self._return_path_delay = self.config.wan_delay + 0.003

    def _ap_downlink_in(self, packet: Packet) -> None:
        if self.abc_router is not None and packet.kind == PacketKind.DATA:
            self.abc_router.mark(packet, self.sim.now)
        self.ap.on_downlink(packet)

    def _wireless_delivered(self, packet: Packet) -> None:
        if self.zhuge is not None:
            self.zhuge.on_wireless_delivery(packet)
        for proxy in self.fastack.values():
            proxy.on_wireless_delivery(packet)
        recorder = self._network_rtt.get(packet.flow)
        if recorder is not None and packet.kind == PacketKind.DATA:
            one_way = self.sim.now - packet.sent_at
            recorder.record(self.sim.now,
                            max(0.0, one_way) + self._return_path_delay)
        handler = self._client_handlers.get(packet.flow)
        if handler is not None:
            handler(packet)

    def _ap_uplink_in(self, packet: Packet) -> None:
        downlink_flow = packet.flow.reversed()
        proxy = self.fastack.get(downlink_flow)
        if proxy is not None:
            proxy.on_uplink(packet, self.ap.on_uplink)
        else:
            self.ap.on_uplink(packet)

    def _server_receive(self, packet: Packet) -> None:
        handler = self._server_handlers.get(packet.flow)
        if handler is not None:
            handler(packet)

    # -- RTC flows -----------------------------------------------------------

    def _build_rtc_flows(self) -> None:
        config = self.config
        self.video_apps = []
        mask = config.zhuge_flow_mask or tuple([True] * config.rtc_flows)
        for index in range(config.rtc_flows):
            flow = FiveTuple("server", "client", 5000 + index, 6000 + index,
                             "udp" if config.protocol == "rtp" else "tcp")
            optimized = index < len(mask) and mask[index]
            if config.protocol == "rtp":
                self._build_rtp_flow(flow, index, optimized)
            elif config.protocol == "tcp":
                self._build_tcp_flow(flow, index, optimized)
            elif config.protocol == "quic":
                self._build_quic_flow(flow, index, optimized)
            else:
                raise ValueError(f"unknown protocol {config.protocol!r}")

    def _build_rtp_flow(self, flow: FiveTuple, index: int,
                        optimized: bool) -> None:
        config = self.config
        cca = make_rate_cca(config.cca if config.cca != "copa" else "gcc",
                            initial_bps=config.initial_bps,
                            max_bps=config.max_bps)
        sender = RtpSender(self.sim, flow, cca)
        receiver = RtpReceiver(self.sim, flow)
        encoder = VideoEncoder(fps=config.fps,
                               rng=self.rng.fork(f"enc-{index}"))
        app = RtpVideoApp(self.sim, sender, receiver, encoder,
                          paced=config.paced_sender)
        sender.transmit = self.wan_down.send
        receiver.transmit = self.uplink_wireless.send

        def rtcp_dispatch(packet: Packet, s=sender) -> None:
            if packet.kind == PacketKind.RTCP_OTHER:
                s.on_nack(packet)
            else:
                s.on_feedback(packet)

        self._client_handlers[flow] = receiver.on_data
        self._server_handlers[flow.reversed()] = rtcp_dispatch
        if self.zhuge is not None and optimized:
            self.zhuge.register_flow(flow, FeedbackKind.IN_BAND)
        self._network_rtt[flow] = RttRecorder()
        self.video_apps.append((sender, receiver, app))

    def _build_tcp_flow(self, flow: FiveTuple, index: int,
                        optimized: bool) -> None:
        config = self.config
        cca = make_window_cca(config.cca)
        sender = TcpSender(self.sim, flow, cca)
        receiver = TcpReceiver(self.sim, flow)
        if config.app == "bulk":
            # Buffer-filling flow for the CCA studies (paper Fig. 4):
            # no encoder, the window is always tested.
            app = _BulkFlowAdapter(self.sim, sender)
        else:
            encoder = VideoEncoder(fps=config.fps,
                                   rng=self.rng.fork(f"enc-{index}"))
            app = TcpVideoApp(self.sim, sender, receiver, encoder,
                              max_rate_bps=config.max_bps)
        sender.transmit = self.wan_down.send
        receiver.transmit = self.uplink_wireless.send
        self._client_handlers[flow] = receiver.on_data
        self._server_handlers[flow.reversed()] = sender.on_ack
        if self.zhuge is not None and optimized:
            self.zhuge.register_flow(flow, FeedbackKind.OUT_OF_BAND)
        if config.ap_mode == "fastack" and optimized:
            proxy = FastAckProxy(self.sim, flow)
            proxy.forward_uplink = self.ap.on_uplink
            self.fastack[flow] = proxy
        self._network_rtt[flow] = RttRecorder()
        self.video_apps.append((sender, receiver, app))

    def _build_quic_flow(self, flow: FiveTuple, index: int,
                         optimized: bool) -> None:
        """Video over the QUIC-style transport (Table 2's QUIC family).

        Fully encrypted out-of-band feedback: Zhuge must operate on the
        five-tuple and ACK timing alone — which is exactly how the
        OUT_OF_BAND registration behaves.
        """
        from repro.app.quic_video import QuicVideoApp
        from repro.transport.quic import QuicReceiver, QuicSender
        config = self.config
        cca = make_window_cca(config.cca if config.cca != "gcc" else "copa",
                              mss=1200)
        sender = QuicSender(self.sim, flow, cca, mss=1200)
        receiver = QuicReceiver(self.sim, flow)
        encoder = VideoEncoder(fps=config.fps,
                               rng=self.rng.fork(f"enc-{index}"))
        app = QuicVideoApp(self.sim, sender, receiver, encoder,
                           max_rate_bps=config.max_bps)
        sender.transmit = self.wan_down.send
        receiver.transmit = self.uplink_wireless.send
        self._client_handlers[flow] = receiver.on_data
        self._server_handlers[flow.reversed()] = sender.on_ack
        if self.zhuge is not None and optimized:
            self.zhuge.register_flow(flow, FeedbackKind.OUT_OF_BAND)
        self._network_rtt[flow] = RttRecorder()
        self.video_apps.append((sender, receiver, app))

    # -- competitors ------------------------------------------------------------

    def _build_competitors(self) -> None:
        config = self.config
        self.bulk_apps = []
        for index in range(config.competitors):
            flow = FiveTuple("server", "client", 7000 + index, 8000 + index,
                             "tcp")
            sender = TcpSender(self.sim, flow, make_window_cca("cubic"))
            receiver = TcpReceiver(self.sim, flow)
            sender.transmit = self.wan_down.send
            receiver.transmit = self.uplink_wireless.send
            self._client_handlers[flow] = receiver.on_data
            self._server_handlers[flow.reversed()] = sender.on_ack
            if config.competitor_period is not None:
                app = PeriodicBulkApp(self.sim, sender,
                                      period=config.competitor_period)
            else:
                app = BulkSenderApp(self.sim, sender)
            self.bulk_apps.append((sender, receiver, app))

    # -- tracing (repro.obs) -----------------------------------------------------

    def _attach_tracing(self, trace_config: TraceConfig) -> None:
        """Attach probes to every instrumented component of the topology."""
        session = TraceSession(self.sim, trace_config)
        bus = session.bus
        self.downlink_queue.trace = bus
        self.uplink_queue.trace = bus
        self.downlink_wireless.trace = bus
        self.uplink_wireless.trace = bus
        if self.zhuge is not None:
            self.zhuge.enable_trace(bus)
        for sender, _receiver, _app in self.video_apps:
            cca = getattr(sender, "cca", None)
            if cca is not None and hasattr(cca, "enable_trace"):
                cca.enable_trace(
                    bus, f"cca/{sender.flow.src_port}->{sender.flow.dst_port}")
        self.trace_session = session

    # -- fault injection (repro.faults) ------------------------------------------

    def _attach_faults(self, plan: FaultPlan) -> None:
        """Arm the plan's faults against the built topology."""
        from repro.faults.injector import FaultInjector
        if self.zhuge is not None and plan.watchdog_enabled:
            self.zhuge.enable_watchdog(plan.watchdog)
        self.fault_injector = FaultInjector(
            self.sim, plan,
            downlink=self.downlink_wireless,
            uplink=self.uplink_wireless,
            down_channel=self.channel,
            up_channel=self.uplink_channel,
            downlink_queue=self.downlink_queue,
            uplink_queue=self.uplink_queue,
            zhuge=self.zhuge,
            trace=self.trace_session.bus if self.trace_session else None)

    # -- run -------------------------------------------------------------------------

    def run(self) -> ScenarioResult:
        config = self.config
        try:
            self.sim.run(until=config.duration)
        except Exception as exc:
            if self.trace_session is not None:
                self.trace_session.dump_on_error(exc)
            raise

        flows = []
        for sender, receiver, app in self.video_apps:
            network = self._network_rtt[sender.flow]
            rtt = _filtered_rtt(network, config.warmup)
            cca_rtt = _filtered_rtt(sender.rtt_recorder, config.warmup)
            frames = _filtered_frames(app.frame_recorder, config.warmup)
            if config.protocol == "rtp":
                goodput = _rtp_goodput(receiver, config)
            elif config.protocol == "quic":
                goodput = _quic_goodput(receiver, config)
            else:
                goodput = _tcp_goodput(receiver, config)
            result = FlowResult(rtt=rtt, frames=frames, cca_rtt=cca_rtt,
                                goodput_bps=goodput)
            result.mean_bitrate_bps = sender.rate_recorder.mean_rate(
                start=config.warmup)
            flows.append(result)

        pairs = []
        if self.zhuge is not None and config.record_predictions:
            pairs = self.zhuge.fortune_teller.accuracy_pairs()

        if self.zhuge is not None:
            self.zhuge.stop()
        for _, receiver, app in self.video_apps:
            app.stop()

        if self.trace_session is not None:
            self.trace_session.export()

        fault_log = []
        if self.fault_injector is not None:
            fault_log = list(self.fault_injector.log)
        watchdog_transitions = []
        if self.zhuge is not None and self.zhuge.watchdog is not None:
            watchdog_transitions = list(self.zhuge.watchdog.transitions)

        return ScenarioResult(config=config, flows=flows,
                              prediction_pairs=pairs,
                              events_processed=self.sim.events_processed,
                              ap_packets=self.ap.packets_processed,
                              trace_session=self.trace_session,
                              fault_log=fault_log,
                              watchdog_transitions=watchdog_transitions)


class _BulkFlowAdapter:
    """Presents the video-app interface over a bulk TCP sender."""

    def __init__(self, sim, sender):
        from repro.app.bulk import BulkSenderApp
        self._bulk = BulkSenderApp(sim, sender)
        self.frame_recorder = FrameRecorder()

    def stop(self) -> None:
        self._bulk.stop()


def _filtered_rtt(recorder: RttRecorder, warmup: float) -> RttRecorder:
    out = RttRecorder()
    for t, r in zip(recorder.times, recorder.rtts):
        if t >= warmup:
            out.record(t, r)
    return out


def _filtered_frames(recorder: FrameRecorder, warmup: float) -> FrameRecorder:
    out = FrameRecorder()
    for t, d in zip(recorder.frame_times, recorder.frame_delays):
        if t >= warmup:
            out.record(t, d)
    return out


def _rtp_goodput(receiver: RtpReceiver, config: ScenarioConfig) -> float:
    span = max(config.duration - config.warmup, 1e-9)
    # Approximation: all packets are payload-sized; warmup share removed
    # proportionally.
    fraction = span / config.duration
    return receiver.packets_received * fraction * 1200 * 8 / span


def _quic_goodput(receiver, config: ScenarioConfig) -> float:
    span = max(config.duration - config.warmup, 1e-9)
    fraction = span / config.duration
    return receiver.packets_received * fraction * 1200 * 8 / span


def _tcp_goodput(receiver: TcpReceiver, config: ScenarioConfig) -> float:
    span = max(config.duration - config.warmup, 1e-9)
    fraction = span / config.duration
    return receiver.packets_received * fraction * 1448 * 8 / span
