"""Deterministic fault injection and graceful degradation (repro.faults).

The fault layer opens the scenario space the paper's evaluation leaves
out: what happens to the Zhuge AP when the wireless link itself
misbehaves. A pure-data :class:`FaultPlan` (embedded in
:class:`~repro.campaign.spec.ScenarioSpec`, so faulted cells
content-hash distinctly) describes typed fault windows; a
:class:`FaultInjector` scheduled on the simulator drives the links,
queues, and AP through their existing hooks; and an
:class:`EstimatorHealthWatchdog` demotes the AP to passthrough when its
predictions go stale, with hysteresis to re-engage.

Everything is a pure function of (spec, seed): the same plan produces
bit-identical fault schedules and summaries serially, in a worker pool,
or replayed from the campaign cache.
"""

from repro.faults.chaos import (CHAOS_ACTIONS, ChaosPlan, ChaosState,
                                ChaosWorker, build_chaos, corrupt_entry)
from repro.faults.injector import FaultInjector
from repro.faults.spec import (FAULT_KINDS, FaultPlan, FaultSpec,
                               WatchdogConfig)
from repro.faults.watchdog import (STATE_DEGRADED, STATE_HEALTHY,
                                   EstimatorHealthWatchdog)

__all__ = [
    "CHAOS_ACTIONS",
    "ChaosPlan",
    "ChaosState",
    "ChaosWorker",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "WatchdogConfig",
    "EstimatorHealthWatchdog",
    "STATE_DEGRADED",
    "STATE_HEALTHY",
    "build_chaos",
    "corrupt_entry",
]
