"""Deterministic chaos harness for the campaign layer itself.

:mod:`repro.faults` injects faults into the *simulated* network; this
module injects faults into the *harness* — the process pool, the result
cache, the journal — so the crash-safety machinery of
:mod:`repro.campaign` is exercised by tests and CI the same way the AP
watchdog is exercised by link faults.

A :class:`ChaosPlan` is parsed from a compact spec string::

    kill-worker@2,oom@4        # worker dies starting its 2nd cell,
                               # MemoryError on the 4th cell attempt
    exit-run@3                 # whole driver process exits after the
                               # 3rd completed cell (SIGKILL stand-in)
    hang@1                     # 1st cell attempt sleeps forever
                               # (exercises hang_timeout supervision)

Determinism across a process pool needs shared state: workers count
cell attempts through an O_APPEND one-byte-write counter file (atomic
on POSIX for appends this small) and claim each action through an
``O_CREAT | O_EXCL`` fire-once marker, both in a :class:`ChaosState`
scratch directory. So "kill the worker starting the 3rd cell" fires
exactly once per campaign no matter how many workers race, and a
*resumed* campaign sees the markers from the crashed run and does not
re-fire — which is exactly what lets the kill-resume digest pin drive
a real ``os._exit`` mid-campaign and then resume to completion.

:func:`corrupt_entry` and :func:`repro.campaign.journal.truncate_journal`
cover the storage-damage cases (torn cache entry, truncated journal)
without any process gymnastics.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

#: Actions enforced inside a worker process (count = cell attempts
#: *started*, 1-based, campaign-wide).
WORKER_ACTIONS = ("kill-worker", "oom", "hang")
#: Actions enforced by the driver process (count = cells *completed*).
DRIVER_ACTIONS = ("exit-run",)
CHAOS_ACTIONS = WORKER_ACTIONS + DRIVER_ACTIONS

#: Exit code used by chaos-induced process deaths, distinct from
#: ordinary crashes so tests can assert the death was the planned one.
CHAOS_EXIT_CODE = 9


@dataclass(frozen=True)
class ChaosAction:
    """One planned harness fault: ``kind`` fires at count ``at``."""

    kind: str
    at: int

    @property
    def tag(self) -> str:
        return f"{self.kind}@{self.at}"


@dataclass(frozen=True)
class ChaosPlan:
    """A parsed, immutable set of harness faults."""

    actions: tuple = ()

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse ``"kind@N[,kind@N...]"`` (whitespace tolerated)."""
        actions = []
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            kind, sep, at = part.partition("@")
            kind = kind.strip()
            if kind not in CHAOS_ACTIONS:
                raise ValueError(
                    f"unknown chaos action {kind!r} "
                    f"(known: {', '.join(CHAOS_ACTIONS)})")
            if not sep:
                raise ValueError(f"chaos action {part!r} needs '@<count>'")
            actions.append(ChaosAction(kind=kind, at=int(at)))
        return cls(actions=tuple(actions))

    def as_spec(self) -> str:
        return ",".join(action.tag for action in self.actions)

    def worker_actions(self) -> list:
        return [a for a in self.actions if a.kind in WORKER_ACTIONS]

    def driver_actions(self) -> list:
        return [a for a in self.actions if a.kind in DRIVER_ACTIONS]


class ChaosState:
    """Cross-process chaos bookkeeping in one scratch directory.

    * :meth:`next_count` — an atomic campaign-wide counter: every call
      appends one byte to ``counter`` (POSIX guarantees O_APPEND
      single-byte writes are atomic) and returns the resulting size.
    * :meth:`fire_once` — at-most-once claims via ``O_CREAT | O_EXCL``
      marker files; the claim persists across crashes and resumes.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    def _counter_path(self, name: str) -> Path:
        return self.directory / f"counter-{name}"

    def next_count(self, name: str = "cells") -> int:
        self.directory.mkdir(parents=True, exist_ok=True)
        fd = os.open(self._counter_path(name),
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, b".")
        finally:
            os.close(fd)
        return self._counter_path(name).stat().st_size

    def count(self, name: str = "cells") -> int:
        try:
            return self._counter_path(name).stat().st_size
        except OSError:
            return 0

    def fire_once(self, tag: str) -> bool:
        """True exactly once per ``tag`` across every process and run."""
        self.directory.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.directory / f"fired-{tag}",
                         os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        os.close(fd)
        return True


class ChaosWorker:
    """Picklable campaign worker that executes the plan's worker faults.

    Drop-in for ``run_campaign(worker=...)``: every cell attempt bumps
    the shared counter, fires any worker-side action planned for that
    count (exactly once, campaign-wide), then runs the real cell body.
    """

    def __init__(self, plan_spec: str, state_dir,
                 timeout: Optional[float] = None) -> None:
        self.plan_spec = str(plan_spec)
        self.state_dir = str(state_dir)
        self.timeout = timeout

    def __call__(self, spec):
        # Imported lazily: repro.campaign.spec itself imports
        # repro.faults.spec, so a module-level runner import here would
        # cycle through a partially-initialized repro.campaign.
        from repro.campaign.runner import execute_spec
        plan = ChaosPlan.parse(self.plan_spec)
        state = ChaosState(self.state_dir)
        count = state.next_count("cells")
        for action in plan.worker_actions():
            if action.at != count or not state.fire_once(action.tag):
                continue
            if action.kind == "kill-worker":
                os._exit(CHAOS_EXIT_CODE)
            elif action.kind == "oom":
                raise MemoryError(f"chaos: injected OOM at cell {count}")
            elif action.kind == "hang":
                time.sleep(3600.0)
        return execute_spec(spec, timeout=self.timeout)


def chaos_progress(plan: ChaosPlan, state: ChaosState,
                   inner: Optional[Callable] = None) -> Callable:
    """Wrap a progress callback with the plan's driver-side faults.

    ``exit-run@N`` hard-exits the driver process (``os._exit``, no
    cleanup, no journal flush beyond what already hit disk) after the
    N-th terminal cell event — the closest a test can get to
    ``kill -9`` while still choosing the moment deterministically.
    """
    def hook(event: str, cell, stats) -> None:
        if inner is not None:
            inner(event, cell, stats)
        if event == "retry":
            return
        completed = state.next_count("done")
        for action in plan.driver_actions():
            if action.kind == "exit-run" and action.at == completed:
                if state.fire_once(action.tag):
                    os._exit(CHAOS_EXIT_CODE)
    return hook


def corrupt_entry(cache_root, *, index: int = 0,
                  mode: str = "truncate") -> Optional[Path]:
    """Damage one result-cache entry in place (chaos/test helper).

    ``mode="truncate"`` chops the file mid-body (a torn foreign write);
    ``mode="flip"`` flips one byte deep in the body (bit rot). Entries
    are taken in sorted order; returns the damaged path or None if the
    cache holds fewer than ``index + 1`` entries.
    """
    root = Path(cache_root)
    entries = sorted(path for path in root.glob("*/*.json")
                     if path.parent.name != "quarantine")
    if index >= len(entries):
        return None
    path = entries[index]
    blob = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(blob[:max(1, len(blob) // 2)])
    elif mode == "flip":
        offset = len(blob) * 3 // 4
        damaged = bytearray(blob)
        damaged[offset] ^= 0xFF
        path.write_bytes(bytes(damaged))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path


def build_chaos(spec: str, state_dir, *,
                timeout: Optional[float] = None,
                progress: Optional[Callable] = None
                ) -> tuple[ChaosWorker, Callable]:
    """One-call CLI/test wiring: ``(worker, progress_hook)`` for a plan.

    The returned worker replaces ``run_campaign``'s cell body and the
    hook replaces its progress callback (chaining ``progress``).
    """
    plan = ChaosPlan.parse(spec)
    state = ChaosState(state_dir)
    worker = ChaosWorker(plan.as_spec(), state_dir, timeout=timeout)
    return worker, chaos_progress(plan, state, progress)


__all__: Sequence[str] = (
    "CHAOS_ACTIONS",
    "CHAOS_EXIT_CODE",
    "ChaosAction",
    "ChaosPlan",
    "ChaosState",
    "ChaosWorker",
    "build_chaos",
    "chaos_progress",
    "corrupt_entry",
)
