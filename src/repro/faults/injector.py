"""Schedules a :class:`FaultPlan` onto a live scenario.

The injector is pure orchestration: it owns no link or AP state, it
only flips the fault hooks the datapath components already expose
(``link.block()/unblock()``, ``link.fault_drop``,
``channel.fault_scale``, ``queue.drop_all()``, ``zhuge.reset_state()``)
at the plan's scheduled times. All stochastic behaviour (loss-burst
coin flips) draws from per-fault forked streams of the plan seed, so
the same plan produces the same drop pattern regardless of how many
other faults run, and regardless of process (serial, pool, cache
replay).

Overlap semantics are last-writer-wins per (kind, target): the *end* of
whichever window fires last restores the healthy value. Plans that need
stacked same-kind faults should use disjoint windows.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.spec import FaultPlan, FaultSpec
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom


class FaultInjector:
    """Arms every fault in ``plan`` against the scenario's components.

    Any handle may be ``None`` (e.g. a cellular downlink scenario still
    has a Wi-Fi uplink; a passthrough scenario has no ``zhuge``); faults
    targeting a missing component are recorded in the log as skipped
    phases but otherwise ignored.
    """

    def __init__(self, sim: Simulator, plan: FaultPlan, *,
                 downlink=None, uplink=None,
                 down_channel=None, up_channel=None,
                 downlink_queue=None, uplink_queue=None,
                 zhuge=None, trace=None,
                 edges=None, zhuge_by_node=None, mover=None):
        self.sim = sim
        self.plan = plan
        self.downlink = downlink
        self.uplink = uplink
        self.down_channel = down_channel
        self.up_channel = up_channel
        self.downlink_queue = downlink_queue
        self.uplink_queue = uplink_queue
        self.zhuge = zhuge
        self.trace = trace
        #: Topology-aware handles (multi-AP graphs): ``edges`` maps edge
        #: name -> :class:`~repro.topology.builder.EdgeRuntime` for
        #: per-edge targeting, ``zhuge_by_node`` maps AP node name ->
        #: ZhugeAP (or None) for targeted ``ap_reset``, and ``mover``
        #: (duck-typed: ``begin_roam(client) -> int`` /
        #: ``complete_roam(client, ap)``) performs real inter-AP
        #: handoffs for node-targeted ``roam`` faults.
        self.edges = edges or {}
        self.zhuge_by_node = zhuge_by_node or {}
        self.mover = mover
        self.rng = DeterministicRandom(plan.seed)
        #: (time, kind, phase) for every executed fault phase, in order.
        self.log: list[tuple[float, str, str]] = []
        self.loss_dropped = 0
        self.roam_flushed = 0
        self._track = "faults"
        self._arm()

    # -- read-only views -----------------------------------------------------

    def active_faults(self, now: Optional[float] = None):
        """Windowed faults whose [start, end) covers ``now``.

        A pure view over the plan (no injector state is consulted), in
        plan order, defaulting to the current simulation time. Lets the
        control layer and tests assert that state transitions line up
        with fault windows without parsing trace events. Instantaneous
        faults (``ap_reset``) have no window and never appear.
        """
        if now is None:
            now = self.sim.now
        return tuple(fault for fault in self.plan.faults
                     if fault.duration > 0 and fault.start <= now < fault.end)

    # -- scheduling ----------------------------------------------------------

    def _arm(self) -> None:
        for index, fault in enumerate(self.plan.faults):
            self.sim.call_at(
                fault.start,
                lambda fault=fault, index=index: self._begin(fault, index))
            if fault.duration > 0:
                self.sim.call_at(
                    fault.end,
                    lambda fault=fault, index=index: self._end(fault, index))

    def _edge_runtime(self, name: str):
        runtime = self.edges.get(name)
        if runtime is None or runtime.spec.kind == "wired":
            # Unknown or un-blockable edge: skipped, like any other
            # missing component.
            return None
        return runtime

    def _links(self, target: str, edge: str = ""):
        if edge:
            runtime = self._edge_runtime(edge)
            return [(edge, runtime.link)] if runtime is not None else []
        links = []
        if target in ("down", "both") and self.downlink is not None:
            links.append(("down", self.downlink))
        if target in ("up", "both") and self.uplink is not None:
            links.append(("up", self.uplink))
        return links

    def _channels(self, target: str, edge: str = ""):
        if edge:
            runtime = self._edge_runtime(edge)
            return [runtime.channel] if runtime is not None else []
        channels = []
        if target in ("down", "both") and self.down_channel is not None:
            channels.append(self.down_channel)
        if target in ("up", "both") and self.up_channel is not None:
            channels.append(self.up_channel)
        return channels

    def _queues(self, target: str, edge: str = ""):
        if edge:
            runtime = self._edge_runtime(edge)
            return ([runtime.queue] if runtime is not None
                    and runtime.queue is not None else [])
        queues = []
        if target in ("down", "both") and self.downlink_queue is not None:
            queues.append(self.downlink_queue)
        if target in ("up", "both") and self.uplink_queue is not None:
            queues.append(self.uplink_queue)
        return queues

    # -- fault phases --------------------------------------------------------

    def _begin(self, fault: FaultSpec, index: int) -> None:
        self.log.append((self.sim.now, fault.kind, "begin"))
        if self.trace is not None:
            if fault.duration > 0:
                self.trace.fault_window(self._track, fault.kind, index,
                                        fault.duration, fault.target,
                                        fault.magnitude)
            self.trace.fault_phase(self._track, fault.kind, index, "begin")
        if fault.kind == "blackout":
            for _, link in self._links(fault.target, fault.edge):
                link.block()
        elif fault.kind == "rate_crash":
            for channel in self._channels(fault.target, fault.edge):
                channel.fault_scale = fault.magnitude
        elif fault.kind == "loss_burst":
            for direction, link in self._links(fault.target, fault.edge):
                link.fault_drop = self._loss_predicate(
                    fault, index, direction)
        elif fault.kind == "ap_reset":
            zhuge = (self.zhuge_by_node.get(fault.node) if fault.node
                     else self.zhuge)
            if zhuge is not None:
                zhuge.reset_state()
        elif fault.kind == "roam":
            if fault.node and self.mover is not None:
                # Real inter-AP handoff: detach now, re-attach at _end.
                self.roam_flushed += self.mover.begin_roam(fault.node)
            else:
                for _, link in self._links("both"):
                    link.block()
                for queue in self._queues("both"):
                    self.roam_flushed += queue.drop_all("roam")

    def _end(self, fault: FaultSpec, index: int) -> None:
        self.log.append((self.sim.now, fault.kind, "end"))
        if self.trace is not None:
            self.trace.fault_phase(self._track, fault.kind, index, "end")
        if fault.kind == "blackout":
            for _, link in self._links(fault.target, fault.edge):
                link.unblock()
        elif fault.kind == "rate_crash":
            for channel in self._channels(fault.target, fault.edge):
                channel.fault_scale = 1.0
        elif fault.kind == "loss_burst":
            for _, link in self._links(fault.target, fault.edge):
                link.fault_drop = None
        elif fault.kind == "roam":
            if fault.node and self.mover is not None:
                # Re-association on the target AP: routes move, the new
                # AP's estimators start fresh, the release floor carries.
                self.mover.complete_roam(fault.node, fault.to)
            else:
                # Legacy same-AP re-association: links come back, but
                # the client the AP learned is gone — estimator state
                # restarts from scratch.
                for _, link in self._links("both"):
                    link.unblock()
                if self.zhuge is not None:
                    self.zhuge.reset_state()

    def _loss_predicate(self, fault: FaultSpec, index: int, direction: str):
        rng = self.rng.fork(f"loss-{index}-{direction}")
        probability = fault.magnitude
        trace = self.trace
        track = self._track

        def drop(packet) -> bool:
            if rng.random() >= probability:
                return False
            self.loss_dropped += 1
            if trace is not None:
                trace.fault_loss(track, packet.pkt_id, direction)
            return True

        return drop
