"""Pure-data fault plans.

A :class:`FaultPlan` is the declarative half of the fault layer: a list
of typed :class:`FaultSpec` windows plus the watchdog configuration,
all plain JSON values. It lives inside
:class:`~repro.campaign.spec.ScenarioSpec`, so it participates in the
spec content hash (a faulted cell never aliases a healthy one in the
campaign cache) and survives pickling across worker processes.

Fault kinds:

========== =============================================================
kind       meaning
========== =============================================================
blackout   the wireless link stops serving for ``duration`` seconds
           (deep fade, radar DFS hit, channel switch); queued packets
           wait, arriving packets keep queueing.
rate_crash the channel rate is scaled by ``magnitude`` (default 0.05)
           for ``duration`` seconds — an MCS crash to the lowest index.
loss_burst each delivered packet is independently dropped with
           probability ``magnitude`` (default 0.5) for ``duration``
           seconds, on the downlink data path and/or the uplink ACK
           path.
ap_reset   the AP's estimator state is reset at ``start`` (AP restart /
           client handover): Fortune-Teller windows, token banks, and
           delta ledgers are forgotten. Instantaneous; no effect on
           non-Zhuge APs (they carry no state).
roam       the client roams: both link directions block for
           ``duration``, in-flight queue contents are flushed (counted
           as drops), and the AP state resets when the client
           re-associates at the end of the window.
========== =============================================================

Overlapping windows of the same kind on the same target are
last-writer-wins (the later ``end`` restores the healthy state); plans
that need stacked faults should use disjoint windows.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, field, fields
from typing import Optional

FAULT_KINDS = ("blackout", "rate_crash", "loss_burst", "ap_reset", "roam")

#: Kinds with a [start, start+duration) active window; ``ap_reset`` is
#: instantaneous.
WINDOWED_KINDS = ("blackout", "rate_crash", "loss_burst", "roam")

TARGETS = ("down", "up", "both")

#: DSL shorthand aliases accepted by :meth:`FaultPlan.parse`.
KIND_ALIASES = {"loss": "loss_burst", "crash": "rate_crash",
                "reset": "ap_reset"}

_DEFAULT_MAGNITUDE = {"rate_crash": 0.05, "loss_burst": 0.5}
_DEFAULT_TARGET = {"blackout": "both", "roam": "both"}

_FAULT_RE = re.compile(
    r"^(?P<kind>[a-z_]+)@(?P<start>[0-9.]+)"
    r"(?:\+(?P<duration>[0-9.]+))?"
    r"(?:\*(?P<magnitude>[0-9.]+))?$")


@dataclass(frozen=True)
class FaultSpec:
    """One typed fault window.

    ``magnitude`` is kind-specific: the rate scale for ``rate_crash``,
    the per-packet drop probability for ``loss_burst`` (filled with the
    kind's default when omitted, unused otherwise). ``target`` selects
    the affected direction (``ap_reset`` ignores it).
    """

    kind: str
    start: float
    duration: float = 0.0
    magnitude: Optional[float] = None
    target: str = ""
    #: Topology-aware targeting (multi-AP graphs). ``edge`` aims the
    #: fault at one named edge instead of the legacy down/up pair;
    #: ``node``/``to`` make ``roam`` a real handoff (the named client
    #: detaches and re-attaches to the ``to`` AP) and let ``ap_reset``
    #: pick one AP. All three are empty on legacy single-AP plans and
    #: omitted from the payload, so old plans hash identically.
    edge: str = ""
    node: str = ""
    to: str = ""

    def __post_init__(self) -> None:
        kind = KIND_ALIASES.get(self.kind, self.kind)
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        object.__setattr__(self, "kind", kind)
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0: {self.start}")
        if kind in WINDOWED_KINDS:
            if self.duration <= 0:
                raise ValueError(f"{kind} fault needs duration > 0: "
                                 f"{self.duration}")
        else:
            object.__setattr__(self, "duration", 0.0)
        magnitude = self.magnitude
        if magnitude is None:
            magnitude = _DEFAULT_MAGNITUDE.get(kind)
        elif kind == "loss_burst" and not 0 < magnitude <= 1:
            raise ValueError(f"loss probability must be in (0, 1]: "
                             f"{magnitude}")
        elif kind == "rate_crash" and not 0 < magnitude < 1:
            raise ValueError(f"rate-crash scale must be in (0, 1): "
                             f"{magnitude}")
        elif kind not in _DEFAULT_MAGNITUDE:
            magnitude = None  # meaningless for this kind; normalize away
        object.__setattr__(self, "magnitude", magnitude)
        target = self.target or _DEFAULT_TARGET.get(kind, "down")
        if target not in TARGETS:
            raise ValueError(f"unknown fault target {self.target!r}; "
                             f"expected one of {TARGETS}")
        object.__setattr__(self, "target", target)
        if self.to and kind != "roam":
            raise ValueError(f"only roam faults take a ':to' AP "
                             f"(got {self.to!r} on {kind})")
        if kind == "roam" and self.node and not self.to:
            raise ValueError(f"roam fault for node {self.node!r} needs a "
                             f"target AP (node:ap)")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def as_dict(self) -> dict:
        payload = asdict(self)
        if payload["magnitude"] is None:
            del payload["magnitude"]
        # Topology-targeting fields are omitted when unused so legacy
        # plans keep their historical payloads (and content hashes).
        for key in ("edge", "node", "to"):
            if not payload[key]:
                del payload[key]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        return cls(**payload)


@dataclass(frozen=True)
class WatchdogConfig:
    """Hysteresis parameters of the estimator-health watchdog.

    The watchdog samples health every ``check_interval`` seconds.
    Predictions older than ``stale_after`` with no matching delivery
    mark the estimators stale; joined predictions within
    ``health_window`` whose mean absolute error exceeds
    ``error_threshold`` mark them inaccurate. Either condition must
    persist for ``demote_after`` seconds before the AP falls back to
    passthrough, and health (fresh joins, >= ``min_samples`` of them,
    accurate, not stale) must persist for ``promote_after`` seconds
    before Zhuge re-engages.
    """

    check_interval: float = 0.1
    health_window: float = 1.0
    stale_after: float = 0.5
    error_threshold: float = 0.25
    demote_after: float = 0.2
    promote_after: float = 1.0
    min_samples: int = 20

    def __post_init__(self) -> None:
        for name in ("check_interval", "health_window", "stale_after",
                     "promote_after"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive: "
                                 f"{getattr(self, name)}")
        if self.demote_after < 0:
            raise ValueError(f"demote_after must be >= 0: "
                             f"{self.demote_after}")
        if self.error_threshold <= 0:
            raise ValueError(f"error_threshold must be positive: "
                             f"{self.error_threshold}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1: "
                             f"{self.min_samples}")

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "WatchdogConfig":
        return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """A scenario's full fault schedule plus degradation policy.

    ``seed`` drives the injector's stochastic faults (loss bursts) via
    the usual forked deterministic streams, independent of the
    scenario seed. ``watchdog_enabled`` gates the AP-side health
    watchdog (the no-watchdog ablation keeps Zhuge engaged through the
    fault).

    A plan with no faults is the identity: :class:`ScenarioSpec`
    normalizes it to ``None``, so an empty plan hashes and behaves
    exactly like no plan at all.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 1
    watchdog_enabled: bool = True
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- DSL -----------------------------------------------------------------

    @classmethod
    def parse(cls, text: str, seed: int = 1,
              watchdog_enabled: bool = True) -> "FaultPlan":
        """Parse the compact CLI syntax.

        A comma list of ``kind@start[+duration][*magnitude][/target]``::

            blackout@10+1,reset@11
            loss@5+2*0.3/up,crash@20+4*0.1

        ``/target`` accepts the legacy directions (``down``/``up``/
        ``both``), a topology edge name (``/a-down``), a node name
        (``/ap-b`` for ``ap_reset``), or — for ``roam`` — a
        ``client:new-ap`` handoff pair (``roam@5+0.4/client:ap-b``).

        Aliases: ``loss`` -> loss_burst, ``crash`` -> rate_crash,
        ``reset`` -> ap_reset.
        """
        faults = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            body, _, target = part.partition("/")
            match = _FAULT_RE.match(body)
            if match is None:
                raise ValueError(
                    f"cannot parse fault {part!r}; expected "
                    f"kind@start[+duration][*magnitude][/target]")
            duration = match.group("duration")
            magnitude = match.group("magnitude")
            target = target.strip()
            edge = node = to = ""
            if ":" in target:
                node, _, to = target.partition(":")
                target = ""
            elif target and target not in TARGETS:
                kind = KIND_ALIASES.get(match.group("kind"),
                                        match.group("kind"))
                if kind == "ap_reset":
                    node, target = target, ""
                else:
                    edge, target = target, ""
            faults.append(FaultSpec(
                kind=match.group("kind"),
                start=float(match.group("start")),
                duration=float(duration) if duration else 0.0,
                magnitude=float(magnitude) if magnitude else None,
                target=target, edge=edge, node=node, to=to))
        return cls(faults=tuple(faults), seed=seed,
                   watchdog_enabled=watchdog_enabled)

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict:
        return {"faults": [f.as_dict() for f in self.faults],
                "seed": self.seed,
                "watchdog_enabled": self.watchdog_enabled,
                "watchdog": self.watchdog.as_dict()}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        payload = dict(payload)
        payload["faults"] = tuple(FaultSpec.from_dict(f)
                                  for f in payload.get("faults", ()))
        watchdog = payload.get("watchdog")
        if watchdog is not None:
            payload["watchdog"] = WatchdogConfig.from_dict(watchdog)
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})
