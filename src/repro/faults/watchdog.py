"""Estimator-health watchdog: demote Zhuge to passthrough when blind.

The Zhuge AP is only safe to keep in the loop while its Fortune-Teller
predictions track reality. After a blackout, estimator reset, or roam,
the prediction error spikes (or deliveries stop arriving at all) and a
mis-timed ACK does active harm — the sender reacts to a congestion
signal describing a link that no longer exists. The watchdog joins the
AP's per-packet predictions against actual wireless deliveries (the
same join the offline :class:`~repro.obs.audit.PredictionAuditor`
performs), and drives a two-state machine with hysteresis:

.. code-block:: text

            unhealthy for >= demote_after
   HEALTHY ------------------------------> DEGRADED
           <------------------------------
            healthy for >= promote_after
            AND >= min_samples fresh joins

"Unhealthy" means either *stale* (an un-joined prediction older than
``stale_after`` — deliveries stopped) or *inaccurate* (mean absolute
error of joins inside ``health_window`` above ``error_threshold``).
:meth:`notify_reset` short-circuits the demote delay: an estimator
reset is a ground-truth signal that predictions are garbage *now*.

The watchdog only observes and decides; the actual fallback (stop
delaying ACKs, stop synthesizing TWCC) is the AP's ``on_demote`` /
``on_promote`` callbacks.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Optional

from repro.core.sliding_window import ExactFloatSum
from repro.faults.spec import WatchdogConfig
from repro.sim.engine import Simulator, Timer

STATE_HEALTHY = "healthy"
STATE_DEGRADED = "degraded"

#: Open-prediction table cap: beyond this the oldest entries are
#: evicted. During a blackout nothing is delivered, so the table would
#: otherwise grow with every downlink packet the sender keeps pushing.
MAX_OPEN_PREDICTIONS = 4096


class EstimatorHealthWatchdog:
    """Periodic health checker over the AP's prediction stream."""

    def __init__(self, sim: Simulator, config: Optional[WatchdogConfig] = None,
                 on_demote: Optional[Callable[[str], None]] = None,
                 on_promote: Optional[Callable[[str], None]] = None):
        self.sim = sim
        self.config = config or WatchdogConfig()
        self.on_demote = on_demote
        self.on_promote = on_promote
        self.state = STATE_HEALTHY
        #: (time, new_state, reason) for every transition, in order.
        self.transitions: list[tuple[float, str, str]] = []
        self._open: OrderedDict[int, tuple[float, float]] = OrderedDict()
        self._errors: deque[tuple[float, float]] = deque()
        self._error_sum = ExactFloatSum()
        self._unhealthy_since: Optional[float] = None
        self._healthy_since: Optional[float] = None
        self.evicted = 0
        self.trace = None
        self._track = "ap/watchdog"
        self._timer = Timer(sim, self.config.check_interval, self._check)

    # -- observation feed ----------------------------------------------------

    def note_prediction(self, pkt_id: int, predicted_delay: float) -> None:
        """The AP predicted ``predicted_delay`` for packet ``pkt_id``."""
        if pkt_id in self._open:
            del self._open[pkt_id]
        elif len(self._open) >= MAX_OPEN_PREDICTIONS:
            self._open.popitem(last=False)
            self.evicted += 1
        self._open[pkt_id] = (self.sim.now, predicted_delay)

    def note_delivery(self, pkt_id: int) -> None:
        """Packet ``pkt_id`` made it over the air; join with prediction."""
        entry = self._open.pop(pkt_id, None)
        if entry is None:
            return
        noted_at, predicted = entry
        now = self.sim.now
        error = abs((now - noted_at) - predicted)
        self._errors.append((now, error))
        self._error_sum.add(error)
        self._expire_errors(now)

    def note_drop(self, pkt_id: int) -> None:
        """Packet ``pkt_id`` was dropped before the air: forget it.

        A prediction whose packet never flies is unfalsifiable — it can
        neither join nor legitimately age into staleness. Left in the
        open table it would read as "deliveries stopped" long after a
        queue flush, so callers that drop packets deliberately (the
        control layer's queue clamp) unregister them here.
        """
        self._open.pop(pkt_id, None)

    def notify_reset(self) -> None:
        """The estimators were just wiped — demote immediately.

        A reset invalidates both the open-prediction table (predictions
        made by the dead estimator state) and the joined error history.
        """
        self._open.clear()
        self._errors.clear()
        self._error_sum.reset()
        self._unhealthy_since = None
        self._healthy_since = None
        if self.state == STATE_HEALTHY:
            self._transition(STATE_DEGRADED, "reset")

    # -- health evaluation ---------------------------------------------------

    @property
    def mean_error(self) -> float:
        if not self._errors:
            return 0.0
        return self._error_sum.value() / len(self._errors)

    def recent_errors(self) -> tuple[float, ...]:
        """Windowed |predicted - actual| join errors, oldest first.

        The same samples :meth:`_check` aggregates into ``mean_error``,
        exposed raw so the control layer can compute tail quantiles
        (P95) over the identical window.
        """
        self._expire_errors(self.sim.now)
        return tuple(error for _, error in self._errors)

    @property
    def open_prediction_count(self) -> int:
        """Predictions awaiting a delivery join (idle APs hold none)."""
        return len(self._open)

    @property
    def stale(self) -> bool:
        """True when deliveries have stopped joining predictions.

        Staleness (a blackout, a dead client) is the stronger signal
        than inaccuracy: the estimators are not merely off, they are
        describing a link that no longer delivers at all.
        """
        return self._is_stale(self.sim.now)

    def _expire_errors(self, now: float) -> None:
        horizon = now - self.config.health_window
        while self._errors and self._errors[0][0] < horizon:
            _, error = self._errors.popleft()
            self._error_sum.subtract(error)
        if not self._errors:
            self._error_sum.reset()

    def _is_stale(self, now: float) -> bool:
        if not self._open:
            return False
        oldest_noted_at = next(iter(self._open.values()))[0]
        return now - oldest_noted_at > self.config.stale_after

    def _check(self) -> None:
        now = self.sim.now
        self._expire_errors(now)
        config = self.config
        stale = self._is_stale(now)
        fresh = len(self._errors)
        inaccurate = fresh > 0 and self.mean_error > config.error_threshold
        unhealthy = stale or inaccurate
        if self.state == STATE_HEALTHY:
            self._healthy_since = None
            if not unhealthy:
                self._unhealthy_since = None
                return
            if self._unhealthy_since is None:
                self._unhealthy_since = now
            if now - self._unhealthy_since >= config.demote_after:
                self._transition(STATE_DEGRADED,
                                 "stale" if stale else "inaccurate")
        else:
            self._unhealthy_since = None
            healthy = (not unhealthy and fresh >= config.min_samples)
            if not healthy:
                self._healthy_since = None
                return
            if self._healthy_since is None:
                self._healthy_since = now
            if now - self._healthy_since >= config.promote_after:
                self._transition(STATE_HEALTHY, "recovered")

    def _transition(self, state: str, reason: str) -> None:
        self.state = state
        self.transitions.append((self.sim.now, state, reason))
        self._unhealthy_since = None
        self._healthy_since = None
        if self.trace is not None:
            self.trace.fault_watchdog(self._track, state, reason)
        callback = (self.on_demote if state == STATE_DEGRADED
                    else self.on_promote)
        if callback is not None:
            callback(reason)

    # -- lifecycle -----------------------------------------------------------

    def enable_trace(self, bus, track: str = "ap/watchdog") -> None:
        self.trace = bus
        self._track = track

    def stop(self) -> None:
        self._timer.stop()
