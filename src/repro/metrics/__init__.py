"""Measurement utilities: time series, CDFs, tail ratios, durations."""

from repro.metrics.stats import (
    cdf_points,
    ccdf_points,
    percentile,
    tail_fraction,
)
from repro.metrics.recorder import (
    RttRecorder,
    FrameRecorder,
    RateRecorder,
    degradation_duration,
)
from repro.metrics.hotpath import (
    HotpathCostReport,
    HotpathStats,
    snapshot_ap,
    snapshot_fortune_teller,
    snapshot_updater,
)

__all__ = [
    "HotpathCostReport",
    "HotpathStats",
    "snapshot_ap",
    "snapshot_fortune_teller",
    "snapshot_updater",
    "cdf_points",
    "ccdf_points",
    "percentile",
    "tail_fraction",
    "RttRecorder",
    "FrameRecorder",
    "RateRecorder",
    "degradation_duration",
]
