"""Measurement utilities: time series, CDFs, tail ratios, durations."""

from repro.metrics.stats import (
    cdf_points,
    ccdf_points,
    percentile,
    tail_fraction,
)
from repro.metrics.recorder import (
    RttRecorder,
    FrameRecorder,
    RateRecorder,
    degradation_duration,
)

__all__ = [
    "cdf_points",
    "ccdf_points",
    "percentile",
    "tail_fraction",
    "RttRecorder",
    "FrameRecorder",
    "RateRecorder",
    "degradation_duration",
]
