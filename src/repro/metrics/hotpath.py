"""Hot-path profiling counters for the per-packet Zhuge datapath.

The estimators in :mod:`repro.core.sliding_window` each count their
operations in a plain ``.ops`` int (one add per record/query — cheap
enough to leave on permanently), and the Fortune Teller / Feedback
Updater keep their own prediction/cache/ACK counters. This module
gathers those into per-component snapshots so the Fig. 21 overhead
bench and the hot-path regression harness can report per-packet cost
and ops per component without instrumenting the datapath with timers.

Collection is one-directional: this module reads core objects by duck
typing and imports nothing from ``repro.core``, so the core package
stays free of metrics dependencies.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass
class HotpathStats:
    """Counters of one datapath component (a teller or an updater)."""

    component: str
    predictions: int = 0
    cache_hits: int = 0
    estimator_ops: int = 0
    acks_delayed: int = 0
    pending_deltas: int = 0
    tokens_outstanding: float = 0.0

    def merged_with(self, other: "HotpathStats",
                    component: str = "total") -> "HotpathStats":
        return HotpathStats(
            component=component,
            predictions=self.predictions + other.predictions,
            cache_hits=self.cache_hits + other.cache_hits,
            estimator_ops=self.estimator_ops + other.estimator_ops,
            acks_delayed=self.acks_delayed + other.acks_delayed,
            pending_deltas=self.pending_deltas + other.pending_deltas,
            tokens_outstanding=(self.tokens_outstanding
                                + other.tokens_outstanding),
        )

    def as_dict(self) -> dict:
        return asdict(self)


def snapshot_fortune_teller(teller, component: str = "fortune_teller"
                            ) -> HotpathStats:
    """Counters of one Fortune Teller and its four estimators."""
    estimator_ops = (teller.tx_rate.ops + teller.tx_rate_long.ops
                     + teller.dequeue_intervals.ops
                     + teller.burst_tracker.ops)
    return HotpathStats(
        component=component,
        predictions=teller.predictions_made,
        cache_hits=teller.cache_hits,
        estimator_ops=estimator_ops,
    )


def snapshot_updater(updater, component: str = "feedback_updater"
                     ) -> HotpathStats:
    """Counters of one out-of-band Feedback Updater."""
    return HotpathStats(
        component=component,
        estimator_ops=updater.delta_history.ops,
        acks_delayed=updater.acks_delayed,
        pending_deltas=updater.pending_delta_count,
        tokens_outstanding=updater.outstanding_tokens,
    )


def snapshot_ap(ap) -> list[HotpathStats]:
    """Per-component snapshots of a whole :class:`ZhugeAP` datapath.

    One entry for the shared Fortune Teller, one per per-flow teller
    (flow-isolating disciplines), one per out-of-band updater, plus a
    ``total`` rollup at the end.
    """
    snapshots = [snapshot_fortune_teller(ap.fortune_teller)]
    for flow, teller in getattr(ap, "_flow_tellers", {}).items():
        snapshots.append(snapshot_fortune_teller(
            teller, component=f"fortune_teller[{flow.dst_port}]"))
    for flow, updater in getattr(ap, "_oob", {}).items():
        snapshots.append(snapshot_updater(
            updater, component=f"feedback_updater[{flow.dst_port}]"))
    total = HotpathStats(component="total")
    for snap in snapshots:
        total = total.merged_with(snap)
    snapshots.append(total)
    return snapshots


@dataclass
class HotpathCostReport:
    """Per-packet wall-clock cost of one datapath stage, with its ops."""

    stage: str
    calls: int
    seconds_per_call: float
    ops_per_sec: float
    stats: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return asdict(self)
