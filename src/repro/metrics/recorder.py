"""Time-series recorders for RTT, frames, and rates.

Recorders accumulate (time, value) samples during a run; summary methods
compute the paper's metrics:

* tail-latency ratio   — P(network RTT > 200 ms),
* delayed-frame ratio  — P(frame delay > 400 ms),
* low-frame-rate ratio — P(per-second frame rate < 10 fps),
* degradation duration — total time a signal stayed above a threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.metrics.stats import tail_fraction

RTT_TAIL_THRESHOLD = 0.200
FRAME_DELAY_THRESHOLD = 0.400
LOW_FPS_THRESHOLD = 10.0


@dataclass
class RttRecorder:
    """Per-packet RTT samples measured at the sender."""

    times: list[float] = field(default_factory=list)
    rtts: list[float] = field(default_factory=list)

    def record(self, time: float, rtt: float) -> None:
        if rtt < 0:
            raise ValueError(f"negative RTT: {rtt}")
        self.times.append(time)
        self.rtts.append(rtt)

    @property
    def count(self) -> int:
        return len(self.rtts)

    def tail_ratio(self, threshold: float = RTT_TAIL_THRESHOLD) -> float:
        """Fraction of RTT samples above ``threshold`` (default 200 ms)."""
        return tail_fraction(self.rtts, threshold)

    def degradation_duration(self,
                             threshold: float = RTT_TAIL_THRESHOLD,
                             start: float | None = None) -> float:
        """Total seconds during which measured RTT exceeded ``threshold``."""
        return degradation_duration(self.times, self.rtts, threshold,
                                    start=start)


@dataclass
class FrameRecorder:
    """Frame-level delivery records measured at the receiver."""

    frame_times: list[float] = field(default_factory=list)   # decode instants
    frame_delays: list[float] = field(default_factory=list)  # encode->decode

    def record(self, decode_time: float, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative frame delay: {delay}")
        self.frame_times.append(decode_time)
        self.frame_delays.append(delay)

    @property
    def count(self) -> int:
        return len(self.frame_delays)

    def delayed_ratio(self,
                      threshold: float = FRAME_DELAY_THRESHOLD) -> float:
        """Fraction of frames with delay above ``threshold`` (default 400 ms)."""
        return tail_fraction(self.frame_delays, threshold)

    def delay_degradation_duration(
            self, threshold: float = FRAME_DELAY_THRESHOLD,
            start: float | None = None) -> float:
        return degradation_duration(self.frame_times, self.frame_delays,
                                    threshold, start=start)

    def per_second_fps(self, duration: float,
                       start: float = 0.0) -> list[float]:
        """Frame *rate* in each 1 s bucket of [start, start+duration).

        A non-integer duration gets a final partial bucket whose count is
        normalized by its width, so a 0.5 s tail with 12 frames reports
        24 fps rather than an artificial low-fps second (and frames in
        the tail are counted at all — they used to be silently dropped).
        Integer durations are bit-identical to the raw per-second counts.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        n = max(1, math.ceil(duration))
        buckets = [0] * n
        for t in self.frame_times:
            offset = t - start
            if 0 <= offset < duration:
                buckets[min(int(offset), n - 1)] += 1
        fps = [float(b) for b in buckets]
        partial = duration - (n - 1)
        if partial < 1.0:
            fps[-1] = buckets[-1] / partial
        return fps

    def low_fps_ratio(self, duration: float, start: float = 0.0,
                      threshold: float = LOW_FPS_THRESHOLD) -> float:
        """Fraction of seconds with a frame rate below ``threshold``."""
        fps = self.per_second_fps(duration, start)
        return tail_fraction(fps, threshold, above=False)

    def low_fps_duration(self, duration: float, start: float = 0.0,
                         threshold: float = LOW_FPS_THRESHOLD) -> float:
        """Seconds during which the per-second frame rate was below threshold.

        The final bucket of a non-integer duration only spans its partial
        width, so it contributes that width (not a full second).
        """
        fps = self.per_second_fps(duration, start)
        partial = duration - (len(fps) - 1)
        total = 0.0
        for i, f in enumerate(fps):
            if f < threshold:
                total += partial if (i == len(fps) - 1
                                     and partial < 1.0) else 1.0
        return total


@dataclass
class RateRecorder:
    """Sender-side rate (bitrate / cwnd-equivalent) over time."""

    times: list[float] = field(default_factory=list)
    rates: list[float] = field(default_factory=list)

    def record(self, time: float, rate: float) -> None:
        self.times.append(time)
        self.rates.append(rate)

    def mean_rate(self, start: float = 0.0) -> float:
        values = [r for t, r in zip(self.times, self.rates) if t >= start]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def reconvergence_duration(self, drop_time: float,
                               target_rate: float,
                               slack: float = 1.3) -> float:
        """Time after ``drop_time`` until the rate stays within
        ``slack * target_rate`` — the Fig. 4b re-convergence metric."""
        limit = target_rate * slack
        last_violation = drop_time
        for t, r in zip(self.times, self.rates):
            if t >= drop_time and r > limit:
                last_violation = t
        return max(0.0, last_violation - drop_time)


def degradation_duration(times: list[float], values: list[float],
                         threshold: float,
                         start: float | None = None) -> float:
    """Total time ``values`` (sampled at ``times``) exceeded ``threshold``.

    Each sample is assumed to hold until the next sample. Samples before
    ``start`` are ignored.
    """
    if len(times) != len(values):
        raise ValueError("times and values must have equal length")
    total = 0.0
    for i, (t, v) in enumerate(zip(times, values)):
        if start is not None and t < start:
            continue
        if v <= threshold:
            continue
        if i + 1 < len(times):
            total += times[i + 1] - t
        # The final sample contributes nothing: its holding time is unknown.
    return total
