"""Distribution statistics used by every experiment.

Pure functions over lists of samples; no simulator dependency so they
are usable in post-processing and tests alike.
"""

from __future__ import annotations

import math
from typing import Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100]: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    # This form is exact when both neighbours are equal (no float drift).
    return ordered[low] + (ordered[high] - ordered[low]) * weight


def tail_fraction(samples: Sequence[float], threshold: float,
                  above: bool = True) -> float:
    """Fraction of samples beyond ``threshold``.

    ``above=True`` counts samples strictly greater (tail-latency style);
    ``above=False`` counts samples strictly smaller (low-frame-rate style).
    """
    if not samples:
        return 0.0
    if above:
        count = sum(1 for s in samples if s > threshold)
    else:
        count = sum(1 for s in samples if s < threshold)
    return count / len(samples)


def cdf_points(samples: Sequence[float],
               points: int = 200) -> list[tuple[float, float]]:
    """(value, P(X <= value)) pairs, subsampled to at most ``points``."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    step = max(1, n // points)
    out = []
    last_rank = 0
    for i in range(0, n, step):
        out.append((ordered[i], (i + 1) / n))
        last_rank = i
    # Close the curve by *rank*, not value: when subsampling skips the
    # final rank but the max value is duplicated, a value comparison
    # would leave the curve ending below 1.0 (a phantom CCDF tail with
    # P(X > max) > 0).
    if last_rank != n - 1:
        out.append((ordered[-1], 1.0))
    return out


def ccdf_points(samples: Sequence[float],
                points: int = 200) -> list[tuple[float, float]]:
    """(value, P(X > value)) pairs — the 1-CDF curves of Figs. 2 and 13."""
    return [(value, max(0.0, 1.0 - p)) for value, p in cdf_points(samples, points)]


def mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("mean of empty sample set")
    return sum(samples) / len(samples)


def jain_fairness(rates: Sequence[float]) -> float:
    """Jain's fairness index over per-flow rates (1.0 = perfectly fair)."""
    if not rates:
        raise ValueError("fairness of empty rate set")
    total = sum(rates)
    squares = sum(r * r for r in rates)
    if squares == 0:
        return 1.0
    # Subnormal rates can push the quotient past 1.0 by a few ulps;
    # the index is bounded above by 1 (Cauchy-Schwarz), so clamp.
    return min(1.0, (total * total) / (len(rates) * squares))
