"""Packet-level network substrate.

Packets, flows, drop-tail queues, wired links, and simple forwarding
nodes. Wireless links live in :mod:`repro.wireless`; queue disciplines
beyond drop-tail live in :mod:`repro.aqm`.
"""

from repro.net.packet import Packet, PacketKind, FiveTuple
from repro.net.queue import DropTailQueue, QueueStats
from repro.net.link import WiredLink
from repro.net.node import Node, PacketSink, PacketHandler

__all__ = [
    "Packet",
    "PacketKind",
    "FiveTuple",
    "DropTailQueue",
    "QueueStats",
    "WiredLink",
    "Node",
    "PacketSink",
    "PacketHandler",
]
