"""Wired point-to-point link.

Models serialization (bytes / rate) plus fixed propagation delay, with an
attached :class:`~repro.net.queue.DropTailQueue` (or an AQM subclass).
The WAN segment between the sender and the AP is a ``WiredLink``; the
wireless hop is modelled separately in :mod:`repro.wireless`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator

DeliverCallback = Callable[[Packet], None]


class WiredLink:
    """Fixed-rate link with propagation delay and an egress queue.

    ``rate_bps`` of 0 or ``None`` means infinite rate (pure delay line),
    which is how we model uncongested reverse WAN paths.
    """

    def __init__(self, sim: Simulator, rate_bps: Optional[float],
                 delay: float, queue: Optional[DropTailQueue] = None,
                 name: str = "link"):
        if delay < 0:
            raise ValueError(f"delay must be non-negative: {delay}")
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError(f"rate must be positive or None: {rate_bps}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        # Explicit None check: an empty DropTailQueue is falsy (len == 0),
        # so ``queue or default`` would silently discard a provided queue.
        self.queue = queue if queue is not None else DropTailQueue(name=f"{name}-q")
        self.name = name
        self.deliver: Optional[DeliverCallback] = None
        self._busy = False
        #: Packet currently serializing, and packets propagating toward
        #: the far end (oldest first). Events are bound methods popping
        #: from these instead of per-packet lambdas: the propagation
        #: delay is fixed, so arrivals complete in send order.
        self._tx_packet: Optional[Packet] = None
        from collections import deque
        self._inflight: "deque[Packet]" = deque()

    def send(self, packet: Packet) -> None:
        """Accept a packet for transmission (may queue or drop it)."""
        if self.rate_bps is None:
            # Infinite-rate delay line: bypass the queue entirely.
            self._inflight.append(packet)
            self.sim.schedule(self.delay, self._arrive)
            return
        if self.queue.enqueue(packet, self.sim.now) and not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue(self.sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self._tx_packet = packet
        tx_time = packet.size * 8 / self.rate_bps
        self.sim.schedule(tx_time, self._finish)

    def _finish(self) -> None:
        self._inflight.append(self._tx_packet)
        self._tx_packet = None
        self.sim.schedule(self.delay, self._arrive)
        self._start_transmission()

    def _arrive(self) -> None:
        packet = self._inflight.popleft()
        if self.deliver is not None:
            packet.received_at = self.sim.now
            self.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        rate = "inf" if self.rate_bps is None else f"{self.rate_bps / 1e6:.1f}Mbps"
        return f"WiredLink({self.name}, {rate}, {self.delay * 1e3:.1f}ms)"
