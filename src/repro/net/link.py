"""Wired point-to-point link.

Models serialization (bytes / rate) plus fixed propagation delay, with an
attached :class:`~repro.net.queue.DropTailQueue` (or an AQM subclass).
The WAN segment between the sender and the AP is a ``WiredLink``; the
wireless hop is modelled separately in :mod:`repro.wireless`.

Event models (PR 10)
--------------------
Under ``REPRO_EVENT_MODEL=classic`` every packet costs three events
(serialization finish, propagation arrival, plus the enqueue-side
bookkeeping).  The default **macro** model replaces the whole chain
with an *analytic virtual server*: ``send`` computes the packet's
serialization start (``max(now, tail_finish)``), finish
(``start + size*8/rate`` — the identical float expression the classic
path evaluates) and arrival (``finish + delay``) in place, and pushes
the packet onto a single :class:`~repro.sim.engine.TimedRun` arrival
stream — one sentinel heap entry per burst instead of two events per
packet.  Tail-drop fidelity is preserved by a *committed-bytes* ledger:
packets whose serialization has not started yet still occupy queue
capacity, exactly as the classic queue's ``_bytes`` would at the same
instant.  Queue stats totals and per-packet ``enqueued_at`` /
``dequeued_at`` stamps are identical in both modes; a link whose queue
has trace probes or arrival/departure observers (or an AQM subclass)
falls back to the classic path automatically, so observability and
AQM semantics never silently change.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator

DeliverCallback = Callable[[Packet], None]


class WiredLink:
    """Fixed-rate link with propagation delay and an egress queue.

    ``rate_bps`` of 0 or ``None`` means infinite rate (pure delay line),
    which is how we model uncongested reverse WAN paths.
    """

    def __init__(self, sim: Simulator, rate_bps: Optional[float],
                 delay: float, queue: Optional[DropTailQueue] = None,
                 name: str = "link"):
        if delay < 0:
            raise ValueError(f"delay must be non-negative: {delay}")
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError(f"rate must be positive or None: {rate_bps}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        # Explicit None check: an empty DropTailQueue is falsy (len == 0),
        # so ``queue or default`` would silently discard a provided queue.
        self.queue = queue if queue is not None else DropTailQueue(name=f"{name}-q")
        self.name = name
        self.deliver: Optional[DeliverCallback] = None
        #: Optional whole-batch delivery callback (macro mode): must be
        #: observably identical to calling ``deliver`` per packet.  Used
        #: for arrivals that share one instant (e.g. the ACK burst a
        #: txop's worth of deliveries sends down a pure delay line).
        self.deliver_batch: Optional[Callable[[list], None]] = None
        self._busy = False
        #: Packet currently serializing, and packets propagating toward
        #: the far end (oldest first). Events are bound methods popping
        #: from these instead of per-packet lambdas: the propagation
        #: delay is fixed, so arrivals complete in send order.
        self._tx_packet: Optional[Packet] = None
        from collections import deque
        self._inflight: "deque[Packet]" = deque()
        #: Event model, resolved lazily at the first send (observers and
        #: trace probes are attached between construction and the run):
        #: None = undecided, then True (analytic macro path) or False
        #: (classic per-packet events) for the link's lifetime.
        self._macro: Optional[bool] = None
        self._arrive_run = None
        self._arrive_push = None
        #: Analytic-server state: absolute time the serializer frees,
        #: and the (start, size) ledger of accepted packets whose
        #: serialization has not begun — they still occupy capacity.
        self._tail_finish = 0.0
        self._committed: "deque[tuple[float, int]]" = deque()
        self._phantom_bytes = 0

    def _resolve_macro(self) -> bool:
        """Pick the event model once, at the first send."""
        queue = self.queue
        macro = (self.sim.event_model == "macro"
                 and type(queue) is DropTailQueue
                 and queue.trace is None
                 and not queue.on_arrival
                 and not queue.on_departure)
        if macro:
            self._arrive_run = self.sim.timed_run(self._macro_arrive)
            self._arrive_run.fn_batch = self._macro_arrive_batch
            self._arrive_push = self._arrive_run.push
            # Rebind the entry point to the resolved fast path: callers
            # that look ``link.send`` up per packet (the hot path) skip
            # the mode dispatch from the second packet on.  Callers
            # holding a reference bound before the first send still go
            # through the generic ``send``, which stays correct.
            self.send = (self._delay_send if self.rate_bps is None
                         else self._macro_send)
        self._macro = macro
        return macro

    def send(self, packet: Packet) -> None:
        """Accept a packet for transmission (may queue or drop it)."""
        macro = self._macro
        if macro is None:
            macro = self._resolve_macro()
        if self.rate_bps is None:
            # Infinite-rate delay line: bypass the queue entirely.
            if macro:
                self._delay_send(packet)
            else:
                self._inflight.append(packet)
                self.sim.schedule(self.delay, self._arrive)
            return
        if macro:
            self._macro_send(packet)
            return
        if self.queue.enqueue(packet, self.sim.now) and not self._busy:
            self._start_transmission()

    def _delay_send(self, packet: Packet) -> None:
        """Macro delay line: one run push per packet, no queue, no events.

        Seq is taken at push time, exactly when the classic path would
        schedule its arrival event: tie order against foreign events is
        preserved.
        """
        self._arrive_push(self.sim._now + self.delay, packet)

    def send_batch(self, packets: list) -> None:
        """Send several packets at one instant.

        On a macro delay line the whole batch becomes one seq-consecutive
        run extension — observably identical to looping :meth:`send`
        (each packet would take the next seq with nothing in between).
        Rate-limited or classic links just loop.
        """
        macro = self._macro
        if macro is None:
            macro = self._resolve_macro()
        if macro and self.rate_bps is None:
            self._arrive_run.push_batch(self.sim._now + self.delay, packets)
            return
        send = self.send
        for packet in packets:
            send(packet)

    def _macro_send(self, packet: Packet) -> None:
        """Analytic virtual server: queue+serialize+propagate in place.

        Arithmetic order matches the classic path operation for
        operation (``start + size * 8 / rate``, then ``finish + delay``),
        so computed timestamps are bit-identical.  The settle loop
        releases capacity held by packets whose serialization has
        started (``start <= now``) — the classic queue dequeues exactly
        at those start times, so the ledger equals classic ``_bytes``
        at every send instant.
        """
        now = self.sim._now
        committed = self._committed
        phantom = self._phantom_bytes
        while committed and committed[0][0] <= now:
            phantom -= committed.popleft()[1]
        queue = self.queue
        size = packet.size
        if queue._bytes + phantom + size > queue.capacity_bytes:
            self._phantom_bytes = phantom
            queue._drop(packet, "tail-overflow")
            return
        start = self._tail_finish
        if start < now:
            start = now
        finish = start + size * 8 / self.rate_bps
        self._tail_finish = finish
        packet.enqueued_at = now
        packet.dequeued_at = start
        stats = queue.stats
        stats.enqueued += 1
        stats.bytes_enqueued += size
        stats.dequeued += 1
        stats.bytes_dequeued += size
        committed.append((start, size))
        self._phantom_bytes = phantom + size
        self._arrive_push(finish + self.delay, packet)

    def _macro_arrive(self, packet: Packet) -> None:
        """TimedRun dispatcher: one delivered packet at its arrival time."""
        deliver = self.deliver
        if deliver is not None:
            sim = self.sim
            sim.packets_processed += 1
            packet.received_at = sim._now
            deliver(packet)

    def _macro_arrive_batch(self, packets: list) -> None:
        """Same-instant batch twin of :meth:`_macro_arrive`.

        Packet-for-packet identical bookkeeping; with a wired
        ``deliver_batch`` the whole burst lands in one receiver call
        (e.g. ``ZhugeAP.on_ack_batch``), otherwise the per-packet
        deliverer is looped.
        """
        deliver_batch = self.deliver_batch
        if deliver_batch is not None:
            sim = self.sim
            sim.packets_processed += len(packets)
            now = sim._now
            for packet in packets:
                packet.received_at = now
            deliver_batch(packets)
            return
        deliver = self.deliver
        if deliver is not None:
            sim = self.sim
            sim.packets_processed += len(packets)
            now = sim._now
            for packet in packets:
                packet.received_at = now
                deliver(packet)

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue(self.sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self._tx_packet = packet
        tx_time = packet.size * 8 / self.rate_bps
        self.sim.schedule(tx_time, self._finish)

    def _finish(self) -> None:
        self._inflight.append(self._tx_packet)
        self._tx_packet = None
        self.sim.schedule(self.delay, self._arrive)
        self._start_transmission()

    def _arrive(self) -> None:
        packet = self._inflight.popleft()
        if self.deliver is not None:
            self.sim.packets_processed += 1
            packet.received_at = self.sim.now
            self.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        rate = "inf" if self.rate_bps is None else f"{self.rate_bps / 1e6:.1f}Mbps"
        return f"WiredLink({self.name}, {rate}, {self.delay * 1e3:.1f}ms)"
