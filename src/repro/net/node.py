"""Forwarding nodes and packet sinks.

A :class:`Node` dispatches received packets to registered handlers by
flow five-tuple (with a default handler as fallback). Middleboxes such
as the Zhuge AP are handlers that forward onward after doing their work.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import FiveTuple, Packet

PacketHandler = Callable[[Packet], None]


class Node:
    """Named packet dispatcher."""

    def __init__(self, name: str):
        self.name = name
        self._handlers: dict[FiveTuple, PacketHandler] = {}
        self._default: Optional[PacketHandler] = None
        self.received = 0

    def register(self, flow: FiveTuple, handler: PacketHandler) -> None:
        """Route packets of ``flow`` to ``handler``."""
        self._handlers[flow] = handler

    def set_default(self, handler: PacketHandler) -> None:
        """Handler for packets with no per-flow registration."""
        self._default = handler

    def receive(self, packet: Packet) -> None:
        self.received += 1
        handler = self._handlers.get(packet.flow, self._default)
        if handler is not None:
            handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Node({self.name}, {len(self._handlers)} flows)"


class PacketSink:
    """Terminal endpoint that stores everything it receives."""

    def __init__(self, name: str = "sink"):
        self.name = name
        self.packets: list[Packet] = []

    def receive(self, packet: Packet) -> None:
        self.packets.append(packet)

    @property
    def count(self) -> int:
        return len(self.packets)

    @property
    def total_bytes(self) -> int:
        return sum(packet.size for packet in self.packets)
