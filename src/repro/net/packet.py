"""Packet and flow-identity types.

A :class:`Packet` is the unit moved by links and queues. Transport
protocols attach their headers in typed attributes rather than raw bytes;
middleboxes that must treat payloads as opaque (Zhuge in out-of-band
mode) only ever read the :class:`FiveTuple` and timestamps.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class PacketKind(enum.Enum):
    """Coarse packet classification used by middleboxes and queues."""

    DATA = "data"            # downlink payload (TCP segment / RTP packet)
    ACK = "ack"              # out-of-band feedback (TCP/QUIC ACK)
    RTCP_TWCC = "rtcp_twcc"  # in-band TWCC feedback packet
    RTCP_OTHER = "rtcp_other"  # receiver reports, NACKs, ...
    CONTROL = "control"      # explicit-feedback control (ABC fields, etc.)


@dataclass(frozen=True)
class FiveTuple:
    """Flow identity: the only thing Zhuge needs to match a flow."""

    src: str
    dst: str
    src_port: int
    dst_port: int
    proto: str = "udp"

    def reversed(self) -> "FiveTuple":
        """Identity of packets travelling the opposite direction."""
        return FiveTuple(self.dst, self.src, self.dst_port,
                         self.src_port, self.proto)


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A simulated packet.

    Attributes:
        flow: the packet's five-tuple.
        size: bytes on the wire (headers included).
        kind: coarse classification (data vs feedback).
        seq: transport sequence number (byte- or packet-based, protocol
            defined); opaque to middleboxes.
        ack: cumulative acknowledgement carried by feedback packets.
        sent_at: time the sender emitted the packet.
        headers: per-protocol annotations (TWCC seq, frame ids, ECN-style
            marks). Middleboxes may add keys; end hosts own the schema.
    """

    flow: FiveTuple
    size: int
    kind: PacketKind = PacketKind.DATA
    seq: int = -1
    ack: int = -1
    sent_at: float = 0.0
    headers: dict[str, Any] = field(default_factory=dict)
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))

    # Timestamps stamped by the AP / receiver as the packet moves.
    enqueued_at: Optional[float] = None
    dequeued_at: Optional[float] = None
    received_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive: {self.size}")

    @property
    def bits(self) -> int:
        return self.size * 8

    def copy_header(self, key: str, default: Any = None) -> Any:
        return self.headers.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Packet(id={self.pkt_id}, {self.kind.value}, "
                f"seq={self.seq}, size={self.size})")


# Conventional sizes (bytes) used across the reproduction.
MTU = 1500
RTP_PAYLOAD_SIZE = 1200
TCP_SEGMENT_SIZE = 1448
ACK_SIZE = 60
RTCP_SIZE = 120
