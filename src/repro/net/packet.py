"""Packet and flow-identity types.

A :class:`Packet` is the unit moved by links and queues. Transport
protocols attach their headers in typed attributes rather than raw bytes;
middleboxes that must treat payloads as opaque (Zhuge in out-of-band
mode) only ever read the :class:`FiveTuple` and timestamps.

Both types use allocation-lean layouts (PR 6): :class:`FiveTuple` is a
``NamedTuple`` — construction, hashing, and equality run as plain tuple
operations in C, which matters because the AP hashes a five-tuple per
packet — and :class:`Packet` is a ``__slots__`` class, dropping the
per-instance ``__dict__`` on the millions of packets a campaign creates.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, NamedTuple, Optional


class PacketKind(enum.Enum):
    """Coarse packet classification used by middleboxes and queues."""

    DATA = "data"            # downlink payload (TCP segment / RTP packet)
    ACK = "ack"              # out-of-band feedback (TCP/QUIC ACK)
    RTCP_TWCC = "rtcp_twcc"  # in-band TWCC feedback packet
    RTCP_OTHER = "rtcp_other"  # receiver reports, NACKs, ...
    CONTROL = "control"      # explicit-feedback control (ABC fields, etc.)


class FiveTuple(NamedTuple):
    """Flow identity: the only thing Zhuge needs to match a flow."""

    src: str
    dst: str
    src_port: int
    dst_port: int
    proto: str = "udp"

    def reversed(self) -> "FiveTuple":
        """Identity of packets travelling the opposite direction."""
        return FiveTuple(self.dst, self.src, self.dst_port,
                         self.src_port, self.proto)


_packet_ids = itertools.count(1)


class Packet:
    """A simulated packet.

    Attributes:
        flow: the packet's five-tuple.
        size: bytes on the wire (headers included).
        kind: coarse classification (data vs feedback).
        seq: transport sequence number (byte- or packet-based, protocol
            defined); opaque to middleboxes.
        ack: cumulative acknowledgement carried by feedback packets.
        sent_at: time the sender emitted the packet.
        headers: per-protocol annotations (TWCC seq, frame ids, ECN-style
            marks). Middleboxes may add keys; end hosts own the schema.
        enqueued_at / dequeued_at / received_at: timestamps stamped by
            the AP / receiver as the packet moves.
    """

    __slots__ = ("flow", "size", "kind", "seq", "ack", "sent_at",
                 "headers", "pkt_id", "enqueued_at", "dequeued_at",
                 "received_at")

    def __init__(self, flow: FiveTuple, size: int,
                 kind: PacketKind = PacketKind.DATA,
                 seq: int = -1, ack: int = -1, sent_at: float = 0.0,
                 headers: Optional[dict[str, Any]] = None,
                 pkt_id: Optional[int] = None,
                 enqueued_at: Optional[float] = None,
                 dequeued_at: Optional[float] = None,
                 received_at: Optional[float] = None):
        if size <= 0:
            raise ValueError(f"packet size must be positive: {size}")
        self.flow = flow
        self.size = size
        self.kind = kind
        self.seq = seq
        self.ack = ack
        self.sent_at = sent_at
        self.headers = {} if headers is None else headers
        self.pkt_id = next(_packet_ids) if pkt_id is None else pkt_id
        self.enqueued_at = enqueued_at
        self.dequeued_at = dequeued_at
        self.received_at = received_at

    @property
    def bits(self) -> int:
        return self.size * 8

    def copy_header(self, key: str, default: Any = None) -> Any:
        return self.headers.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Packet(id={self.pkt_id}, {self.kind.value}, "
                f"seq={self.seq}, size={self.size})")


# Conventional sizes (bytes) used across the reproduction.
MTU = 1500
RTP_PAYLOAD_SIZE = 1200
TCP_SEGMENT_SIZE = 1448
ACK_SIZE = 60
RTCP_SIZE = 120
