"""Drop-tail queue with the observability hooks Zhuge needs.

The queue exposes, at any instant:

* ``byte_length`` / ``packet_length`` — current backlog,
* ``front_wait_time(now)`` — how long the head packet has waited so far
  (the ``qShort`` signal of the Fortune Teller),
* arrival/departure callbacks so a middlebox can observe every packet
  without the queue knowing about it.

Queue disciplines that reorder or drop differently (CoDel, FQ-CoDel)
wrap or subclass this class; see :mod:`repro.aqm`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.packet import Packet


@dataclass
class QueueStats:
    """Counters accumulated over the queue's lifetime."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    bytes_enqueued: int = 0
    bytes_dequeued: int = 0
    bytes_dropped: int = 0
    drop_reasons: dict[str, int] = field(default_factory=dict)

    def record_drop(self, packet: Packet, reason: str) -> None:
        self.dropped += 1
        self.bytes_dropped += packet.size
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1


ArrivalCallback = Callable[[Packet, "DropTailQueue"], None]
DepartureCallback = Callable[[Packet, "DropTailQueue"], None]
DropCallback = Callable[[Packet, str], None]


class DropTailQueue:
    """FIFO byte-bounded queue.

    Packets above ``capacity_bytes`` are dropped at the tail. Each packet
    is stamped with its enqueue time so waiting times are measurable.
    """

    def __init__(self, capacity_bytes: int = 375_000, name: str = "queue"):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._packets: deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()
        self.on_arrival: list[ArrivalCallback] = []
        self.on_departure: list[DepartureCallback] = []
        self.on_drop: list[DropCallback] = []
        #: Tracing probe (:class:`repro.obs.bus.TraceBus`); ``None`` =
        #: disabled, and every probe site is a single attribute check.
        self.trace = None

    # -- state inspection -------------------------------------------------

    @property
    def byte_length(self) -> int:
        """Bytes currently queued."""
        return self._bytes

    @property
    def packet_length(self) -> int:
        """Packets currently queued."""
        return len(self._packets)

    @property
    def is_empty(self) -> bool:
        return not self._packets

    def front(self) -> Optional[Packet]:
        """Peek the head packet without removing it."""
        return self._packets[0] if self._packets else None

    def front_wait_time(self, now: float) -> float:
        """Seconds the head packet has waited so far (0 if empty)."""
        head = self.front()
        if head is None or head.enqueued_at is None:
            return 0.0
        return max(0.0, now - head.enqueued_at)

    # -- mutation ----------------------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Append ``packet``; returns False (and drops) when full."""
        if self._bytes + packet.size > self.capacity_bytes:
            self._drop(packet, "tail-overflow")
            return False
        packet.enqueued_at = now
        self._packets.append(packet)
        self._bytes += packet.size
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size
        if self.trace is not None:
            self.trace.queue_enqueue(self, packet)
        for callback in self.on_arrival:
            callback(packet, self)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty.

        Subclasses (AQMs) may drop packets here before returning one.
        """
        packet = self._pop_head(now)
        if packet is not None:
            for callback in self.on_departure:
                callback(packet, self)
        return packet

    def _pop_head(self, now: float) -> Optional[Packet]:
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._bytes -= packet.size
        packet.dequeued_at = now
        self.stats.dequeued += 1
        self.stats.bytes_dequeued += packet.size
        if self.trace is not None:
            self.trace.queue_dequeue(self, packet)
        return packet

    def _drop(self, packet: Packet, reason: str) -> None:
        self.stats.record_drop(packet, reason)
        if self.trace is not None:
            self.trace.queue_drop(self, packet, reason)
        for callback in self.on_drop:
            callback(packet, reason)

    def clear(self) -> None:
        """Discard all queued packets without counting them as drops."""
        self._packets.clear()
        self._bytes = 0

    def drop_all(self, reason: str) -> int:
        """Drop every queued packet, firing stats and drop callbacks.

        Unlike :meth:`clear`, this is an observable loss event (a client
        roam flushing in-flight packets): the AP's loss reporting and
        the trace see every packet. Returns the number dropped.
        """
        dropped = 0
        while self._packets:
            packet = self._packets.popleft()
            self._bytes -= packet.size
            self._drop(packet, reason)
            dropped += 1
        return dropped

    def __len__(self) -> int:
        return len(self._packets)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"{type(self).__name__}({self.name}: "
                f"{len(self._packets)} pkts, {self._bytes} B)")
