"""Drop-tail queue with the observability hooks Zhuge needs.

The queue exposes, at any instant:

* ``byte_length`` / ``packet_length`` — current backlog,
* ``front_wait_time(now)`` — how long the head packet has waited so far
  (the ``qShort`` signal of the Fortune Teller),
* arrival/departure callbacks so a middlebox can observe every packet
  without the queue knowing about it.

Queue disciplines that reorder or drop differently (CoDel, FQ-CoDel)
wrap or subclass this class; see :mod:`repro.aqm`.

``dequeue_burst`` (PR 6) drains a txop's worth of head packets in one
call — the wireless link's AMPDU aggregation loop without the
per-packet ``front``/``dequeue`` dispatch — while firing exactly the
same per-packet stats, trace probes, and departure callbacks in the
same order as repeated ``dequeue`` calls would.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.packet import Packet


@dataclass(slots=True)
class QueueStats:
    """Counters accumulated over the queue's lifetime."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    bytes_enqueued: int = 0
    bytes_dequeued: int = 0
    bytes_dropped: int = 0
    drop_reasons: dict[str, int] = field(default_factory=dict)

    def record_drop(self, packet: Packet, reason: str) -> None:
        self.dropped += 1
        self.bytes_dropped += packet.size
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1


ArrivalCallback = Callable[[Packet, "DropTailQueue"], None]
DepartureCallback = Callable[[Packet, "DropTailQueue"], None]
DropCallback = Callable[[Packet, str], None]


class DropTailQueue:
    """FIFO byte-bounded queue.

    Packets above ``capacity_bytes`` are dropped at the tail. Each packet
    is stamped with its enqueue time so waiting times are measurable.
    """

    def __init__(self, capacity_bytes: int = 375_000, name: str = "queue"):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._packets: deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()
        self.on_arrival: list[ArrivalCallback] = []
        self.on_departure: list[DepartureCallback] = []
        #: Same-instant batch twins of ``on_departure`` subscribers.
        #: ``dequeue_burst`` fires one ``callback(burst, queue)`` per
        #: subscriber instead of per packet — but only when *every*
        #: per-packet subscriber registered a twin here (the lists are
        #: appended to in pairs).  Twins must be observably identical
        #: to looping the per-packet callback over the burst, must not
        #: read queue state (they run after the whole burst drained,
        #: not mid-drain), and must not depend on ordering relative to
        #: other subscribers.
        self.on_departure_batch: list = []
        self.on_drop: list[DropCallback] = []
        #: Tracing probe (:class:`repro.obs.bus.TraceBus`); ``None`` =
        #: disabled, and every probe site is a single attribute check.
        self.trace = None
        #: True only for exact DropTailQueue instances: subclasses (AQMs,
        #: probe-free benchmark shims) may override dequeue/_pop_head, so
        #: ``dequeue_burst`` must take the generic per-packet path.
        self._plain = type(self) is DropTailQueue

    # -- state inspection -------------------------------------------------

    @property
    def byte_length(self) -> int:
        """Bytes currently queued."""
        return self._bytes

    @property
    def packet_length(self) -> int:
        """Packets currently queued."""
        return len(self._packets)

    @property
    def is_empty(self) -> bool:
        return not self._packets

    def front(self) -> Optional[Packet]:
        """Peek the head packet without removing it."""
        return self._packets[0] if self._packets else None

    def front_wait_time(self, now: float) -> float:
        """Seconds the head packet has waited so far (0 if empty)."""
        head = self.front()
        if head is None or head.enqueued_at is None:
            return 0.0
        return max(0.0, now - head.enqueued_at)

    # -- mutation ----------------------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Append ``packet``; returns False (and drops) when full."""
        if self._bytes + packet.size > self.capacity_bytes:
            self._drop(packet, "tail-overflow")
            return False
        packet.enqueued_at = now
        self._packets.append(packet)
        self._bytes += packet.size
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size
        if self.trace is not None:
            self.trace.queue_enqueue(self, packet)
        for callback in self.on_arrival:
            callback(packet, self)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty.

        Subclasses (AQMs) may drop packets here before returning one.
        """
        packet = self._pop_head(now)
        if packet is not None:
            for callback in self.on_departure:
                callback(packet, self)
        return packet

    def dequeue_burst(self, now: float, max_packets: int,
                      max_bytes: int) -> list[Packet]:
        """Drain up to ``max_packets`` head packets in one call.

        The byte cap applies from the second packet on (the head always
        transmits, even oversized), matching AMPDU aggregation. Per
        packet, the stats / trace / departure-callback sequence is
        exactly what repeated :meth:`dequeue` calls produce, so burst
        draining is observably identical — just cheaper.

        Subclasses that override :meth:`dequeue` or :meth:`_pop_head`
        (AQMs that drop at the head) are served by a generic loop over
        the public interface instead of the direct-deque fast path.
        """
        if not self._plain:
            burst: list[Packet] = []
            burst_bytes = 0
            while len(burst) < max_packets and not self.is_empty:
                head = self.front()
                if (burst and head is not None
                        and burst_bytes + head.size > max_bytes):
                    break
                packet = self.dequeue(now)
                if packet is None:
                    break
                burst.append(packet)
                burst_bytes += packet.size
            return burst

        packets = self._packets
        if not packets:
            return []
        popleft = packets.popleft
        stats = self.stats
        trace = self.trace
        departures = self.on_departure
        # Batch departure dispatch: when every subscriber has a
        # same-instant twin, fire each twin once with the whole burst
        # (all stamped with one ``now``) instead of once per packet.
        use_batch = (bool(departures)
                     and len(self.on_departure_batch) == len(departures))
        fire = bool(departures) and not use_batch
        burst = []
        append = burst.append
        burst_bytes = 0
        count = 0
        while packets and count < max_packets:
            head = packets[0]
            size = head.size
            if count and burst_bytes + size > max_bytes:
                break
            popleft()
            self._bytes -= size
            head.dequeued_at = now
            stats.dequeued += 1
            stats.bytes_dequeued += size
            if trace is not None:
                trace.queue_dequeue(self, head)
            append(head)
            burst_bytes += size
            count += 1
            if fire:
                for callback in departures:
                    callback(head, self)
        if use_batch and burst:
            if count == 1:
                head = burst[0]
                for callback in departures:
                    callback(head, self)
            else:
                for callback in self.on_departure_batch:
                    callback(burst, self)
        return burst

    def _pop_head(self, now: float) -> Optional[Packet]:
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._bytes -= packet.size
        packet.dequeued_at = now
        self.stats.dequeued += 1
        self.stats.bytes_dequeued += packet.size
        if self.trace is not None:
            self.trace.queue_dequeue(self, packet)
        return packet

    def _drop(self, packet: Packet, reason: str) -> None:
        self.stats.record_drop(packet, reason)
        if self.trace is not None:
            self.trace.queue_drop(self, packet, reason)
        for callback in self.on_drop:
            callback(packet, reason)

    def clear(self) -> None:
        """Discard all queued packets without counting them as drops."""
        self._packets.clear()
        self._bytes = 0

    def trim_head(self, limit_bytes: int, reason: str) -> int:
        """Drop *head* packets until the backlog fits ``limit_bytes``.

        The inverse of tail-dropping: the oldest packets are the stalest
        ones, and for real-time traffic a stale packet delivered late is
        worth less than the loss signal its drop produces. The control
        layer uses this when a policy clamps the queue mid-backlog.
        Returns the number dropped; stats and drop callbacks fire per
        packet, exactly like an overflow drop.
        """
        dropped = 0
        while self._packets and self._bytes > limit_bytes:
            packet = self._packets.popleft()
            self._bytes -= packet.size
            self._drop(packet, reason)
            dropped += 1
        return dropped

    def trim_aged(self, now: float, max_age: float, reason: str) -> int:
        """Drop head packets that have waited longer than ``max_age``.

        A sojourn ceiling for real-time traffic: once a packet has
        queued past the bound it will arrive too late to matter, so it
        is shed where it stands instead of consuming link time. Stops
        at the first young-enough packet (FIFO order means everything
        behind it is younger still). Returns the number dropped.
        """
        dropped = 0
        while self._packets:
            head = self._packets[0]
            if head.enqueued_at is None or now - head.enqueued_at <= max_age:
                break
            self._packets.popleft()
            self._bytes -= head.size
            self._drop(head, reason)
            dropped += 1
        return dropped

    def drop_all(self, reason: str) -> int:
        """Drop every queued packet, firing stats and drop callbacks.

        Unlike :meth:`clear`, this is an observable loss event (a client
        roam flushing in-flight packets): the AP's loss reporting and
        the trace see every packet. Returns the number dropped.

        The backlog is drained to a local list *before* any ``on_drop``
        callback fires, so a callback that re-enqueues into this queue
        (a retransmit shim, say) sees a consistent empty queue and its
        packet is not swept into the same flush.
        """
        if not self._packets:
            return 0
        drained = list(self._packets)
        self._packets.clear()
        self._bytes = 0
        for packet in drained:
            self._drop(packet, reason)
        return len(drained)

    def __len__(self) -> int:
        return len(self._packets)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"{type(self).__name__}({self.name}: "
                f"{len(self._packets)} pkts, {self._bytes} B)")
