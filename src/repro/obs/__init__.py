"""repro.obs — structured event tracing, flight recorder, auditing.

The observability subsystem has four pieces:

* :mod:`repro.obs.events` / :mod:`repro.obs.bus` — a typed,
  zero-cost-when-disabled event bus. Components hold a ``trace``
  attribute that is ``None`` by default; every probe site is guarded by
  an ``is not None`` check so the disabled path costs one attribute
  load (guarded by ``benchmarks/bench_obs_overhead.py``).
* :mod:`repro.obs.flight` — a bounded ring-buffer flight recorder with
  severity levels; :class:`~repro.obs.session.TraceSession` dumps its
  tail whenever a scenario dies, so campaign failures come with the
  last events before the crash.
* :mod:`repro.obs.export` — JSONL and Chrome ``trace_event`` exporters
  (open the latter in Perfetto / ``chrome://tracing``; one track per
  node/queue/flow).
* :mod:`repro.obs.audit` — the Fortune-Teller prediction auditor: joins
  each ``totalDelay`` prediction against the packet's measured delivery
  delay and reports error CDFs and quantiles (the backbone of the
  Fig. 19 accuracy driver).
"""

from repro.obs.audit import AuditReport, PredictionAuditor
from repro.obs.bus import TraceBus
from repro.obs.events import (CATEGORIES, DEBUG, ERROR, INFO, WARN,
                              TraceEvent, severity_name)
from repro.obs.export import (chrome_trace, events_to_jsonl,
                              write_chrome_trace, write_jsonl)
from repro.obs.flight import FlightRecorder
from repro.obs.session import TraceConfig, TraceSession

__all__ = [
    "AuditReport", "PredictionAuditor", "TraceBus", "TraceEvent",
    "CATEGORIES", "DEBUG", "INFO", "WARN", "ERROR", "severity_name",
    "chrome_trace", "events_to_jsonl", "write_chrome_trace", "write_jsonl",
    "FlightRecorder", "TraceConfig", "TraceSession",
]
