"""Fortune-Teller prediction auditor.

Joins each ``ap.predict`` event (the Fortune Teller's ``totalDelay``
for a packet arriving at the AP) against the packet's ``link.deliver``
event (the wireless hop handing it to the client) and accumulates
``(predicted, actual)`` pairs, where ``actual`` is the measured
AP-to-client delay. The resulting :class:`AuditReport` carries the
per-packet absolute-error CDF, quantiles (p50/p90/p95/p99), and the
predicted-vs-real heatmap of the paper's Fig. 19 accuracy study.

Two ways in:

* **live** — subscribe the auditor to a :class:`~repro.obs.bus.TraceBus`
  (it is a plain event callback); requires the ``ap`` and ``link``
  categories to be enabled;
* **offline** — :meth:`PredictionAuditor.from_pairs` over pairs
  recorded elsewhere (e.g. ``FortuneTeller.accuracy_pairs``), which is
  how :mod:`repro.experiments.drivers.accuracy` computes its summary
  statistics.

Both paths produce bit-identical reports for identical pairs: the
live join uses the same timestamps the Fortune Teller's bookkeeping
uses (AP arrival time and wireless delivery time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.metrics.stats import cdf_points, percentile
from repro.obs.events import TraceEvent

#: Log-spaced delay bin edges (seconds) of the Fig. 19 heatmap.
BINS = (0.001, 0.004, 0.016, 0.064, 0.256, 10.0)


def bin_index(value: float, bins=BINS) -> int:
    """Index of the first bin edge >= ``value`` (last bin catches all)."""
    for index, edge in enumerate(bins):
        if value <= edge:
            return index
    return len(bins) - 1


@dataclass
class AuditReport:
    """Prediction-error summary over all joined packets."""

    pairs: int
    p50: float
    p90: float
    p95: float
    p99: float
    mean_abs_error: float
    error_cdf: list[tuple[float, float]] = field(default_factory=list)
    heatmap: dict[tuple[int, int], int] = field(default_factory=dict)

    def quantiles_ms(self) -> dict[str, float]:
        """p50/p95/p99 in milliseconds (NaN-safe), for reports and CLI."""
        return {name: value * 1000
                for name, value in (("p50", self.p50), ("p95", self.p95),
                                    ("p99", self.p99))}

    def format_lines(self) -> list[str]:
        if not self.pairs:
            return ["prediction auditor: no (predicted, actual) pairs joined"]
        q = self.quantiles_ms()
        return [f"prediction auditor: {self.pairs} packets audited",
                f"  abs error p50 / p95 / p99: {q['p50']:.2f} / "
                f"{q['p95']:.2f} / {q['p99']:.2f} ms",
                f"  mean abs error:            "
                f"{self.mean_abs_error * 1000:.2f} ms"]


class PredictionAuditor:
    """Accumulates (predicted, actual) delay pairs and summarizes them."""

    def __init__(self):
        #: pkt_id -> (prediction time, predicted total delay)
        self._open: dict[int, tuple[float, float]] = {}
        self.pairs: list[tuple[float, float]] = []
        self.unmatched_predictions = 0

    @classmethod
    def from_pairs(cls, pairs) -> "PredictionAuditor":
        auditor = cls()
        auditor.pairs = [(float(p), float(a)) for p, a in pairs]
        return auditor

    # -- live event join -----------------------------------------------------

    def __call__(self, event: TraceEvent) -> None:
        """TraceBus subscriber: join predictions against deliveries."""
        if event.category == "ap" and event.name == "predict":
            self._open[event.args["pkt_id"]] = (event.time,
                                                event.args["total"])
        elif event.category == "link" and event.name == "deliver":
            opened = self._open.pop(event.args["pkt_id"], None)
            if opened is not None:
                predicted_at, predicted = opened
                self.pairs.append((predicted, event.time - predicted_at))
        elif event.category == "queue" and event.name == "drop":
            # Dropped packets never deliver; forget their predictions so
            # the join table stays bounded over long runs.
            if self._open.pop(event.args["pkt_id"], None) is not None:
                self.unmatched_predictions += 1

    # -- reporting -----------------------------------------------------------

    def report(self, cdf_resolution: int = 30) -> AuditReport:
        """Summarize all joined pairs (NaN quantiles when empty)."""
        errors = [abs(p - a) for p, a in self.pairs]
        heatmap: dict[tuple[int, int], int] = {}
        for predicted, actual in self.pairs:
            key = (bin_index(predicted), bin_index(actual))
            heatmap[key] = heatmap.get(key, 0) + 1
        if errors:
            quantiles = {q: percentile(errors, q) for q in (50, 90, 95, 99)}
            mean = sum(errors) / len(errors)
        else:
            quantiles = {q: math.nan for q in (50, 90, 95, 99)}
            mean = math.nan
        return AuditReport(pairs=len(self.pairs),
                           p50=quantiles[50], p90=quantiles[90],
                           p95=quantiles[95], p99=quantiles[99],
                           mean_abs_error=mean,
                           error_cdf=cdf_points(errors, points=cdf_resolution),
                           heatmap=heatmap)
