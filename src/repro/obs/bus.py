"""The simulation-wide event bus.

A :class:`TraceBus` binds to one :class:`~repro.sim.engine.Simulator`
(which provides timestamps) and fans events out to subscribers (the
flight recorder, the in-memory collector, the prediction auditor, user
callbacks).

Zero-cost-when-disabled contract: instrumented components keep a
``trace`` attribute that is ``None`` until a bus is attached, and every
probe site reads it once::

    tr = self.trace
    if tr is not None:
        tr.queue_enqueue(self, packet)

so a simulation that never enables tracing pays one attribute load and
``is not None`` per probe site (guarded to <2% per-packet overhead by
``benchmarks/bench_obs_overhead.py``). The typed ``queue_*`` / ``link_*``
/ ``ap_*`` / ``cca_*`` helpers keep the payload schema in one place; the
category filter is applied *before* the args dict is built.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.obs.events import INFO, WARN, TraceEvent

Subscriber = Callable[[TraceEvent], None]


class TraceBus:
    """Publish/subscribe hub for :class:`TraceEvent` instances."""

    __slots__ = ("sim", "categories", "_subscribers")

    def __init__(self, sim, categories: Optional[Iterable[str]] = None):
        self.sim = sim
        #: ``None`` means every category; otherwise a frozenset filter.
        self.categories = (None if categories is None
                           else frozenset(categories))
        self._subscribers: list[Subscriber] = []

    # -- subscription --------------------------------------------------------

    def subscribe(self, callback: Subscriber) -> Subscriber:
        """Register ``callback`` for every published event; returns it."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        self._subscribers.remove(callback)

    def wants(self, category: str) -> bool:
        """True when events of ``category`` pass the filter."""
        return self.categories is None or category in self.categories

    # -- publication ---------------------------------------------------------

    def emit(self, category: str, name: str, track: str,
             severity: int = INFO, **args) -> None:
        """Build and publish one event (skipped if filtered out)."""
        if not self.wants(category):
            return
        self.publish(TraceEvent(self.sim.now, category, name, track,
                                severity, args))

    def publish(self, event: TraceEvent) -> None:
        for callback in self._subscribers:
            callback(event)

    # -- typed probe helpers -------------------------------------------------
    # Each helper owns its payload schema (see repro.obs.events taxonomy)
    # and applies the category filter before building the args dict.

    def queue_enqueue(self, queue, packet) -> None:
        if self.wants("queue"):
            self.emit("queue", "enqueue", queue.name,
                      pkt_id=packet.pkt_id, size=packet.size,
                      depth_pkts=queue.packet_length,
                      depth_bytes=queue.byte_length)

    def queue_dequeue(self, queue, packet) -> None:
        if self.wants("queue"):
            self.emit("queue", "dequeue", queue.name,
                      pkt_id=packet.pkt_id, size=packet.size,
                      depth_pkts=queue.packet_length,
                      depth_bytes=queue.byte_length)

    def queue_drop(self, queue, packet, reason: str) -> None:
        if self.wants("queue"):
            self.emit("queue", "drop", queue.name, severity=WARN,
                      pkt_id=packet.pkt_id, size=packet.size, reason=reason,
                      depth_pkts=queue.packet_length,
                      depth_bytes=queue.byte_length)

    def link_rate(self, link, rate_bps: float) -> None:
        if self.wants("link"):
            self.emit("link", "rate", link.name, value=rate_bps)

    def link_txop(self, link, pkts: int, nbytes: int,
                  airtime_s: float, rate_bps: float) -> None:
        if self.wants("link"):
            self.emit("link", "txop", link.name, pkts=pkts, bytes=nbytes,
                      airtime_s=airtime_s, rate_bps=rate_bps)

    def link_delivery(self, link, packet) -> None:
        if self.wants("link"):
            self.emit("link", "deliver", link.name,
                      pkt_id=packet.pkt_id, size=packet.size)

    def ap_prediction(self, track: str, packet, prediction) -> None:
        if self.wants("ap"):
            self.emit("ap", "predict", track, pkt_id=packet.pkt_id,
                      q_long=prediction.q_long, q_short=prediction.q_short,
                      tx=prediction.tx, total=prediction.total)

    def ap_delta(self, track: str, delta: float, banked: bool) -> None:
        if self.wants("ap"):
            self.emit("ap", "delta", track, value=delta, banked=banked)

    def ap_tokens(self, track: str, outstanding: float) -> None:
        if self.wants("ap"):
            self.emit("ap", "tokens", track, value=outstanding)

    def ap_ack_delay(self, track: str, sampled: float, injected: float,
                     tokens: float) -> None:
        if self.wants("ap"):
            self.emit("ap", "ack_delay", track, sampled=sampled,
                      injected=injected, tokens=tokens)

    def ap_feedback(self, track: str, reports: int, base_seq: int) -> None:
        if self.wants("ap"):
            self.emit("ap", "feedback", track, reports=reports,
                      base_seq=base_seq)

    def cca_cwnd(self, track: str, cwnd: int) -> None:
        if self.wants("cca"):
            self.emit("cca", "cwnd", track, value=cwnd)

    def cca_rate(self, track: str, target_bps: float) -> None:
        if self.wants("cca"):
            self.emit("cca", "rate", track, value=target_bps)

    def fault_window(self, track: str, kind: str, index: int,
                     duration_s: float, target: str,
                     magnitude: Optional[float] = None) -> None:
        if self.wants("fault"):
            args = dict(kind=kind, index=index, duration_s=duration_s,
                        target=target)
            if magnitude is not None:
                args["magnitude"] = magnitude
            self.emit("fault", "window", track, severity=WARN, **args)

    def fault_phase(self, track: str, kind: str, index: int,
                    phase: str) -> None:
        if self.wants("fault"):
            self.emit("fault", "phase", track, severity=WARN,
                      kind=kind, index=index, phase=phase)

    def fault_loss(self, track: str, pkt_id: int, direction: str) -> None:
        if self.wants("fault"):
            self.emit("fault", "loss", track, pkt_id=pkt_id,
                      direction=direction)

    def fault_watchdog(self, track: str, state: str, reason: str) -> None:
        if self.wants("fault"):
            self.emit("fault", "watchdog", track, severity=WARN,
                      state=state, reason=reason)

    def control_state(self, track: str, state: str, reason: str) -> None:
        if self.wants("control"):
            self.emit("control", "state", track, severity=WARN,
                      state=state, reason=reason)

    def control_policy(self, track: str, state: str, window_s: float,
                       passthrough: bool) -> None:
        if self.wants("control"):
            self.emit("control", "policy", track, state=state,
                      window_s=window_s, passthrough=passthrough)

    def control_steer(self, track: str, client: str, old_ap: str,
                      new_ap: str, phase: str) -> None:
        if self.wants("control"):
            self.emit("control", "steer", track, severity=WARN,
                      client=client, old_ap=old_ap, new_ap=new_ap,
                      phase=phase)
