"""Event type and taxonomy for the tracing subsystem.

This module is import-free on purpose: :mod:`repro.sim.engine` must be
able to reference :class:`TraceEvent` without creating an import cycle
through the rest of the package.

Severities are plain ints ordered like the stdlib logging levels so
subscribers can threshold with a comparison.

Event taxonomy (category / name — args):

======== ============ ==================================================
category name         args
======== ============ ==================================================
queue    enqueue      pkt_id, size, depth_pkts, depth_bytes
queue    dequeue      pkt_id, size, depth_pkts, depth_bytes
queue    drop         pkt_id, size, reason, depth_pkts, depth_bytes
link     rate         value (bps; emitted when the serving rate changes)
link     txop         pkts, bytes, airtime_s, rate_bps  (one AMPDU burst)
link     deliver      pkt_id, size
ap       predict      pkt_id, q_long, q_short, tx, total
ap       delta        value, banked (True when a negative delta became
                      a token)
ap       tokens       value (outstanding token-bank seconds)
ap       ack_delay    sampled, injected, tokens
ap       feedback     reports, base_seq (in-band TWCC construction)
cca      cwnd         value (bytes)
cca      rate         value (target bps)
sim      error        message
fault    window       kind, index, duration_s, target[, magnitude]
                      (one slice per windowed fault)
fault    phase        kind, index, phase ("begin" / "end")
fault    loss         pkt_id, direction (one per burst-loss drop)
fault    watchdog     state, reason (AP health transitions)
control  state        state, reason (controller state transitions)
control  policy       state, window_s, passthrough (policy application)
control  steer        client, old_ap, new_ap, phase ("begin"/"complete")
harness  quarantine   entry, reason (corrupt cache entry set aside)
harness  hung_worker  index, pid, waited_s (deadline kill of a worker)
harness  degrade      what, rss_bytes, limit_bytes (graceful fallback)
harness  journal      action, path[, cells] (checkpoint/resume lifecycle)
======== ============ ==================================================

``harness`` events are emitted by the campaign/cache layer *outside*
any simulation, so their ``time`` is wall-clock (epoch seconds), not
virtual time; they flow through :mod:`repro.obs.harness`, not a
per-run :class:`~repro.obs.bus.TraceBus`.

Tracks (the ``track`` field) name the emitting entity — a queue, a
link, a flow — and become one timeline row each in the Chrome-trace
export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEBUG = 10
INFO = 20
WARN = 30
ERROR = 40

_SEVERITY_NAMES = {DEBUG: "DEBUG", INFO: "INFO", WARN: "WARN", ERROR: "ERROR"}

#: Categories emitted by in-simulation probes (virtual time, per-run
#: TraceBus); ``TraceConfig.parse_events`` defaults to these.
SIM_CATEGORIES = ("sim", "queue", "link", "ap", "cca", "fault", "control")
#: Every category, including the process-level ``harness`` channel;
#: TraceConfig validates against this.
CATEGORIES = SIM_CATEGORIES + ("harness",)


def severity_name(severity: int) -> str:
    """Human-readable label for a severity int (unknown values pass through)."""
    return _SEVERITY_NAMES.get(severity, str(severity))


@dataclass(slots=True)
class TraceEvent:
    """One structured simulation event.

    ``time`` is virtual simulation time in seconds; ``args`` is the
    typed payload documented in the module taxonomy table.
    """

    time: float
    category: str
    name: str
    track: str
    severity: int = INFO
    args: dict = field(default_factory=dict)

    def format_line(self) -> str:
        """One-line rendering used by flight-recorder dumps."""
        payload = " ".join(f"{k}={_fmt(v)}" for k, v in self.args.items())
        return (f"[{self.time * 1000:10.3f}ms {severity_name(self.severity):5s}] "
                f"{self.category}.{self.name} ({self.track}) {payload}".rstrip())


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
