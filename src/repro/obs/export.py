"""Trace exporters: JSONL and Chrome ``trace_event`` format.

The Chrome format (the JSON Object Format of the Trace Event
specification) opens directly in Perfetto (ui.perfetto.dev) and
``chrome://tracing``. Mapping:

* every distinct event ``track`` becomes one thread (pid 1, its own
  tid) named by a ``thread_name`` metadata event — one timeline row per
  node/queue/flow;
* gauge-like events (queue depth, cwnd, target rate, token bank) become
  counter tracks (``"ph": "C"``), so Perfetto draws them as steps;
* AMPDU bursts (``link.txop``) become complete events (``"ph": "X"``)
  whose duration is the airtime — bursts are visible as slices;
* everything else is an instant event (``"ph": "i"``).

Timestamps are microseconds of virtual simulation time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.obs.events import TraceEvent, severity_name

#: (category, name) pairs exported as counter tracks; values give the
#: args keys plotted (each key becomes one series of the counter).
_COUNTERS = {
    ("queue", "enqueue"): ("depth_pkts", "depth_bytes"),
    ("queue", "dequeue"): ("depth_pkts", "depth_bytes"),
    ("link", "rate"): ("value",),
    ("ap", "tokens"): ("value",),
    ("cca", "cwnd"): ("value",),
    ("cca", "rate"): ("value",),
}

#: (category, name) pairs exported as complete ("X") events, mapped to
#: the args key holding the duration in seconds.
_DURATIONS = {("link", "txop"): "airtime_s",
              ("fault", "window"): "duration_s"}


def event_to_dict(event: TraceEvent,
                  tag: Optional[str] = None) -> dict:
    """Flat JSONL record for one event.

    ``tag`` labels every record of a multi-cell artifact (e.g. the
    shard index of a sharded city campaign) so merged streams stay
    attributable after concatenation.
    """
    record = {"t": event.time, "cat": event.category, "name": event.name,
              "track": event.track, "sev": severity_name(event.severity),
              **event.args}
    if tag:
        record["tag"] = tag
    return record


def events_to_jsonl(events: Iterable[TraceEvent],
                    tag: Optional[str] = None) -> str:
    """One compact JSON object per line."""
    return "\n".join(json.dumps(event_to_dict(e, tag=tag), sort_keys=True)
                     for e in events)


def write_jsonl(events: Iterable[TraceEvent], path: str | Path,
                tag: Optional[str] = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = events_to_jsonl(events, tag=tag)
    path.write_text(text + "\n" if text else "")
    return path


def chrome_trace(events: Sequence[TraceEvent],
                 process_name: str = "repro-sim") -> dict:
    """Convert events to the Chrome trace_event JSON object format."""
    tids: dict[str, int] = {}
    trace_events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0, "ts": 0,
        "args": {"name": process_name},
    }]

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "ts": 0, "args": {"name": track},
            })
        return tid

    for event in events:
        tid = tid_for(event.track)
        ts = event.time * 1e6
        key = (event.category, event.name)
        name = f"{event.category}.{event.name}"
        counter_keys = _COUNTERS.get(key)
        if counter_keys is not None:
            trace_events.append({
                "name": f"{event.track}:{counter_keys_label(key)}",
                "ph": "C", "pid": 1, "tid": tid, "ts": ts,
                "cat": event.category,
                "args": {k: event.args[k] for k in counter_keys
                         if k in event.args},
            })
            if key[0] == "queue":
                # Depth counters ride along the enqueue/dequeue instants;
                # still emit the instant so per-packet flow is visible.
                trace_events.append(_instant(event, name, tid, ts))
            continue
        duration_key = _DURATIONS.get(key)
        if duration_key is not None:
            trace_events.append({
                "name": name, "ph": "X", "pid": 1, "tid": tid, "ts": ts,
                "dur": max(event.args.get(duration_key, 0.0), 0.0) * 1e6,
                "cat": event.category, "args": _jsonable(event.args),
            })
            continue
        trace_events.append(_instant(event, name, tid, ts))

    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs",
                          "tracks": list(tids)}}


def counter_keys_label(key: tuple[str, str]) -> str:
    """Counter-track name for a (category, name) pair."""
    if key[0] == "queue":
        return "depth"
    return f"{key[0]}.{key[1]}"


def _instant(event: TraceEvent, name: str, tid: int, ts: float) -> dict:
    return {"name": name, "ph": "i", "pid": 1, "tid": tid, "ts": ts,
            "s": "t", "cat": event.category, "args": _jsonable(event.args)}


def _jsonable(args: dict) -> dict:
    return {k: (v if isinstance(v, (int, float, str, bool)) or v is None
                else str(v))
            for k, v in args.items()}


def write_chrome_trace(events: Sequence[TraceEvent], path: str | Path,
                       process_name: str = "repro-sim") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(chrome_trace(events, process_name=process_name), handle)
    return path
