"""Bounded ring-buffer flight recorder.

Subscribes to a :class:`~repro.obs.bus.TraceBus` and keeps the last N
events at or above a severity threshold. Cheap enough to leave on for
every traced run; when a scenario dies the
:class:`~repro.obs.session.TraceSession` dumps the tail so the failure
report carries the events leading up to the crash (the ``dump_on_error``
hook).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.obs.events import DEBUG, TraceEvent


class FlightRecorder:
    """Keeps the most recent ``capacity`` events (a deque ring buffer)."""

    def __init__(self, capacity: int = 4096, min_severity: int = DEBUG):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.min_severity = min_severity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self.seen = 0

    def __call__(self, event: TraceEvent) -> None:
        """Subscriber entry point."""
        if event.severity >= self.min_severity:
            self._ring.append(event)
            self.seen += 1

    def __len__(self) -> int:
        return len(self._ring)

    def events(self, last: Optional[int] = None) -> list[TraceEvent]:
        """The retained tail, oldest first (optionally only the last N)."""
        items = list(self._ring)
        if last is not None:
            items = items[-last:]
        return items

    def dump_lines(self, last: Optional[int] = None) -> list[str]:
        """Formatted tail for error reports and logs."""
        items = self.events(last)
        dropped = self.seen - len(self._ring)
        header = (f"flight recorder: last {len(items)} of {self.seen} events"
                  + (f" ({dropped} older events evicted)" if dropped else ""))
        return [header] + [event.format_line() for event in items]

    def clear(self) -> None:
        self._ring.clear()
        self.seen = 0
