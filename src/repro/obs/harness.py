"""Process-level harness observability (the ``harness`` trace category).

Simulation events flow through a per-run :class:`~repro.obs.bus.TraceBus`
in virtual time; the campaign runner, the result cache, and the worker
supervisor live *outside* any simulation, so their events get their own
tiny, global channel. By default a ``WARN``-or-worse harness event
prints exactly one line to stderr (a quarantined cache entry, a killed
hung worker, a degradation) — campaigns never go silent about the messy
cases, and never crash because of them either. Tests and embedders can
subscribe a sink to capture the structured events instead.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List

from repro.obs.events import INFO, WARN, TraceEvent

_SINKS: List[Callable[[TraceEvent], None]] = []


def add_sink(sink: Callable[[TraceEvent], None]) -> None:
    """Subscribe to every harness event (tests, structured logging)."""
    _SINKS.append(sink)


def remove_sink(sink: Callable[[TraceEvent], None]) -> None:
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass


def harness_event(name: str, *, severity: int = INFO, track: str = "harness",
                  **args) -> TraceEvent:
    """Emit one harness event; WARN+ also prints a single stderr line."""
    event = TraceEvent(time=time.time(), category="harness", name=name,
                       track=track, severity=severity, args=args)
    for sink in list(_SINKS):
        sink(event)
    if severity >= WARN:
        payload = " ".join(f"{key}={value}"
                           for key, value in args.items())
        print(f"harness: {name} {payload}".rstrip(),
              file=sys.stderr, flush=True)
    return event
