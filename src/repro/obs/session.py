"""Trace configuration and per-run trace sessions.

:class:`TraceConfig` is the pure-data description of what to trace —
safe to embed in a :class:`~repro.campaign.spec.ScenarioSpec` (it is
JSON-serializable and participates in the spec content hash, so a
traced cell never aliases an untraced one in the result cache).

:class:`TraceSession` is the runtime side: it owns the
:class:`~repro.obs.bus.TraceBus`, the flight recorder, the optional
in-memory event collection, and the prediction auditor, and knows how
to export the collected events and to dump the flight-recorder tail
into a dying exception (the ``dump_on_error`` hook).
"""

from __future__ import annotations

import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from repro.obs.audit import PredictionAuditor
from repro.obs.bus import TraceBus
from repro.obs.events import CATEGORIES, SIM_CATEGORIES, TraceEvent
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.flight import FlightRecorder

FORMATS = ("chrome", "jsonl")


@dataclass(frozen=True)
class TraceConfig:
    """What to trace and where the artifact goes.

    ``events`` selects probe categories (see
    :data:`repro.obs.events.CATEGORIES`); the auditor needs ``ap`` and
    ``link`` enabled to join predictions against deliveries.
    """

    events: tuple[str, ...] = ("queue", "link", "ap", "cca")
    ring_size: int = 4096       # flight-recorder depth
    collect: bool = True        # keep the full event list in memory
    audit: bool = True          # run the prediction auditor
    out: Optional[str] = None   # write the trace artifact here after a run
    fmt: str = "chrome"         # "chrome" | "jsonl"
    #: Artifact label for multi-cell runs (e.g. ``shard003`` in a
    #: sharded city campaign): becomes the Chrome-trace process name
    #: suffix / a ``tag`` field on every JSONL record, and is appended
    #: to ``out`` (before the extension) so per-shard artifacts never
    #: overwrite each other.
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events",
                           tuple(str(e) for e in self.events))
        unknown = [e for e in self.events if e not in CATEGORIES]
        if unknown:
            raise ValueError(f"unknown trace categories {unknown}; "
                             f"expected a subset of {CATEGORIES}")
        if self.fmt not in FORMATS:
            raise ValueError(f"unknown trace format {self.fmt!r}; "
                             f"expected one of {FORMATS}")
        if self.ring_size <= 0:
            raise ValueError(f"ring_size must be positive: {self.ring_size}")

    @classmethod
    def parse_events(cls, text: str) -> tuple[str, ...]:
        """Parse a ``--events queue,ap,cca`` style CSV list."""
        items = tuple(part.strip() for part in text.split(",")
                      if part.strip())
        return items or tuple(SIM_CATEGORIES)

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["events"] = list(self.events)
        # Omitted when None so untagged configs (every pre-city spec)
        # keep their historical content hashes and cache entries.
        if payload["tag"] is None:
            del payload["tag"]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceConfig":
        payload = dict(payload)
        payload["events"] = tuple(payload.get("events", SIM_CATEGORIES))
        return cls(**payload)


class TraceSession:
    """Live tracing state for one simulation run."""

    def __init__(self, sim, config: TraceConfig):
        self.config = config
        self.bus = TraceBus(sim, categories=frozenset(config.events))
        sim.trace = self.bus
        self.flight = FlightRecorder(capacity=config.ring_size)
        self.bus.subscribe(self.flight)
        self.events: list[TraceEvent] = []
        if config.collect:
            self.bus.subscribe(self.events.append)
        self.auditor: Optional[PredictionAuditor] = None
        if config.audit:
            self.auditor = PredictionAuditor()
            self.bus.subscribe(self.auditor)

    # -- artifacts -----------------------------------------------------------

    def export(self, out: Optional[str] = None,
               fmt: Optional[str] = None) -> Optional[Path]:
        """Write the collected events; returns the path (None if no out)."""
        out = out if out is not None else self.config.out
        if not out:
            return None
        fmt = fmt or self.config.fmt
        tag = self.config.tag
        if tag:
            path = Path(out)
            out = str(path.with_name(
                f"{path.stem}-{tag}{path.suffix or ''}"))
        if fmt == "jsonl":
            return write_jsonl(self.events, out, tag=tag)
        process = f"repro-sim:{tag}" if tag else "repro-sim"
        return write_chrome_trace(self.events, out, process_name=process)

    # -- failure handling ----------------------------------------------------

    def dump_on_error(self, exc: BaseException,
                      stream=None, last: int = 50) -> str:
        """Attach the flight-recorder tail to ``exc`` (and print it).

        The dump lands on ``exc.flight_dump`` so upstream handlers (the
        campaign runner's failure payloads, the CLI) can surface the
        last events before the crash without re-running anything.
        """
        text = "\n".join(self.flight.dump_lines(last=last))
        try:
            exc.flight_dump = text
        except AttributeError:  # exceptions with __slots__
            pass
        print(f"--- trace dump after {type(exc).__name__}: {exc} ---\n"
              f"{text}", file=stream or sys.stderr)
        return text
