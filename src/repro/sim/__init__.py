"""Discrete-event simulation engine.

This package provides the event-driven substrate on which every other
subsystem runs: a virtual clock, a heap-based event scheduler, repeating
timers, and a deterministic random-number source.

The engine is deliberately minimal: events are plain callables scheduled
at absolute virtual times, and entities communicate by scheduling events
on a shared :class:`Simulator`.
"""

from repro.sim.engine import Event, Simulator, Timer
from repro.sim.random import DeterministicRandom

__all__ = ["Event", "Simulator", "Timer", "DeterministicRandom"]
