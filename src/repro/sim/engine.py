"""Bucketed discrete-event simulator.

Time is a float in seconds. Events are callables scheduled at an absolute
time; ties are broken by insertion order so the simulation is fully
deterministic for a fixed seed and schedule.

Scheduler layout (the PR 6 hot-path restructure)
------------------------------------------------
The scheduler is two-tier:

* a **now bucket** (`_ready`, a FIFO deque) holds events scheduled at
  exactly the current virtual instant — the calendar bucket of width
  zero at ``now``.  Zero-delay scheduling dominates the datapath (link
  serve kicks, immediate forwards), and bucketed events cost O(1)
  append/popleft instead of two O(log n) heap operations;
* a **future heap** holds everything else as ``(time, seq, event)``
  tuples, so heap sift comparisons run entirely in C (float/int tuple
  compare) instead of calling a Python-level ``Event.__lt__``.

The execution order is the exact total order ``(time, seq)`` the
single-heap implementation produced: a heap event at the current
instant was necessarily scheduled *before* the clock reached that
instant (its seq is smaller than any bucket entry's), so the run loop
drains same-instant heap events ahead of the bucket.

Cancellation is O(1) (a flag) and cancelled events are *compacted*
lazily: once more than half the scheduler is dead weight the heap is
rebuilt without the corpses — amortized O(1) per cancel, and a
campaign that cancels millions of timers no longer drags a heap of
tombstones behind it.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional

#: Compaction starts only beyond this many dead events, so small
#: simulations never pay the rebuild.
_COMPACT_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised for invalid scheduling operations."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` (or
    :meth:`Simulator.call_at`). Cancelling an event is O(1): the event is
    flagged, skipped when reached, and compacted away once dead events
    dominate the scheduler.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[[], None],
                 sim: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.

        Safe to call more than once, and safe (a no-op) on an event
        that already fired — a stale handle kept after the callback ran
        must not make the event look retroactively cancelled.
        """
        if self.fired or self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        if self.cancelled:
            state = "cancelled"
        elif self.fired:
            state = "fired"
        else:
            state = "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Discrete-event loop with a virtual clock.

    Example::

        sim = Simulator()
        sim.call_at(1.0, lambda: print(sim.now))
        sim.run(until=2.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        # deque is imported lazily nowhere: a plain list with an index
        # head would also work, but deque popleft/append are C-speed and
        # the bucket stays small (events at one instant).
        from collections import deque
        self._ready: "deque[Event]" = deque()
        self._seq = 0
        self._dead = 0
        self._running = False
        self._events_processed = 0
        #: Tracing hook (:class:`repro.obs.bus.TraceBus`); ``None`` means
        #: tracing is disabled and every probe site short-circuits.
        self.trace = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are rejected; a zero delay runs the callback after
        all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        now = self._now
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            event = Event(now, seq, callback, self)
            self._ready.append(event)
        else:
            time = now + delay
            if math.isnan(time):
                raise SimulationError("cannot schedule at NaN time")
            event = Event(time, seq, callback, self)
            heapq.heappush(self._heap, (time, seq, event))
        return event

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < {now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, self)
        if time == now:
            self._ready.append(event)
        else:
            heapq.heappush(self._heap, (time, seq, event))
        return event

    def _note_cancel(self) -> None:
        """O(1) bookkeeping for a cancelled event; compact lazily."""
        self._dead += 1
        if (self._dead > _COMPACT_MIN_DEAD
                and self._dead * 2 > len(self._heap) + len(self._ready)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events (O(live)).

        Mutates the heap list in place: ``run`` holds a local alias to
        it, and cancel (hence compaction) can happen mid-run from an
        event callback.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._dead = sum(1 for event in self._ready if event.cancelled)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Stops when no events remain, when the next event is strictly past
        ``until``, or after ``max_events`` events.  The clock is advanced
        to ``until`` only when every remaining event (if any) lies beyond
        it — a ``max_events`` stop with work still pending before
        ``until`` leaves the clock at the last executed event, so a
        resumed ``run`` observes a consistent virtual time.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        processed = 0
        try:
            ready = self._ready
            heap = self._heap
            heappop = heapq.heappop
            if until is None and max_events is None:
                # Run-to-exhaustion fast loop: no bound checks per event.
                while True:
                    if ready:
                        # A heap event can share this instant (scheduled
                        # before the clock got here, or a positive delay
                        # that underflowed to now): strictly by seq.
                        if (heap and heap[0][0] == self._now
                                and heap[0][1] < ready[0].seq):
                            event = heappop(heap)[2]
                        else:
                            event = ready.popleft()
                    elif heap:
                        entry = heappop(heap)
                        self._now = entry[0]
                        event = entry[2]
                    else:
                        break
                    if event.cancelled:
                        self._dead -= 1
                        continue
                    event.fired = True
                    event.callback()
                    processed += 1
                return
            while True:
                if max_events is not None and processed >= max_events:
                    break
                if ready:
                    time = self._now
                    if until is not None and time > until:
                        break
                    if (heap and heap[0][0] == time
                            and heap[0][1] < ready[0].seq):
                        event = heappop(heap)[2]
                    else:
                        event = ready.popleft()
                elif heap:
                    time = heap[0][0]
                    if until is not None and time > until:
                        break
                    event = heappop(heap)[2]
                else:
                    break
                if event.cancelled:
                    self._dead -= 1
                    continue
                self._now = time
                event.fired = True
                event.callback()
                processed += 1
            if until is not None and self._now < until:
                # Bugfix (PR 6): never teleport the clock past pending
                # events — only fast-forward when the schedule is empty
                # or the next event lies beyond ``until``.
                next_time = self.peek()
                if next_time is None or next_time > until:
                    self._now = until
        finally:
            # Flushed once per run; nothing reads the counter mid-run.
            self._events_processed += processed
            self._running = False

    # -- tracing (repro.obs) -------------------------------------------------

    def subscribe(self, callback, categories=None):
        """Subscribe ``callback(event)`` to this simulator's trace bus.

        Lazily creates the bus (enabling tracing) on first use. When a
        bus already exists, ``categories`` must be ``None`` — the filter
        belongs to the existing bus.
        """
        from repro.obs.bus import TraceBus
        if self.trace is None:
            self.trace = TraceBus(self, categories=categories)
        elif categories is not None:
            raise SimulationError(
                "trace bus already attached; category filters must be "
                "chosen when the bus is created")
        return self.trace.subscribe(callback)

    def emit(self, category: str, name: str, track: str = "sim",
             severity: int = 20, **args) -> None:
        """Publish one trace event (no-op while tracing is disabled)."""
        bus = self.trace
        if bus is not None:
            bus.emit(category, name, track, severity, **args)

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        ready = self._ready
        while ready and ready[0].cancelled:
            ready.popleft()
            self._dead -= 1
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if ready:
            # Bucket entries sit at the current instant; a same-instant
            # heap event (smaller seq) does not change the *time*.
            return self._ready[0].time
        return heap[0][0] if heap else None

    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return (sum(1 for event in self._ready if not event.cancelled)
                + sum(1 for _, _, event in self._heap
                      if not event.cancelled))


class Timer:
    """Repeating timer bound to a :class:`Simulator`.

    Calls ``callback`` every ``interval`` seconds until :meth:`stop`.
    The first tick fires after one full interval (or after ``first_delay``
    when given).

    ``on_grid=True`` keeps every tick on the exact absolute grid
    ``first_tick + k * interval`` (one multiplication per tick) instead
    of accumulating ``now + interval`` per tick, whose floating-point
    rounding drifts off the grid within a handful of ticks and keeps
    drifting over long campaigns.  Changing ``interval`` re-anchors the
    grid at the already-scheduled next tick.  The default remains the
    legacy accumulating behaviour because the golden scenario digests
    (tests/data/golden_summaries.json) pin bit-exact trajectories of
    simulations built on it; new long-running campaigns should pass
    ``on_grid=True``.
    """

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[[], None],
                 first_delay: Optional[float] = None,
                 on_grid: bool = False):
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive: {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._event: Optional[Event] = None
        self._stopped = False
        self._on_grid = on_grid
        delay = interval if first_delay is None else first_delay
        self._event = sim.schedule(delay, self._fire)
        #: Grid anchor: the first tick's absolute time; tick ``k`` after
        #: the anchor fires at exactly ``_anchor + k * _interval``.
        self._anchor = self._event.time
        self._ticks = 0

    @property
    def interval(self) -> float:
        return self._interval

    @interval.setter
    def interval(self, value: float) -> None:
        if value <= 0:
            raise SimulationError(f"timer interval must be positive: {value}")
        self._interval = value
        if self._on_grid and self._event is not None and not self._stopped:
            # Re-anchor: the next tick is already scheduled; ticks after
            # it land on the new grid starting there.
            self._anchor = self._event.time
            self._ticks = 0

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if self._stopped:
            return
        if self._on_grid:
            self._ticks += 1
            self._event = self._sim.call_at(
                self._anchor + self._ticks * self._interval, self._fire)
        else:
            self._event = self._sim.schedule(self._interval, self._fire)

    def stop(self) -> None:
        """Cancel the timer; the callback will not fire again."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def stopped(self) -> bool:
        return self._stopped
