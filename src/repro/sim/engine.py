"""Heap-based discrete-event simulator.

Time is a float in seconds. Events are callables scheduled at an absolute
time; ties are broken by insertion order so the simulation is fully
deterministic for a fixed seed and schedule.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid scheduling operations."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` (or
    :meth:`Simulator.call_at`). Cancelling an event is O(1): the event is
    flagged and skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.

        Safe to call more than once, and safe (a no-op) on an event
        that already fired — a stale handle kept after the callback ran
        must not make the event look retroactively cancelled.
        """
        if self.fired:
            return
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        if self.cancelled:
            state = "cancelled"
        elif self.fired:
            state = "fired"
        else:
            state = "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Discrete-event loop with a virtual clock.

    Example::

        sim = Simulator()
        sim.call_at(1.0, lambda: print(sim.now))
        sim.run(until=2.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        #: Tracing hook (:class:`repro.obs.bus.TraceBus`); ``None`` means
        #: tracing is disabled and every probe site short-circuits.
        self.trace = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are rejected; a zero delay runs the callback after
        all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback)

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < {self._now}"
            )
        event = Event(time, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Stops when the heap is empty, when the next event is strictly past
        ``until`` (the clock is then advanced to ``until``), or after
        ``max_events`` events.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            processed = 0
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.fired = True
                event.callback()
                processed += 1
                self._events_processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    # -- tracing (repro.obs) -------------------------------------------------

    def subscribe(self, callback, categories=None):
        """Subscribe ``callback(event)`` to this simulator's trace bus.

        Lazily creates the bus (enabling tracing) on first use. When a
        bus already exists, ``categories`` must be ``None`` — the filter
        belongs to the existing bus.
        """
        from repro.obs.bus import TraceBus
        if self.trace is None:
            self.trace = TraceBus(self, categories=categories)
        elif categories is not None:
            raise SimulationError(
                "trace bus already attached; category filters must be "
                "chosen when the bus is created")
        return self.trace.subscribe(callback)

    def emit(self, category: str, name: str, track: str = "sim",
             severity: int = 20, **args) -> None:
        """Publish one trace event (no-op while tracing is disabled)."""
        bus = self.trace
        if bus is not None:
            bus.emit(category, name, track, severity, **args)

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for event in self._heap if not event.cancelled)


class Timer:
    """Repeating timer bound to a :class:`Simulator`.

    Calls ``callback`` every ``interval`` seconds until :meth:`stop`.
    The first tick fires after one full interval (or after ``first_delay``
    when given).
    """

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[[], None],
                 first_delay: Optional[float] = None):
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive: {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._event: Optional[Event] = None
        self._stopped = False
        delay = interval if first_delay is None else first_delay
        self._event = sim.schedule(delay, self._fire)

    @property
    def interval(self) -> float:
        return self._interval

    @interval.setter
    def interval(self, value: float) -> None:
        if value <= 0:
            raise SimulationError(f"timer interval must be positive: {value}")
        self._interval = value

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._event = self._sim.schedule(self._interval, self._fire)

    def stop(self) -> None:
        """Cancel the timer; the callback will not fire again."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def stopped(self) -> bool:
        return self._stopped
