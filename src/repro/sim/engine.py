"""Bucketed discrete-event simulator.

Time is a float in seconds. Events are callables scheduled at an absolute
time; ties are broken by insertion order so the simulation is fully
deterministic for a fixed seed and schedule.

Scheduler layout (the PR 6 hot-path restructure)
------------------------------------------------
The scheduler is two-tier:

* a **now bucket** (`_ready`, a FIFO deque) holds events scheduled at
  exactly the current virtual instant — the calendar bucket of width
  zero at ``now``.  Zero-delay scheduling dominates the datapath (link
  serve kicks, immediate forwards), and bucketed events cost O(1)
  append/popleft instead of two O(log n) heap operations;
* a **future heap** holds everything else as ``(time, seq, event)``
  tuples, so heap sift comparisons run entirely in C (float/int tuple
  compare) instead of calling a Python-level ``Event.__lt__``.

The execution order is the exact total order ``(time, seq)`` the
single-heap implementation produced: a heap event at the current
instant was necessarily scheduled *before* the clock reached that
instant (its seq is smaller than any bucket entry's), so the run loop
drains same-instant heap events ahead of the bucket.

Cancellation is O(1) (a flag) and cancelled events are *compacted*
lazily: once the dead outnumber the live the scheduler is rebuilt
without the corpses (heap *and* now bucket) — amortized O(1) per
cancel, and a campaign that cancels millions of timers no longer drags
a heap of tombstones behind it.

Macro-event runs (the PR 10 event-model refactor)
-------------------------------------------------
A :class:`TimedRun` is a time-ordered stream of payloads sharing one
dispatcher function.  Instead of one :class:`Event` per packet, a
component pushes ``(time, payload)`` records onto a run; the run keeps
a **single sentinel** in the future heap (for its head item) and the
run loop *run-ahead* fires consecutive items inline — without any heap
traffic — for as long as they are globally next in the exact
``(time, seq)`` total order.  Each push still consumes one ``seq`` from
the shared counter, so a run item and a classic event scheduled for the
same instant tie-break exactly as two classic events would: trajectories
are bit-identical between the macro and classic event models.

``REPRO_EVENT_MODEL`` (``macro``, the default, or ``classic``) selects
which model datapath components use; the engine itself always supports
both.  ``events_processed`` counts every dispatch (classic events and
run items alike) and is engine *telemetry* — summary digests pin
``packets_processed``, which the link layers increment per delivered
packet identically in both modes.
"""

from __future__ import annotations

import heapq
import math
import os
from typing import Callable, Optional

#: Compaction starts only beyond this many dead events, so small
#: simulations never pay the rebuild.
_COMPACT_MIN_DEAD = 64


def _resolve_event_model() -> str:
    """Read ``REPRO_EVENT_MODEL`` (macro | classic; default macro)."""
    mode = os.environ.get("REPRO_EVENT_MODEL", "macro").strip().lower()
    if mode not in ("macro", "classic"):
        raise SimulationError(
            f"REPRO_EVENT_MODEL must be 'macro' or 'classic', got {mode!r}")
    return mode


class SimulationError(RuntimeError):
    """Raised for invalid scheduling operations."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` (or
    :meth:`Simulator.call_at`). Cancelling an event is O(1): the event is
    flagged, skipped when reached, and compacted away once dead events
    dominate the scheduler.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[[], None],
                 sim: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.

        Safe to call more than once, and safe (a no-op) on an event
        that already fired — a stale handle kept after the callback ran
        must not make the event look retroactively cancelled.
        """
        if self.fired or self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        if self.cancelled:
            state = "cancelled"
        elif self.fired:
            state = "fired"
        else:
            state = "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class TimedRun:
    """A monotone stream of timed payloads sharing one dispatcher.

    Created through :meth:`Simulator.timed_run`.  ``push(time, payload)``
    appends a record; the engine calls ``fn(payload)`` at exactly
    ``time`` in the global ``(time, seq)`` order (the seq is taken from
    the simulator's shared counter at push time, so ties against classic
    events resolve exactly as they would between two classic events).

    The run keeps at most one *sentinel* entry ``(time, seq, run)`` in
    the future heap — for its head item — so a thousand-packet burst
    costs one heap push instead of a thousand.  Push times must be
    non-decreasing within a run (each stream models a FIFO resource:
    a link's arrival line, an AP's release queue).  Runs cannot be
    cancelled; components that need cancellation keep classic events.
    """

    __slots__ = ("_sim", "fn", "fn_batch", "_times", "_seqs", "_payloads",
                 "_head", "_dispatching")

    #: Class attribute (not a slot): sentinels must look live to
    #: ``peek``/``_compact``, which test ``entry[2].cancelled``.
    cancelled = False

    def __init__(self, sim: "Simulator", fn: Callable) -> None:
        self._sim = sim
        self.fn = fn
        #: Optional batch dispatcher: ``fn_batch(payloads)`` must be
        #: observably identical to ``for p in payloads: fn(p)``.  The
        #: run loop uses it for a maximal prefix of items that share
        #: one instant *and* are all globally next in ``(time, seq)``
        #: order — exactly the items per-item dispatch would have fired
        #: back to back anyway (anything the batch schedules gets a
        #: larger seq than every gathered item, so it still fires
        #: after them, as it would have per-item).
        self.fn_batch: Optional[Callable] = None
        self._times: list[float] = []
        self._seqs: list[int] = []
        self._payloads: list = []
        self._head = 0
        self._dispatching = False

    def push(self, time: float, payload) -> None:
        """Append ``payload`` to fire at absolute ``time`` (monotone)."""
        times = self._times
        if times:
            # Non-empty run: the last item is pending or being
            # dispatched right now, so it is never behind the clock —
            # the monotone check subsumes the past-time check.  And
            # outside dispatch a non-empty run always has its sentinel
            # planted already, so no heap push is needed here.
            if time < times[-1]:
                raise SimulationError(
                    f"TimedRun push out of order: {time} < {times[-1]}")
            sim = self._sim
            seq = sim._seq
            sim._seq = seq + 1
        else:
            sim = self._sim
            if time < sim._now:
                # A past sentinel would run the clock backwards.
                raise SimulationError(
                    f"cannot push in the past: {time} < {sim._now}")
            seq = sim._seq
            sim._seq = seq + 1
            if not self._dispatching:
                # Empty run coming live: plant the sentinel.  Always
                # the heap, even at time == now — the run loop's tie
                # compare orders a same-instant sentinel exactly by seq.
                heapq.heappush(sim._heap, (time, seq, self))
        times.append(time)
        self._seqs.append(seq)
        self._payloads.append(payload)

    def push_batch(self, time: float, payloads: list) -> None:
        """Push several payloads at one instant, seq-consecutive.

        Observably identical to looping :meth:`push` — each payload
        takes the next seq in order, exactly as back-to-back pushes
        with nothing scheduled between them would.
        """
        n = len(payloads)
        if n <= 1:
            if n:
                self.push(time, payloads[0])
            return
        times = self._times
        if times:
            if time < times[-1]:
                raise SimulationError(
                    f"TimedRun push out of order: {time} < {times[-1]}")
            sim = self._sim
            seq = sim._seq
            sim._seq = seq + n
        else:
            sim = self._sim
            if time < sim._now:
                raise SimulationError(
                    f"cannot push in the past: {time} < {sim._now}")
            seq = sim._seq
            sim._seq = seq + n
            if not self._dispatching:
                heapq.heappush(sim._heap, (time, seq, self))
        times.extend([time] * n)
        self._seqs.extend(range(seq, seq + n))
        self._payloads.extend(payloads)

    def pending(self) -> int:
        """Number of items not yet dispatched."""
        return len(self._times) - self._head

    def __repr__(self) -> str:
        n = len(self._times) - self._head
        head = self._times[self._head] if n else None
        return f"TimedRun(pending={n}, head={head})"


class Simulator:
    """Discrete-event loop with a virtual clock.

    Example::

        sim = Simulator()
        sim.call_at(1.0, lambda: print(sim.now))
        sim.run(until=2.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        # deque is imported lazily nowhere: a plain list with an index
        # head would also work, but deque popleft/append are C-speed and
        # the bucket stays small (events at one instant).
        from collections import deque
        self._ready: "deque[Event]" = deque()
        self._seq = 0
        self._dead = 0
        self._running = False
        self._events_processed = 0
        #: Packets delivered by the link layers.  Incremented identically
        #: in both event models, so it is the dispatch-count metric that
        #: summary digests pin (``events_processed`` is telemetry).
        self.packets_processed = 0
        #: Which event model datapath components should build for:
        #: ``"macro"`` (fused TimedRun bursts) or ``"classic"``
        #: (one event per packet hop).  Resolved once from
        #: ``REPRO_EVENT_MODEL`` at construction.
        self.event_model = _resolve_event_model()
        #: Number of lazy compactions performed (telemetry).
        self.compactions = 0
        #: Tracing hook (:class:`repro.obs.bus.TraceBus`); ``None`` means
        #: tracing is disabled and every probe site short-circuits.
        self.trace = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of dispatches executed so far (telemetry).

        Counts classic events and macro-run items alike, so the value
        depends on the event model; digests pin ``packets_processed``.
        """
        return self._events_processed

    def timed_run(self, fn: Callable) -> TimedRun:
        """Create a :class:`TimedRun` dispatching through ``fn``."""
        return TimedRun(self, fn)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are rejected; a zero delay runs the callback after
        all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        now = self._now
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            event = Event(now, seq, callback, self)
            self._ready.append(event)
        else:
            time = now + delay
            if math.isnan(time):
                raise SimulationError("cannot schedule at NaN time")
            event = Event(time, seq, callback, self)
            heapq.heappush(self._heap, (time, seq, event))
        return event

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < {now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, self)
        if time == now:
            self._ready.append(event)
        else:
            heapq.heappush(self._heap, (time, seq, event))
        return event

    def _note_cancel(self) -> None:
        """O(1) bookkeeping for a cancelled event; compact lazily.

        The trigger scales with the *live* population: a rebuild runs
        only once the dead strictly outnumber the live (and exceed a
        floor so small simulations never pay it), which keeps the
        amortized cost O(1) per cancel no matter how degenerate the
        cancel pattern is.
        """
        self._dead += 1
        dead = self._dead
        if dead <= _COMPACT_MIN_DEAD:
            return
        live = len(self._heap) + len(self._ready) - dead
        if dead > live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the scheduler without cancelled events (O(live)).

        Mutates the heap list and the now bucket in place: ``run``
        holds local aliases to both, and cancel (hence compaction) can
        happen mid-run from an event callback.  Both tiers are purged —
        leaving corpses parked in the now bucket would recount them
        into ``_dead`` and re-trigger an O(live) rebuild on every
        subsequent cancel (the degenerate fault-storm pattern this
        threshold exists to prevent).
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        ready = self._ready
        if any(event.cancelled for event in ready):
            live = [event for event in ready if not event.cancelled]
            ready.clear()
            ready.extend(live)
        self._dead = 0
        self.compactions += 1

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Stops when no events remain, when the next event is strictly past
        ``until``, or after ``max_events`` events.  The clock is advanced
        to ``until`` only when every remaining event (if any) lies beyond
        it — a ``max_events`` stop with work still pending before
        ``until`` leaves the clock at the last executed event, so a
        resumed ``run`` observes a consistent virtual time.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        processed = 0
        try:
            ready = self._ready
            heap = self._heap
            heappop = heapq.heappop
            if until is None and max_events is None:
                # Run-to-exhaustion fast loop: no bound checks per event.
                while True:
                    if ready:
                        # A heap event can share this instant (scheduled
                        # before the clock got here, or a positive delay
                        # that underflowed to now): strictly by seq.
                        if (heap and heap[0][0] == self._now
                                and heap[0][1] < ready[0].seq):
                            event = heappop(heap)[2]
                        else:
                            event = ready.popleft()
                    elif heap:
                        entry = heappop(heap)
                        self._now = entry[0]
                        event = entry[2]
                    else:
                        break
                    if event.__class__ is Event:
                        if event.cancelled:
                            self._dead -= 1
                            continue
                        event.fired = True
                        event.callback()
                        processed += 1
                    else:
                        processed += self._dispatch_run(event, None, None)
                return
            while True:
                if max_events is not None and processed >= max_events:
                    break
                if ready:
                    time = self._now
                    if until is not None and time > until:
                        break
                    if (heap and heap[0][0] == time
                            and heap[0][1] < ready[0].seq):
                        event = heappop(heap)[2]
                    else:
                        event = ready.popleft()
                elif heap:
                    time = heap[0][0]
                    if until is not None and time > until:
                        break
                    event = heappop(heap)[2]
                else:
                    break
                if event.__class__ is not Event:
                    processed += self._dispatch_run(
                        event, until,
                        None if max_events is None
                        else max_events - processed)
                    continue
                if event.cancelled:
                    self._dead -= 1
                    continue
                self._now = time
                event.fired = True
                event.callback()
                processed += 1
            if until is not None and self._now < until:
                # Bugfix (PR 6): never teleport the clock past pending
                # events — only fast-forward when the schedule is empty
                # or the next event lies beyond ``until``.
                next_time = self.peek()
                if next_time is None or next_time > until:
                    self._now = until
        finally:
            # Flushed once per run; nothing reads the counter mid-run.
            self._events_processed += processed
            self._running = False

    def _dispatch_run(self, run: TimedRun, until: Optional[float],
                      limit: Optional[int]) -> int:
        """Fire ``run``'s head item plus run-ahead; return items fired.

        Called with the run's sentinel freshly popped from the heap.
        After the head item fires, consecutive items keep firing inline
        — zero heap traffic — while each is globally next in the exact
        ``(time, seq)`` order (now bucket empty, and no heap event at a
        smaller key).  On any tie or bound the loop stops and a fresh
        sentinel is planted for the new head, returning resolution to
        the main loop's full compare; correctness never depends on how
        far run-ahead got.
        """
        times = run._times
        i = run._head
        if i == len(times):
            return 0  # stale sentinel (defensive; invariant keeps one)
        seqs = run._seqs
        payloads = run._payloads
        fn = run.fn
        fn_batch = run.fn_batch
        heap = self._heap
        ready = self._ready
        fired = 0
        run._dispatching = True  # push() must not plant a sentinel
        try:
            while True:
                t = times[i]
                if until is not None and t > until:
                    break
                self._now = t
                if fn_batch is not None and limit is None and not ready:
                    # Gather the maximal same-instant prefix in which
                    # every item is globally next (beats the heap top by
                    # (time, seq)); ``until`` needs no re-check — the
                    # head already passed it and the prefix shares its
                    # time.  Per-item dispatch would fire exactly these
                    # items consecutively, so one batch call with the
                    # identical payload order is trajectory-equivalent.
                    j = i + 1
                    end = len(times)
                    if heap:
                        h0 = heap[0]
                        h0t = h0[0]
                        h0s = h0[1]
                        while (j < end and times[j] == t
                               and (h0t > t or seqs[j] < h0s)):
                            j += 1
                    else:
                        while j < end and times[j] == t:
                            j += 1
                    if j > i + 1:
                        run._head = j
                        fn_batch(payloads[i:j])
                        fired += j - i
                        i = run._head
                        if i == len(times) or ready:
                            break
                        t2 = times[i]
                        if heap:
                            h0 = heap[0]
                            h0t = h0[0]
                            if h0t < t2 or (h0t == t2 and h0[1] < seqs[i]):
                                break
                        continue
                run._head = i + 1
                fn(payloads[i])
                fired += 1
                if limit is not None and fired >= limit:
                    break
                i = run._head
                if i == len(times) or ready:
                    # Drained, or a same/later-instant bucket entry
                    # needs the main loop's seq tie-break.
                    break
                t2 = times[i]
                if heap:
                    h0 = heap[0]
                    h0t = h0[0]
                    if h0t < t2 or (h0t == t2 and h0[1] < seqs[i]):
                        break
        finally:
            run._dispatching = False
            i = run._head
            if i < len(times):
                heapq.heappush(heap, (times[i], seqs[i], run))
            elif i:
                # Drained: reset storage so a long campaign's runs do
                # not grow without bound.
                del times[:]
                del seqs[:]
                del payloads[:]
                run._head = 0
        return fired

    # -- tracing (repro.obs) -------------------------------------------------

    def subscribe(self, callback, categories=None):
        """Subscribe ``callback(event)`` to this simulator's trace bus.

        Lazily creates the bus (enabling tracing) on first use. When a
        bus already exists, ``categories`` must be ``None`` — the filter
        belongs to the existing bus.
        """
        from repro.obs.bus import TraceBus
        if self.trace is None:
            self.trace = TraceBus(self, categories=categories)
        elif categories is not None:
            raise SimulationError(
                "trace bus already attached; category filters must be "
                "chosen when the bus is created")
        return self.trace.subscribe(callback)

    def emit(self, category: str, name: str, track: str = "sim",
             severity: int = 20, **args) -> None:
        """Publish one trace event (no-op while tracing is disabled)."""
        bus = self.trace
        if bus is not None:
            bus.emit(category, name, track, severity, **args)

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        ready = self._ready
        while ready and ready[0].cancelled:
            ready.popleft()
            self._dead -= 1
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if ready:
            # Bucket entries sit at the current instant; a same-instant
            # heap event (smaller seq) does not change the *time*.
            return self._ready[0].time
        return heap[0][0] if heap else None

    def pending(self) -> int:
        """Number of pending (non-cancelled) events and run items."""
        count = sum(1 for event in self._ready if not event.cancelled)
        for _, _, obj in self._heap:
            if obj.__class__ is Event:
                if not obj.cancelled:
                    count += 1
            else:
                count += len(obj._times) - obj._head
        return count


class Timer:
    """Repeating timer bound to a :class:`Simulator`.

    Calls ``callback`` every ``interval`` seconds until :meth:`stop`.
    The first tick fires after one full interval (or after ``first_delay``
    when given).

    ``on_grid=True`` keeps every tick on the exact absolute grid
    ``first_tick + k * interval`` (one multiplication per tick) instead
    of accumulating ``now + interval`` per tick, whose floating-point
    rounding drifts off the grid within a handful of ticks and keeps
    drifting over long campaigns.  Changing ``interval`` re-anchors the
    grid at the already-scheduled next tick.  The default remains the
    legacy accumulating behaviour because the golden scenario digests
    (tests/data/golden_summaries.json) pin bit-exact trajectories of
    simulations built on it; new long-running campaigns should pass
    ``on_grid=True``.
    """

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[[], None],
                 first_delay: Optional[float] = None,
                 on_grid: bool = False):
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive: {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._event: Optional[Event] = None
        self._stopped = False
        self._on_grid = on_grid
        delay = interval if first_delay is None else first_delay
        self._event = sim.schedule(delay, self._fire)
        #: Grid anchor: the first tick's absolute time; tick ``k`` after
        #: the anchor fires at exactly ``_anchor + k * _interval``.
        self._anchor = self._event.time
        self._ticks = 0

    @property
    def interval(self) -> float:
        return self._interval

    @interval.setter
    def interval(self, value: float) -> None:
        if value <= 0:
            raise SimulationError(f"timer interval must be positive: {value}")
        self._interval = value
        if self._on_grid and self._event is not None and not self._stopped:
            # Re-anchor: the next tick is already scheduled; ticks after
            # it land on the new grid starting there.
            self._anchor = self._event.time
            self._ticks = 0

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if self._stopped:
            return
        if self._on_grid:
            self._ticks += 1
            self._event = self._sim.call_at(
                self._anchor + self._ticks * self._interval, self._fire)
        else:
            self._event = self._sim.schedule(self._interval, self._fire)

    def stop(self) -> None:
        """Cancel the timer; the callback will not fire again."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def stopped(self) -> bool:
        return self._stopped
