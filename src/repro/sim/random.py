"""Deterministic random source for reproducible simulations.

All stochastic components draw from a :class:`DeterministicRandom` seeded
by the scenario, so a run is a pure function of its configuration.
Sub-streams (:meth:`fork`) give independent, stable sequences per
component: adding draws in one component does not perturb another.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence


class DeterministicRandom:
    """Seeded RNG wrapper with named sub-streams."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = random.Random(seed)
        # ``randrange(n)`` is exactly one ``_randbelow(n)`` draw; binding
        # the underlying method skips the argument-normalization wrapper
        # on the per-ACK sampling path without changing the sequence.
        self._randbelow = self._rng._randbelow

    @property
    def seed(self) -> int:
        return self._seed

    def fork(self, name: str) -> "DeterministicRandom":
        """Derive an independent stream identified by ``name``.

        The child seed depends only on (parent seed, name), never on how
        many values the parent has drawn. Built on crc32, NOT ``hash()``:
        Python salts string hashes per process, which would silently
        break run-to-run reproducibility.
        """
        digest = zlib.crc32(f"{self._seed}:{name}".encode("utf-8"))
        return DeterministicRandom(digest & 0x7FFFFFFF)

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def pareto(self, alpha: float) -> float:
        return self._rng.paretovariate(alpha)

    def random(self) -> float:
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def sample_from(self, values: Sequence[float]) -> float:
        """Uniformly sample one element of a non-empty sequence."""
        if not values:
            raise ValueError("cannot sample from an empty sequence")
        return values[self._randbelow(len(values))]

    def randindex(self, n: int) -> int:
        """A uniform index in ``[0, n)`` — ``randrange(n)``, one draw."""
        return self._randbelow(n)

    def shuffle(self, values: list) -> None:
        self._rng.shuffle(values)
