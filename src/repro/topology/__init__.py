"""Declarative multi-AP topologies.

:mod:`repro.topology.spec` holds the pure-data, content-hashable
description (nodes, edges, flows); :mod:`repro.topology.builder`
materializes it into the live simulation graph. The legacy single-AP
scenario in :mod:`repro.experiments.scenario` is a thin adapter that
converts a :class:`~repro.experiments.scenario.ScenarioConfig` into the
canonical single-AP :class:`TopologySpec` and runs it through the same
builder.
"""

from repro.topology.spec import (AP_MODES, EDGE_KINDS, NODE_ROLES,
                                 EdgeSpec, FlowSpec, NodeSpec, TopologySpec,
                                 first_mile_topology, interference_topology,
                                 roaming_topology, single_ap_topology)
from repro.topology.builder import TopologyBuilder

__all__ = [
    "AP_MODES", "EDGE_KINDS", "NODE_ROLES",
    "NodeSpec", "EdgeSpec", "FlowSpec", "TopologySpec",
    "single_ap_topology", "interference_topology", "roaming_topology",
    "first_mile_topology", "TopologyBuilder",
]
