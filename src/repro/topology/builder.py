"""Materializes a :class:`TopologySpec` into the live simulation graph.

The builder is the single construction path for every experiment: the
legacy single-AP scenario (via :func:`repro.topology.spec.single_ap_topology`)
and genuine multi-AP graphs (interference, roaming, first-mile) both go
through here. Construction order mirrors the historical
``_ScenarioBuilder`` exactly — edges, then APs, then flows, then
tracing, then faults — and every RNG fork label, queue class, and
component name of the canonical single-AP topology matches the old
builder, so existing campaign results reproduce bit-identically
(pinned by ``tests/data/golden_summaries.json``).

Packets are steered by a per-flow routing table computed with BFS over
*enabled* edges: each AP's forward callbacks look up
``(node, packet.flow) -> next edge``. Roaming re-runs the route
computation after flipping edge ``enabled`` flags, which is what makes
an inter-AP handoff a first-class operation (see :meth:`begin_roam` /
:meth:`complete_roam`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.aqm import make_queue
from repro.app.bulk import BulkSenderApp, PeriodicBulkApp
from repro.app.video import RtpVideoApp, TcpVideoApp, VideoEncoder
from repro.baselines.fastack import FastAckProxy
from repro.baselines.passthrough import PassthroughAP
from repro.cca import make_rate_cca, make_window_cca
from repro.cca.abc import AbcRouter
from repro.core.feedback_updater import FeedbackKind
from repro.core.zhuge_ap import ZhugeAP
from repro.metrics.recorder import FrameRecorder, RttRecorder
from repro.net.link import WiredLink
from repro.net.packet import FiveTuple, Packet, PacketKind
from repro.net.queue import DropTailQueue
from repro.obs.session import TraceConfig, TraceSession
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom
from repro.topology.spec import (EdgeSpec, FlowSpec, NodeSpec, TopologySpec,
                                 single_ap_topology)
from repro.transport.rtp import RtpReceiver, RtpSender
from repro.transport.tcp import TcpReceiver, TcpSender
from repro.wireless.cellular import CellularLink
from repro.wireless.channel import WirelessChannel
from repro.wireless.contention import ContentionDomain
from repro.wireless.interference import InterferenceModel
from repro.wireless.link import WirelessLink
from repro.wireless.mcs import McsController


@dataclass
class FlowResult:
    """Per-RTC-flow recorders.

    ``rtt`` is the *network-layer* RTT of data packets (downlink delivery
    time minus send time, plus the stable return-path latency) measured
    at the client side of the wireless hop — the paper's §7.2 metric,
    independent of any feedback manipulation. ``cca_rtt`` is what the
    sender's CCA perceives through its feedback stream (with Zhuge these
    differ by design: the perceived signal is shifted earlier).
    """

    rtt: RttRecorder
    frames: FrameRecorder
    cca_rtt: RttRecorder = field(default_factory=RttRecorder)
    goodput_bps: float = 0.0
    mean_bitrate_bps: float = 0.0


@dataclass
class ScenarioResult:
    """Everything the figures read after a run."""

    config: "ScenarioConfig"  # noqa: F821 - duck-typed, see scenario.py
    flows: list[FlowResult]
    prediction_pairs: list[tuple[float, float]] = field(default_factory=list)
    events_processed: int = 0
    #: Packets delivered by the link layers — identical in both event
    #: models (``events_processed`` is model-dependent telemetry).
    packets_processed: int = 0
    ap_packets: int = 0
    #: Live tracing state when ``config.trace_config`` was set. Holds
    #: the collected events and the prediction auditor; never serialized
    #: into campaign summaries.
    trace_session: Optional[TraceSession] = None
    #: (time, kind, phase) of every executed fault phase, in order.
    fault_log: list = field(default_factory=list)
    #: (time, state, reason) of every AP watchdog transition, in order.
    watchdog_transitions: list = field(default_factory=list)
    #: (time, ap, state, reason) of every controller transition, merged
    #: across APs in time order.
    control_transitions: list = field(default_factory=list)
    #: (time, client, old_ap, new_ap) of every completed steering move.
    steering_moves: list = field(default_factory=list)

    @property
    def rtt(self) -> RttRecorder:
        return self.flows[0].rtt

    @property
    def frames(self) -> FrameRecorder:
        return self.flows[0].frames

    def measured_duration(self) -> float:
        return self.config.duration - self.config.warmup


@dataclass
class EdgeRuntime:
    """One live link plus its spec and (for wireless) channel state."""

    spec: EdgeSpec
    link: object
    queue: Optional[object] = None
    channel: Optional[WirelessChannel] = None
    enabled: bool = True

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass
class ApRuntime:
    """One live AP: forwarding element plus optional optimizer state."""

    node: NodeSpec
    ap: object
    zhuge: Optional[ZhugeAP] = None
    abc_router: Optional[AbcRouter] = None
    fastack: dict = field(default_factory=dict)


@dataclass
class FlowRuntime:
    """One live transport flow and where it currently attaches."""

    spec: FlowSpec
    flow: FiveTuple
    protocol: str
    sender: object
    receiver: object
    app: object
    optimized: bool = False
    #: Name of the AP whose wireless hop serves this flow's last mile
    #: (where Zhuge/FastAck registration lives); updated on roam.
    serving_ap: Optional[str] = None
    kind: Optional[FeedbackKind] = None


class TopologyBuilder:
    """Constructs and runs one topology; the engine behind every driver.

    ``config`` supplies scenario-level knobs (protocol, CCA, duration,
    seed, the default bandwidth trace, tracing/fault plans); the
    topology comes from ``topology``, ``config.topology``, or — the
    legacy path — the canonical single-AP graph derived from the
    config itself.
    """

    def __init__(self, config, topology: Optional[TopologySpec] = None):
        self.config = config
        self.topology = (topology
                         or getattr(config, "topology", None)
                         or single_ap_topology(config))
        self.sim = Simulator()
        self.rng = DeterministicRandom(config.seed)

        self.edges: dict[str, EdgeRuntime] = {}
        self.aps: dict[str, ApRuntime] = {}
        self._mcs: dict[str, McsController] = {}
        self._mcs_started: set[str] = set()
        self._domains: dict[str, ContentionDomain] = {}
        #: node -> flow five-tuple -> next-hop edge (the routing table).
        self._routes: dict[str, dict[FiveTuple, EdgeRuntime]] = {}
        #: node -> flow five-tuple -> endpoint callback.
        self._handlers: dict[str, dict[FiveTuple, object]] = {}
        self._network_rtt: dict[FiveTuple, RttRecorder] = {}
        self._return_delay: dict[FiveTuple, float] = {}
        self._rtc: list[FlowRuntime] = []
        self._competitors: list[FlowRuntime] = []
        #: Packets that reached a node with no route for their flow
        #: (data still in flight toward an AP the client just left).
        self.undeliverable = 0

        for node in self.topology.nodes:
            self._routes[node.name] = {}
            self._handlers[node.name] = {}

        self._build_edges()
        self._build_aps()
        self._wire_edges()
        self._build_flows()

        self.trace_session: Optional[TraceSession] = None
        if config.trace_config is not None:
            self._attach_tracing(config.trace_config)
        self.fault_injector = None
        if config.faults is not None and config.faults.faults:
            self._attach_faults(config.faults)
        #: Per-AP adaptive controllers (repro.control), by AP node name.
        self.controllers: dict[str, object] = {}
        #: Fleet steering daemon; ``None`` unless the spec enables it.
        self.steering = None
        control = getattr(config, "control", None)
        if control is not None and control.enabled:
            self._attach_control(control)

    # -- edges ---------------------------------------------------------------

    def _build_edges(self) -> None:
        for edge in self.topology.edges:
            self.edges[edge.name] = self._build_edge(edge)

    def _build_edge(self, edge: EdgeSpec) -> EdgeRuntime:
        if edge.kind == "wired":
            link = WiredLink(self.sim, edge.rate_bps, edge.delay,
                             name=edge.name)
            return EdgeRuntime(spec=edge, link=link, enabled=edge.enabled)

        mcs = None
        if edge.mcs_group is not None:
            mcs = self._mcs.get(edge.mcs_group)
            if mcs is None:
                mcs = McsController()
                self._mcs[edge.mcs_group] = mcs
            if (edge.mcs_period is not None
                    and edge.mcs_group not in self._mcs_started):
                mcs.start_random_switching(self.sim, edge.mcs_period,
                                           self.rng.fork(edge.mcs_group))
                self._mcs_started.add(edge.mcs_group)

        trace = edge.trace.build() if edge.trace is not None else \
            self.config.trace
        if edge.trace_scale != 1.0:
            trace = trace.scaled(edge.trace_scale)
        channel = WirelessChannel(trace, mcs=mcs)

        interference = None
        if edge.interferers > 0:
            label = edge.seed_label or f"intf-{edge.name}"
            interference = InterferenceModel(self.rng.fork(label),
                                             edge.interferers)

        if edge.queue_kind == "droptail":
            queue = DropTailQueue(capacity_bytes=edge.queue_capacity,
                                  name=edge.name)
        else:
            queue = make_queue(edge.queue_kind, edge.queue_capacity,
                               edge.name)

        if edge.kind == "cellular":
            link = CellularLink(self.sim, channel, queue,
                                name=f"{edge.name}-cell")
        else:
            domain = None
            if edge.channel_group is not None:
                domain = self._domains.get(edge.channel_group)
                if domain is None:
                    domain = ContentionDomain(
                        self.rng.fork(f"chan-{edge.channel_group}"))
                    self._domains[edge.channel_group] = domain
            link = WirelessLink(self.sim, channel, queue,
                                interference=interference,
                                max_ampdu_packets=edge.max_ampdu_packets,
                                name=f"{edge.name}-wifi", domain=domain)
        runtime = EdgeRuntime(spec=edge, link=link, queue=queue,
                              channel=channel, enabled=edge.enabled)
        if not edge.enabled:
            link.block()
        return runtime

    def _out_edges(self, node: str) -> list[EdgeRuntime]:
        return [er for er in self.edges.values() if er.spec.src == node]

    def _in_edges(self, node: str) -> list[EdgeRuntime]:
        return [er for er in self.edges.values() if er.spec.dst == node]

    # -- APs -----------------------------------------------------------------

    def _build_aps(self) -> None:
        for node in self.topology.nodes:
            if node.role == "ap":
                self.aps[node.name] = self._build_ap(node)

    def _ap_downlink_edge(self, name: str) -> Optional[EdgeRuntime]:
        """The AP's serving wireless edge (enabled preferred)."""
        wireless = [er for er in self._out_edges(name) if er.spec.wireless]
        for er in wireless:
            if er.enabled:
                return er
        return wireless[0] if wireless else None

    def _build_ap(self, node: NodeSpec) -> ApRuntime:
        config = self.config
        down = self._ap_downlink_edge(node.name)
        runtime = ApRuntime(node=node, ap=None)
        if node.ap_mode == "zhuge":
            if down is None:
                raise ValueError(
                    f"zhuge AP {node.name!r} needs a wireless downlink edge")
            label = node.seed_label or f"zhuge-{node.name}"
            ap = ZhugeAP(self.sim, down.queue, rng=self.rng.fork(label),
                         record_predictions=config.record_predictions)
            ap.track_name = node.name
            runtime.zhuge = ap
        else:
            ap = PassthroughAP()
            if node.ap_mode == "abc":
                if down is None:
                    raise ValueError(
                        f"abc AP {node.name!r} needs a wireless downlink "
                        f"edge")
                share = 1.0
                if down.spec.interferers > 0:
                    share = 1.0 / (1.0 + down.spec.interferers)
                runtime.abc_router = AbcRouter(
                    down.queue,
                    capacity_fn=lambda now, s=share, ch=down.channel:
                        ch.rate_at(now) * s)
        runtime.ap = ap
        ap.forward_downlink = lambda packet, name=node.name: \
            self._forward(name, packet)
        ap.forward_uplink = lambda packet, name=node.name: \
            self._forward(name, packet)
        return runtime

    # -- datapath wiring -----------------------------------------------------

    def _wire_edges(self) -> None:
        for er in self.edges.values():
            if er.spec.dst in self.aps:
                ap_rt = self.aps[er.spec.dst]
                if er.spec.wireless:
                    er.link.deliver = self._make_ap_wireless_in(ap_rt)
                    if hasattr(er.link, "deliver_batch"):
                        er.link.deliver_batch = \
                            self._make_ap_wireless_in_batch(ap_rt)
                else:
                    er.link.deliver = self._make_ap_wired_in(ap_rt)
            else:
                er.link.deliver = self._make_terminal_in(er)
                if er.spec.wireless and hasattr(er.link, "deliver_batch"):
                    er.link.deliver_batch = self._make_terminal_in_batch(er)

    def _make_ap_wired_in(self, ap_rt: ApRuntime):
        """WAN-side ingress: ABC marking, then the AP downlink path."""
        def deliver(packet: Packet) -> None:
            if (ap_rt.abc_router is not None
                    and packet.kind == PacketKind.DATA):
                ap_rt.abc_router.mark(packet, self.sim.now)
            ap_rt.ap.on_downlink(packet)
        return deliver

    def _make_ap_wireless_in(self, ap_rt: ApRuntime):
        """Client-side ingress: FastAck interception, then uplink path."""
        def deliver(packet: Packet) -> None:
            proxy = ap_rt.fastack.get(packet.flow.reversed())
            if proxy is not None:
                proxy.on_uplink(packet, ap_rt.ap.on_uplink)
            else:
                ap_rt.ap.on_uplink(packet)
        return deliver

    def _make_ap_wireless_in_batch(self, ap_rt: ApRuntime):
        """Whole-AMPDU twin of :meth:`_make_ap_wireless_in`.

        Packet-for-packet identical to calling the per-packet deliverer
        in a loop; without FastAck proxies the batch drops straight into
        the AP's ``on_ack_batch`` entry point.
        """
        def deliver_batch(packets: list) -> None:
            fastack = ap_rt.fastack
            if not fastack:
                ap_rt.ap.on_ack_batch(packets)
                return
            on_uplink = ap_rt.ap.on_uplink
            for packet in packets:
                proxy = fastack.get(packet.flow.reversed())
                if proxy is not None:
                    proxy.on_uplink(packet, on_uplink)
                else:
                    on_uplink(packet)
        return deliver_batch

    def _make_terminal_in_batch(self, er: EdgeRuntime):
        """Whole-AMPDU twin of :meth:`_make_terminal_in` (hoisted
        lookups; per-packet semantics unchanged)."""
        src_ap = self.aps.get(er.spec.src) if er.spec.wireless else None
        node = er.spec.dst

        def deliver_batch(packets: list) -> None:
            sim = self.sim
            handlers = self._handlers[node]
            network_rtt = self._network_rtt
            return_delay = self._return_delay
            zhuge = src_ap.zhuge if src_ap is not None else None
            fastack = src_ap.fastack if src_ap is not None else None
            for packet in packets:
                if zhuge is not None:
                    zhuge.on_wireless_delivery(packet)
                if fastack:
                    for proxy in fastack.values():
                        proxy.on_wireless_delivery(packet)
                recorder = network_rtt.get(packet.flow)
                if recorder is not None and packet.kind == PacketKind.DATA:
                    now = sim._now
                    one_way = now - packet.sent_at
                    recorder.record(
                        now, max(0.0, one_way) + return_delay[packet.flow])
                handler = handlers.get(packet.flow)
                if handler is not None:
                    handler(packet)
        return deliver_batch

    def _make_terminal_in(self, er: EdgeRuntime):
        """Delivery into a client/server node: bookkeeping + endpoint."""
        src_ap = self.aps.get(er.spec.src) if er.spec.wireless else None
        node = er.spec.dst

        def deliver(packet: Packet) -> None:
            if src_ap is not None:
                if src_ap.zhuge is not None:
                    src_ap.zhuge.on_wireless_delivery(packet)
                for proxy in src_ap.fastack.values():
                    proxy.on_wireless_delivery(packet)
            recorder = self._network_rtt.get(packet.flow)
            if recorder is not None and packet.kind == PacketKind.DATA:
                one_way = self.sim.now - packet.sent_at
                recorder.record(
                    self.sim.now,
                    max(0.0, one_way) + self._return_delay[packet.flow])
            handler = self._handlers[node].get(packet.flow)
            if handler is not None:
                handler(packet)
        return deliver

    def _forward(self, node: str, packet: Packet) -> None:
        er = self._routes[node].get(packet.flow)
        if er is None:
            self.undeliverable += 1
            return
        er.link.send(packet)

    # -- routing -------------------------------------------------------------

    def _path(self, src: str, dst: str) -> list[EdgeRuntime]:
        """BFS shortest path over enabled edges, deterministic by
        edge declaration order."""
        if src == dst:
            return []
        prev: dict[str, Optional[EdgeRuntime]] = {src: None}
        frontier = deque([src])
        while frontier:
            node = frontier.popleft()
            for er in self._out_edges(node):
                if not er.enabled or er.spec.dst in prev:
                    continue
                prev[er.spec.dst] = er
                if er.spec.dst == dst:
                    path: list[EdgeRuntime] = []
                    cursor = dst
                    while prev[cursor] is not None:
                        path.append(prev[cursor])
                        cursor = prev[cursor].spec.src
                    path.reverse()
                    return path
                frontier.append(er.spec.dst)
        raise ValueError(f"no path from {src!r} to {dst!r} "
                         f"over enabled edges")

    def _clear_routes(self, flow: FiveTuple) -> None:
        for table in self._routes.values():
            table.pop(flow, None)
            table.pop(flow.reversed(), None)

    def _wire_flow_paths(self, fr: FlowRuntime) -> None:
        """(Re)compute both directions' paths; set transmit callbacks,
        per-hop routes, and the stable return-path delay estimate."""
        forward = self._path(fr.spec.src, fr.spec.dst)
        reverse = self._path(fr.spec.dst, fr.spec.src)
        self._clear_routes(fr.flow)
        for i, er in enumerate(forward[:-1]):
            self._routes[er.spec.dst][fr.flow] = forward[i + 1]
        back = fr.flow.reversed()
        for i, er in enumerate(reverse[:-1]):
            self._routes[er.spec.dst][back] = reverse[i + 1]
        fr.sender.transmit = forward[0].link.send
        fr.receiver.transmit = reverse[0].link.send
        # Stable return-path latency: wireless access (~3 ms typical)
        # plus the wired hops back to the sender.
        self._return_delay[fr.flow] = 0.003 + sum(
            er.spec.delay for er in reverse if er.spec.kind == "wired")
        last = forward[-1]
        fr.serving_ap = (last.spec.src if last.spec.wireless
                         and last.spec.src in self.aps else None)

    # -- flows ---------------------------------------------------------------

    def _build_flows(self) -> None:
        self.video_apps: list = []
        self.bulk_apps: list = []
        if not any(f.role == "rtc" for f in self.topology.flows):
            raise ValueError("topology declares no rtc flow")
        rtc_index = 0
        competitor_index = 0
        for fspec in self.topology.flows:
            if fspec.role == "competitor":
                self._build_competitor(fspec, competitor_index)
                competitor_index += 1
            else:
                self._build_rtc_flow(fspec, rtc_index)
                rtc_index += 1

    @staticmethod
    def _enc_label(fspec: FlowSpec, index: int) -> str:
        """RNG fork label of the flow's encoder stream.

        Explicit ``seed_label``s (generated city flows) make the stream
        a function of the spec alone; the historical per-run counter is
        kept for every legacy flow so existing goldens stay bit-exact.
        """
        return fspec.seed_label or f"enc-{index}"

    def _flow_tuple(self, fspec: FlowSpec, protocol: str, base_src: int,
                    base_dst: int, index: int) -> FiveTuple:
        src_port = fspec.src_port or base_src + index
        dst_port = fspec.dst_port or base_dst + index
        return FiveTuple(fspec.src, fspec.dst, src_port, dst_port,
                         "udp" if protocol == "rtp" else "tcp")

    def _build_rtc_flow(self, fspec: FlowSpec, index: int) -> None:
        config = self.config
        protocol = fspec.protocol or config.protocol
        if protocol == "rtp":
            self._build_rtp_flow(fspec, index)
        elif protocol == "tcp":
            self._build_tcp_flow(fspec, index)
        elif protocol == "quic":
            self._build_quic_flow(fspec, index)
        else:
            raise ValueError(f"unknown protocol {protocol!r}")

    def _register_rtc(self, fr: FlowRuntime, kind: FeedbackKind) -> None:
        """Zhuge/FastAck registration on the flow's serving AP."""
        ap_rt = self.aps.get(fr.serving_ap) if fr.serving_ap else None
        if ap_rt is None:
            return
        if ap_rt.zhuge is not None and fr.optimized:
            ap_rt.zhuge.register_flow(fr.flow, kind)
            fr.kind = kind
        if (ap_rt.node.ap_mode == "fastack" and fr.optimized
                and fr.protocol == "tcp"):
            proxy = FastAckProxy(self.sim, fr.flow)
            proxy.forward_uplink = ap_rt.ap.on_uplink
            ap_rt.fastack[fr.flow] = proxy

    def _build_rtp_flow(self, fspec: FlowSpec, index: int) -> None:
        config = self.config
        cca_name = fspec.cca or config.cca
        cca = make_rate_cca(cca_name if cca_name != "copa" else "gcc",
                            initial_bps=config.initial_bps,
                            max_bps=config.max_bps)
        flow = self._flow_tuple(fspec, "rtp", 5000, 6000, index)
        sender = RtpSender(self.sim, flow, cca)
        receiver = RtpReceiver(self.sim, flow)
        encoder = VideoEncoder(fps=config.fps,
                               rng=self.rng.fork(self._enc_label(fspec,
                                                                 index)))
        app = RtpVideoApp(self.sim, sender, receiver, encoder,
                          paced=config.paced_sender)
        fr = FlowRuntime(spec=fspec, flow=flow, protocol="rtp",
                         sender=sender, receiver=receiver, app=app,
                         optimized=fspec.optimized)
        self._wire_flow_paths(fr)

        def rtcp_dispatch(packet: Packet, s=sender) -> None:
            if packet.kind == PacketKind.RTCP_OTHER:
                s.on_nack(packet)
            else:
                s.on_feedback(packet)

        self._handlers[fspec.dst][flow] = receiver.on_data
        self._handlers[fspec.src][flow.reversed()] = rtcp_dispatch
        self._register_rtc(fr, FeedbackKind.IN_BAND)
        self._network_rtt[flow] = RttRecorder()
        self._rtc.append(fr)
        self.video_apps.append((sender, receiver, app))

    def _build_tcp_flow(self, fspec: FlowSpec, index: int) -> None:
        config = self.config
        cca = make_window_cca(fspec.cca or config.cca)
        flow = self._flow_tuple(fspec, "tcp", 5000, 6000, index)
        sender = TcpSender(self.sim, flow, cca)
        receiver = TcpReceiver(self.sim, flow)
        if (fspec.app or config.app) == "bulk":
            # Buffer-filling flow for the CCA studies (paper Fig. 4):
            # no encoder, the window is always tested.
            app = _BulkFlowAdapter(self.sim, sender)
        else:
            encoder = VideoEncoder(fps=config.fps,
                                   rng=self.rng.fork(
                                       self._enc_label(fspec, index)))
            app = TcpVideoApp(self.sim, sender, receiver, encoder,
                              max_rate_bps=config.max_bps)
        fr = FlowRuntime(spec=fspec, flow=flow, protocol="tcp",
                         sender=sender, receiver=receiver, app=app,
                         optimized=fspec.optimized)
        self._wire_flow_paths(fr)
        self._handlers[fspec.dst][flow] = receiver.on_data
        self._handlers[fspec.src][flow.reversed()] = sender.on_ack
        self._register_rtc(fr, FeedbackKind.OUT_OF_BAND)
        self._network_rtt[flow] = RttRecorder()
        self._rtc.append(fr)
        self.video_apps.append((sender, receiver, app))

    def _build_quic_flow(self, fspec: FlowSpec, index: int) -> None:
        """Video over the QUIC-style transport (Table 2's QUIC family).

        Fully encrypted out-of-band feedback: Zhuge must operate on the
        five-tuple and ACK timing alone — which is exactly how the
        OUT_OF_BAND registration behaves.
        """
        from repro.app.quic_video import QuicVideoApp
        from repro.transport.quic import QuicReceiver, QuicSender
        config = self.config
        cca_name = fspec.cca or config.cca
        cca = make_window_cca(cca_name if cca_name != "gcc" else "copa",
                              mss=1200)
        flow = self._flow_tuple(fspec, "quic", 5000, 6000, index)
        sender = QuicSender(self.sim, flow, cca, mss=1200)
        receiver = QuicReceiver(self.sim, flow)
        encoder = VideoEncoder(fps=config.fps,
                               rng=self.rng.fork(self._enc_label(fspec,
                                                                 index)))
        app = QuicVideoApp(self.sim, sender, receiver, encoder,
                           max_rate_bps=config.max_bps)
        fr = FlowRuntime(spec=fspec, flow=flow, protocol="quic",
                         sender=sender, receiver=receiver, app=app,
                         optimized=fspec.optimized)
        self._wire_flow_paths(fr)
        self._handlers[fspec.dst][flow] = receiver.on_data
        self._handlers[fspec.src][flow.reversed()] = sender.on_ack
        self._register_rtc(fr, FeedbackKind.OUT_OF_BAND)
        self._network_rtt[flow] = RttRecorder()
        self._rtc.append(fr)
        self.video_apps.append((sender, receiver, app))

    def _build_competitor(self, fspec: FlowSpec, index: int) -> None:
        flow = self._flow_tuple(fspec, "tcp", 7000, 8000, index)
        sender = TcpSender(self.sim, flow,
                           make_window_cca(fspec.cca or "cubic"))
        receiver = TcpReceiver(self.sim, flow)
        fr = FlowRuntime(spec=fspec, flow=flow, protocol="tcp",
                         sender=sender, receiver=receiver, app=None)
        self._wire_flow_paths(fr)
        self._handlers[fspec.dst][flow] = receiver.on_data
        self._handlers[fspec.src][flow.reversed()] = sender.on_ack
        if fspec.period is not None:
            app = PeriodicBulkApp(self.sim, sender, period=fspec.period)
        else:
            app = BulkSenderApp(self.sim, sender)
        fr.app = app
        self._competitors.append(fr)
        self.bulk_apps.append((sender, receiver, app))

    # -- legacy accessors (tests and drivers reach into these) ---------------

    @property
    def zhuge(self) -> Optional[ZhugeAP]:
        for node in self.topology.nodes:
            ap_rt = self.aps.get(node.name)
            if ap_rt is not None and ap_rt.zhuge is not None:
                return ap_rt.zhuge
        return None

    @property
    def ap(self):
        for node in self.topology.nodes:
            ap_rt = self.aps.get(node.name)
            if ap_rt is not None:
                return ap_rt.ap
        return None

    def _first_ap_out_edge(self) -> Optional[EdgeRuntime]:
        for er in self.edges.values():
            if er.spec.wireless and er.spec.src in self.aps and er.enabled:
                return er
        return None

    def _first_ap_in_edge(self) -> Optional[EdgeRuntime]:
        for er in self.edges.values():
            if er.spec.wireless and er.spec.dst in self.aps and er.enabled:
                return er
        return None

    @property
    def downlink_queue(self):
        er = self._first_ap_out_edge()
        return er.queue if er is not None else None

    @property
    def uplink_queue(self):
        er = self._first_ap_in_edge()
        return er.queue if er is not None else None

    @property
    def downlink_wireless(self):
        er = self._first_ap_out_edge()
        return er.link if er is not None else None

    @property
    def uplink_wireless(self):
        er = self._first_ap_in_edge()
        return er.link if er is not None else None

    @property
    def channel(self):
        er = self._first_ap_out_edge()
        return er.channel if er is not None else None

    @property
    def uplink_channel(self):
        er = self._first_ap_in_edge()
        return er.channel if er is not None else None

    def handlers(self, node: str) -> dict:
        """The endpoint dispatch table of ``node`` (mutable — drivers
        wrap entries for custom endpoint behaviour)."""
        return self._handlers[node]

    @property
    def _client_handlers(self) -> "_NodeHandlerView":
        # Legacy compat: the old builder kept flat flow->handler dicts;
        # the per-node tables route by the five-tuple's dst node, which
        # is exactly where the handler lives.
        return _NodeHandlerView(self)

    _server_handlers = _client_handlers

    # -- roaming (real inter-AP handoff) -------------------------------------

    def _attachment_edges(self, client: str) -> list[EdgeRuntime]:
        return [er for er in self.edges.values()
                if er.spec.wireless
                and client in (er.spec.src, er.spec.dst)]

    def begin_roam(self, client: str) -> int:
        """Detach ``client``: block its attachment edges, flush queues.

        Returns the number of flushed packets. Data already past the
        WAN keeps arriving at the old AP and is dropped there (counted
        in :attr:`undeliverable` once routes move).
        """
        flushed = 0
        for er in self._attachment_edges(client):
            if not er.enabled:
                continue
            er.link.block()
            if er.queue is not None:
                flushed += er.queue.drop_all("roam")
        return flushed

    def complete_roam(self, client: str, new_ap: str) -> None:
        """Re-attach ``client`` on ``new_ap``'s wireless edges.

        The old edges stay down; the new AP's Fortune Teller restarts
        from scratch (its windows are empty or stale), but the
        out-of-band release floor carries over from the old AP so
        feedback release times stay monotone across the handoff.
        Downlink frames the WAN delivered to the old AP during the
        blackout are forwarded to the new AP over the distribution
        system (802.11r-style buffered-frame forwarding) instead of
        being stranded in a dead queue.
        """
        if new_ap not in self.aps:
            raise ValueError(f"roam target {new_ap!r} is not an AP")
        old_aps: set[str] = set()
        handover: list[Packet] = []
        for er in self._attachment_edges(client):
            attached_to = (er.spec.src if er.spec.src in self.aps
                           else er.spec.dst)
            if attached_to == new_ap:
                er.enabled = True
                er.link.unblock()
            elif er.enabled:
                er.enabled = False
                er.link.block()
                old_aps.add(attached_to)
                if er.spec.src == attached_to and er.queue is not None:
                    packet = er.queue.dequeue(self.sim.now)
                    while packet is not None:
                        handover.append(packet)
                        packet = er.queue.dequeue(self.sim.now)
        new_rt = self.aps[new_ap]
        for fr in self._rtc + self._competitors:
            if client not in (fr.spec.src, fr.spec.dst):
                continue
            old_rt = self.aps.get(fr.serving_ap) if fr.serving_ap else None
            floor = 0.0
            if (old_rt is not None and old_rt.zhuge is not None
                    and fr.kind is not None):
                floor = old_rt.zhuge.release_floor(fr.flow)
            self._wire_flow_paths(fr)
            if (fr.serving_ap == new_ap and new_rt.zhuge is not None
                    and fr.optimized and fr.kind is not None):
                if new_rt.zhuge.registered_kind(fr.flow) is None:
                    new_rt.zhuge.register_flow(fr.flow, fr.kind)
                new_rt.zhuge.adopt_release_floor(fr.flow, floor)
        if new_rt.zhuge is not None:
            # Fresh association: whatever the new AP learned before (or
            # never learned) is not this client — restart the Teller.
            new_rt.zhuge.reset_state()
        for packet in handover:
            new_rt.ap.on_downlink(packet)

    # -- tracing (repro.obs) -------------------------------------------------

    def _attach_tracing(self, trace_config: TraceConfig) -> None:
        """Attach probes to every instrumented component: one track per
        wireless edge's queue and link, one per optimizing AP, one per
        RTC sender CCA."""
        session = TraceSession(self.sim, trace_config)
        bus = session.bus
        for er in self.edges.values():
            if er.spec.wireless:
                er.queue.trace = bus
                er.link.trace = bus
        for node in self.topology.nodes:
            ap_rt = self.aps.get(node.name)
            if ap_rt is not None and ap_rt.zhuge is not None:
                ap_rt.zhuge.enable_trace(bus)
        for sender, _receiver, _app in self.video_apps:
            cca = getattr(sender, "cca", None)
            if cca is not None and hasattr(cca, "enable_trace"):
                cca.enable_trace(
                    bus, f"cca/{sender.flow.src_port}->{sender.flow.dst_port}")
        self.trace_session = session

    # -- fault injection (repro.faults) --------------------------------------

    def _attach_faults(self, plan) -> None:
        """Arm the plan's faults against the built topology."""
        from repro.faults.injector import FaultInjector
        if plan.watchdog_enabled:
            for node in self.topology.nodes:
                ap_rt = self.aps.get(node.name)
                if ap_rt is not None and ap_rt.zhuge is not None:
                    ap_rt.zhuge.enable_watchdog(plan.watchdog)
        down = self._first_ap_out_edge()
        up = self._first_ap_in_edge()
        self.fault_injector = FaultInjector(
            self.sim, plan,
            downlink=down.link if down is not None else None,
            uplink=up.link if up is not None else None,
            down_channel=down.channel if down is not None else None,
            up_channel=up.channel if up is not None else None,
            downlink_queue=down.queue if down is not None else None,
            uplink_queue=up.queue if up is not None else None,
            zhuge=self.zhuge,
            trace=self.trace_session.bus if self.trace_session else None,
            edges=self.edges,
            zhuge_by_node={name: rt.zhuge for name, rt in self.aps.items()},
            mover=self)

    # -- adaptive control (repro.control) ------------------------------------

    def _attach_control(self, control) -> None:
        """Attach per-AP controllers and (optionally) fleet steering.

        Runs after fault attachment on purpose: a watchdog armed by the
        fault plan is adopted by the controller (which takes over its
        demote/promote authority); APs without one get the controller
        config's own watchdog.
        """
        from repro.control.controller import ZhugeController
        from repro.control.steering import SteeringDaemon
        bus = self.trace_session.bus if self.trace_session else None
        if control.controller is not None:
            for node in self.topology.nodes:
                ap_rt = self.aps.get(node.name)
                if ap_rt is None or ap_rt.zhuge is None:
                    continue
                self.controllers[node.name] = ZhugeController(
                    self.sim, ap_rt.zhuge, control.controller,
                    edge=self._ap_downlink_edge(node.name),
                    trace=bus, track=f"{node.name}/control")
        if control.steering is not None:
            self.steering = SteeringDaemon(
                self.sim, self, self.controllers, control.steering,
                trace=bus)

    # -- run -----------------------------------------------------------------

    def run(self) -> ScenarioResult:
        config = self.config
        try:
            self.sim.run(until=config.duration)
        except Exception as exc:
            if self.trace_session is not None:
                self.trace_session.dump_on_error(exc)
            raise

        flows = []
        for fr in self._rtc:
            network = self._network_rtt[fr.flow]
            rtt = _filtered_rtt(network, config.warmup)
            cca_rtt = _filtered_rtt(fr.sender.rtt_recorder, config.warmup)
            frames = _filtered_frames(fr.app.frame_recorder, config.warmup)
            result = FlowResult(
                rtt=rtt, frames=frames, cca_rtt=cca_rtt,
                goodput_bps=_flow_goodput(fr.protocol, fr.receiver, config))
            result.mean_bitrate_bps = fr.sender.rate_recorder.mean_rate(
                start=config.warmup)
            flows.append(result)

        zhuge = self.zhuge
        pairs = []
        if zhuge is not None and config.record_predictions:
            pairs = zhuge.fortune_teller.accuracy_pairs()

        ap_packets = 0
        for node in self.topology.nodes:
            ap_rt = self.aps.get(node.name)
            if ap_rt is None:
                continue
            ap_packets += ap_rt.ap.packets_processed
            if ap_rt.zhuge is not None:
                ap_rt.zhuge.stop()
        for _, _receiver, app in self.video_apps:
            app.stop()

        if self.trace_session is not None:
            self.trace_session.export()

        fault_log = []
        if self.fault_injector is not None:
            fault_log = list(self.fault_injector.log)
        watchdog_transitions = []
        if zhuge is not None and zhuge.watchdog is not None:
            watchdog_transitions = list(zhuge.watchdog.transitions)

        control_transitions = []
        for name, controller in self.controllers.items():
            controller.stop()
            control_transitions.extend(
                (t, name, state, reason)
                for t, state, reason in controller.transitions)
        control_transitions.sort(key=lambda entry: (entry[0], entry[1]))
        steering_moves = []
        if self.steering is not None:
            self.steering.stop()
            steering_moves = list(self.steering.moves)

        return ScenarioResult(config=config, flows=flows,
                              prediction_pairs=pairs,
                              events_processed=self.sim.events_processed,
                              packets_processed=self.sim.packets_processed,
                              ap_packets=ap_packets,
                              trace_session=self.trace_session,
                              fault_log=fault_log,
                              watchdog_transitions=watchdog_transitions,
                              control_transitions=control_transitions,
                              steering_moves=steering_moves)


class _NodeHandlerView:
    """Flat flow -> handler mapping over the per-node dispatch tables.

    Packets of a five-tuple are handled at the node named by its ``dst``
    field, so a flat view only needs that key to find the right table.
    Kept for callers written against the legacy ``_client_handlers`` /
    ``_server_handlers`` dicts (e.g. test spies that wrap a receiver).
    """

    def __init__(self, builder: TopologyBuilder):
        self._builder = builder

    def __getitem__(self, flow: FiveTuple):
        return self._builder._handlers[flow.dst][flow]

    def __setitem__(self, flow: FiveTuple, handler) -> None:
        self._builder._handlers[flow.dst][flow] = handler

    def __contains__(self, flow: FiveTuple) -> bool:
        return flow in self._builder._handlers.get(flow.dst, {})

    def get(self, flow: FiveTuple, default=None):
        return self._builder._handlers.get(flow.dst, {}).get(flow, default)


class _BulkFlowAdapter:
    """Presents the video-app interface over a bulk TCP sender."""

    def __init__(self, sim, sender):
        self._bulk = BulkSenderApp(sim, sender)
        self.frame_recorder = FrameRecorder()

    def stop(self) -> None:
        self._bulk.stop()


def _filtered_rtt(recorder: RttRecorder, warmup: float) -> RttRecorder:
    out = RttRecorder()
    for t, r in zip(recorder.times, recorder.rtts):
        if t >= warmup:
            out.record(t, r)
    return out


def _filtered_frames(recorder: FrameRecorder, warmup: float) -> FrameRecorder:
    out = FrameRecorder()
    for t, d in zip(recorder.frame_times, recorder.frame_delays):
        if t >= warmup:
            out.record(t, d)
    return out


#: Payload bytes per received packet, by protocol. The only difference
#: between the historical ``_rtp_goodput``/``_quic_goodput``/
#: ``_tcp_goodput`` helpers was this constant.
_GOODPUT_PAYLOAD_BYTES = {"rtp": 1200, "quic": 1200, "tcp": 1448}


def _flow_goodput(protocol: str, receiver, config) -> float:
    """Approximate goodput from the receiver's packet count.

    All packets are assumed payload-sized; the warmup share is removed
    proportionally.
    """
    span = max(config.duration - config.warmup, 1e-9)
    fraction = span / config.duration
    payload = _GOODPUT_PAYLOAD_BYTES[protocol]
    return receiver.packets_received * fraction * payload * 8 / span
