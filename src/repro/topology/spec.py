"""Pure-data, content-hashable network topologies.

A :class:`TopologySpec` declares the whole experiment graph:

* **nodes** — servers, APs (with a per-AP optimization mode), clients;
* **edges** — directed links: wired (rate + propagation delay) or
  wireless (wifi AMPDU bursts / cellular TTI slots) with a per-edge
  bandwidth trace, AQM discipline, interference level, and optional
  MCS / shared-channel groups;
* **flows** — heterogeneous RTP/TCP/QUIC endpoints pinned to node
  pairs, either latency-sensitive RTC flows or bulk competitors.

Everything is a plain JSON value, so a spec can participate in the
campaign content hash, be pickled to worker processes, and be stored in
manifests. The live simulation graph is materialized by
:class:`repro.topology.builder.TopologyBuilder`.

:func:`single_ap_topology` reproduces the legacy sender–WAN–AP–client
chain bit-identically (same queue classes, RNG fork labels, and wiring
order as the historical ``_ScenarioBuilder``); the other constructors
build genuine ≥2-AP graphs for interference, roaming, and first-mile
studies.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from repro.traces.spec import TraceSpec

#: Bump when the topology payload schema changes incompatibly.
TOPOLOGY_SCHEMA_VERSION = 1

NODE_ROLES = ("server", "ap", "client")
AP_MODES = ("none", "zhuge", "fastack", "abc")
EDGE_KINDS = ("wired", "wifi", "cellular")
FLOW_ROLES = ("rtc", "competitor")
PROTOCOLS = ("rtp", "tcp", "quic")
QUEUE_KINDS = ("droptail", "fifo", "codel", "fq_codel")


def _clean(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if v is not None}


@dataclass(frozen=True)
class NodeSpec:
    """One vertex of the graph: a server, an AP, or a client station."""

    name: str
    role: str
    #: Only meaningful for ``role == "ap"``: none | zhuge | fastack | abc.
    ap_mode: str = "none"
    #: RNG fork label for this node's stochastic state (Zhuge's jitter
    #: stream). ``None`` -> ``"zhuge-<name>"``. The canonical single-AP
    #: topology pins the historical label ``"zhuge"``.
    seed_label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node needs a name")
        if self.role not in NODE_ROLES:
            raise ValueError(f"unknown node role {self.role!r}")
        if self.role == "ap" and self.ap_mode not in AP_MODES:
            raise ValueError(f"unknown ap_mode {self.ap_mode!r}")

    def as_dict(self) -> dict:
        return _clean({"name": self.name, "role": self.role,
                       "ap_mode": self.ap_mode,
                       "seed_label": self.seed_label})

    @classmethod
    def from_dict(cls, payload: dict) -> "NodeSpec":
        return cls(**payload)


@dataclass(frozen=True)
class EdgeSpec:
    """One directed link of the graph.

    ``kind == "wired"`` uses ``rate_bps`` (``None`` = pure delay) and
    ``delay``; wireless kinds draw capacity from ``trace`` (``None`` =
    the scenario-level trace) scaled by ``trace_scale``, shaped by the
    AQM ``queue_kind``, and optionally degraded by ``interferers``
    stochastic stations. Edges sharing an ``mcs_group`` share one MCS
    controller; edges sharing a ``channel_group`` contend for airtime
    on one physical channel. ``enabled=False`` edges exist in the spec
    but start detached — they are roam targets a handoff activates.
    """

    src: str
    dst: str
    name: str = ""
    kind: str = "wired"
    rate_bps: Optional[float] = None
    delay: float = 0.0
    trace: Optional[TraceSpec] = None
    trace_scale: float = 1.0
    queue_kind: str = "droptail"
    queue_capacity: int = 375_000
    interferers: int = 0
    max_ampdu_packets: int = 16
    mcs_group: Optional[str] = None
    mcs_period: Optional[float] = None
    channel_group: Optional[str] = None
    #: RNG fork label for this edge's interference stream. ``None`` ->
    #: ``"intf-<name>"``; the canonical single-AP topology pins the
    #: historical labels ``"intf"`` / ``"intf-up"``.
    seed_label: Optional[str] = None
    enabled: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", f"{self.src}-{self.dst}")
        if self.kind not in EDGE_KINDS:
            raise ValueError(f"unknown link_kind {self.kind!r}")
        if self.queue_kind not in QUEUE_KINDS:
            raise ValueError(f"unknown queue_kind {self.queue_kind!r}")
        if self.kind == "wired" and self.trace is not None:
            raise ValueError(f"wired edge {self.name!r} cannot carry a trace")
        if self.delay < 0:
            raise ValueError(f"edge {self.name!r} has negative delay")

    @property
    def wireless(self) -> bool:
        return self.kind in ("wifi", "cellular")

    def as_dict(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        if self.trace is not None:
            payload["trace"] = self.trace.as_dict()
        return _clean(payload)

    @classmethod
    def from_dict(cls, payload: dict) -> "EdgeSpec":
        payload = dict(payload)
        trace = payload.get("trace")
        if trace is not None:
            payload["trace"] = TraceSpec.from_dict(trace)
        return cls(**payload)


@dataclass(frozen=True)
class FlowSpec:
    """One transport flow between two nodes.

    ``protocol``/``cca``/``app`` default to ``None`` meaning "inherit
    from the scenario config" — the canonical adapter relies on this so
    one topology template serves every protocol sweep. ``role`` selects
    the endpoint stack: ``"rtc"`` builds the latency-sensitive video
    pipeline (and is eligible for AP optimization when ``optimized``),
    ``"competitor"`` builds a CUBIC bulk flow (optionally on/off with
    ``period``).
    """

    src: str
    dst: str
    role: str = "rtc"
    protocol: Optional[str] = None
    cca: Optional[str] = None
    app: Optional[str] = None
    optimized: bool = True
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    period: Optional[float] = None
    #: RNG fork label for this flow's stochastic state (the video
    #: encoder's frame-size stream). ``None`` -> ``"enc-<build index>"``,
    #: the historical per-run counter. Generated city topologies pin an
    #: explicit label per flow so a flow's RNG stream is a function of
    #: the spec alone — the property that makes a decomposable topology
    #: simulate bit-identically whole or shard-by-shard.
    seed_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.role not in FLOW_ROLES:
            raise ValueError(f"unknown flow role {self.role!r}")
        if self.protocol is not None and self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")

    def as_dict(self) -> dict:
        return _clean({f.name: getattr(self, f.name) for f in fields(self)})

    @classmethod
    def from_dict(cls, payload: dict) -> "FlowSpec":
        return cls(**payload)


@dataclass(frozen=True)
class TopologySpec:
    """A whole experiment graph: nodes, directed edges, flows."""

    nodes: tuple[NodeSpec, ...]
    edges: tuple[EdgeSpec, ...]
    flows: tuple[FlowSpec, ...] = ()
    version: int = TOPOLOGY_SCHEMA_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "edges", tuple(self.edges))
        object.__setattr__(self, "flows", tuple(self.flows))
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in {names}")
        known = set(names)
        edge_names = [e.name for e in self.edges]
        if len(set(edge_names)) != len(edge_names):
            raise ValueError(f"duplicate edge names in {edge_names}")
        for edge in self.edges:
            for end in (edge.src, edge.dst):
                if end not in known:
                    raise ValueError(
                        f"edge {edge.name!r} references unknown node {end!r}")
        for flow in self.flows:
            for end in (flow.src, flow.dst):
                if end not in known:
                    raise ValueError(
                        f"flow {flow.src}->{flow.dst} references "
                        f"unknown node {end!r}")

    # -- lookups -------------------------------------------------------------

    def node(self, name: str) -> NodeSpec:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def edge(self, name: str) -> EdgeSpec:
        for edge in self.edges:
            if edge.name == name:
                return edge
        raise KeyError(name)

    def aps(self) -> tuple[NodeSpec, ...]:
        return tuple(n for n in self.nodes if n.role == "ap")

    # -- contention structure ------------------------------------------------

    def contention_domains(self) -> tuple[tuple[str, ...], ...]:
        """Maximal groups of nodes coupled through the wireless medium.

        Two nodes land in the same domain when they are endpoints of one
        wireless edge (a client and its AP always contend for the same
        airtime, and ``enabled=False`` roam-target edges count — a roam
        would couple them mid-run), or when their wireless edges share a
        ``channel_group`` (the builder materializes one
        :class:`~repro.wireless.contention.ContentionDomain` per group,
        so every edge of a group consumes the same airtime budget).

        Nodes with no wireless edge at all (WAN-side servers, wired
        relays) are *infrastructure*: they belong to no domain and may
        be replicated freely, which is exactly what the city sharder
        (:mod:`repro.city.shard`) does with them.

        Returns a tuple of domains, each a tuple of node names; node
        order inside a domain and domain order both follow the spec's
        node declaration order, so the result is deterministic for a
        given spec.
        """
        parent: dict[str, str] = {}

        def find(name: str) -> str:
            root = name
            while parent[root] != root:
                root = parent[root]
            while parent[name] != root:  # path compression
                parent[name], name = root, parent[name]
            return root

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        group_anchor: dict[str, str] = {}
        for edge in self.edges:
            if not edge.wireless:
                continue
            for end in (edge.src, edge.dst):
                parent.setdefault(end, end)
            union(edge.src, edge.dst)
            if edge.channel_group is not None:
                anchor = group_anchor.setdefault(edge.channel_group,
                                                 edge.src)
                union(anchor, edge.src)

        order = {node.name: i for i, node in enumerate(self.nodes)}
        members: dict[str, list[str]] = {}
        for name in sorted(parent, key=order.__getitem__):
            members.setdefault(find(name), []).append(name)
        return tuple(tuple(group) for group in
                     sorted(members.values(), key=lambda g: order[g[0]]))

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict:
        return {"version": self.version,
                "nodes": [n.as_dict() for n in self.nodes],
                "edges": [e.as_dict() for e in self.edges],
                "flows": [f.as_dict() for f in self.flows]}

    @classmethod
    def from_dict(cls, payload: dict) -> "TopologySpec":
        return cls(
            version=payload.get("version", TOPOLOGY_SCHEMA_VERSION),
            nodes=tuple(NodeSpec.from_dict(n) for n in payload["nodes"]),
            edges=tuple(EdgeSpec.from_dict(e) for e in payload["edges"]),
            flows=tuple(FlowSpec.from_dict(f) for f in payload.get("flows",
                                                                   ())))


# ---------------------------------------------------------------------------
# Canonical constructors
# ---------------------------------------------------------------------------


def single_ap_topology(config) -> TopologySpec:
    """The legacy sender–WAN–AP–wireless–client chain as a spec.

    Field-for-field mirror of the historical ``_ScenarioBuilder``
    wiring (paper Fig. 1): every queue class, RNG fork label, capacity,
    and name matches, so every existing single-AP scenario reproduces
    bit-identically through :class:`TopologyBuilder`.
    ``config`` is duck-typed (ScenarioConfig or ScenarioSpec — only the
    topology-shaping fields are read; traces stay scenario-level).
    """
    mcs_group = "mcs" if config.mcs_switch_period is not None else None
    nodes = (
        NodeSpec("server", "server"),
        NodeSpec("ap", "ap", ap_mode=config.ap_mode, seed_label="zhuge"),
        NodeSpec("client", "client"),
    )
    edges = (
        EdgeSpec("server", "ap", name="wan-down", kind="wired",
                 rate_bps=1e9, delay=config.wan_delay),
        EdgeSpec("ap", "client", name="down", kind=config.link_kind,
                 queue_kind=config.queue_kind,
                 queue_capacity=config.queue_capacity,
                 interferers=config.interferers,
                 mcs_group=mcs_group, mcs_period=config.mcs_switch_period,
                 seed_label="intf"),
        EdgeSpec("client", "ap", name="up", kind="wifi",
                 trace_scale=config.uplink_scale,
                 queue_kind="droptail", queue_capacity=200_000,
                 interferers=config.interferers, max_ampdu_packets=8,
                 mcs_group=mcs_group, seed_label="intf-up"),
        EdgeSpec("ap", "server", name="wan-up", kind="wired",
                 rate_bps=None, delay=config.wan_delay),
    )
    mask = config.zhuge_flow_mask or tuple([True] * config.rtc_flows)
    flows = tuple(
        FlowSpec("server", "client", role="rtc",
                 optimized=(i < len(mask) and bool(mask[i])))
        for i in range(config.rtc_flows)
    ) + tuple(
        FlowSpec("server", "client", role="competitor",
                 period=config.competitor_period)
        for _ in range(config.competitors)
    )
    return TopologySpec(nodes=nodes, edges=edges, flows=flows)


def interference_topology(ap_mode: str = "none",
                          queue_kind: str = "fifo",
                          interferers: int = 0,
                          stations: Optional[int] = None,
                          wan_delay: float = 0.020,
                          queue_capacity: int = 375_000) -> TopologySpec:
    """Two APs sharing one channel: the Fig. 17 cross-AP setup.

    The RTC client sits on AP-A (running ``ap_mode``); ``stations``
    bulk TCP stations sit on AP-B, every wireless edge in one
    ``channel_group`` so AP-B's traffic genuinely consumes AP-A's
    airtime. Interference beyond the explicitly simulated stations is
    modeled by the residual stochastic ``interferers`` count on AP-A's
    edges (simulating 40 individual stations is not informative — they
    would each get starved — so the tail is statistical, as before).
    """
    if stations is None:
        stations = min(interferers, 3)
    residual = max(0, interferers - stations)
    nodes = [
        NodeSpec("server", "server"),
        NodeSpec("ap-a", "ap", ap_mode=ap_mode, seed_label="zhuge"),
        NodeSpec("ap-b", "ap"),
        NodeSpec("client", "client"),
    ]
    edges = [
        EdgeSpec("server", "ap-a", name="wan-a", kind="wired",
                 rate_bps=1e9, delay=wan_delay),
        EdgeSpec("ap-a", "client", name="a-down", kind="wifi",
                 queue_kind=queue_kind, queue_capacity=queue_capacity,
                 interferers=residual, channel_group="ch",
                 seed_label="intf"),
        EdgeSpec("client", "ap-a", name="a-up", kind="wifi",
                 trace_scale=0.5, queue_kind="droptail",
                 queue_capacity=200_000, interferers=residual,
                 max_ampdu_packets=8, channel_group="ch",
                 seed_label="intf-up"),
        EdgeSpec("ap-a", "server", name="wan-a-up", kind="wired",
                 rate_bps=None, delay=wan_delay),
        EdgeSpec("server", "ap-b", name="wan-b", kind="wired",
                 rate_bps=1e9, delay=wan_delay),
        EdgeSpec("ap-b", "server", name="wan-b-up", kind="wired",
                 rate_bps=None, delay=wan_delay),
    ]
    flows = [FlowSpec("server", "client", role="rtc")]
    for i in range(stations):
        sta = f"sta-{i}"
        nodes.append(NodeSpec(sta, "client"))
        edges.append(EdgeSpec("ap-b", sta, name=f"b-down-{i}", kind="wifi",
                              queue_kind="fifo",
                              queue_capacity=queue_capacity,
                              channel_group="ch",
                              seed_label=f"intf-b{i}"))
        edges.append(EdgeSpec(sta, "ap-b", name=f"b-up-{i}", kind="wifi",
                              trace_scale=0.5, queue_kind="droptail",
                              queue_capacity=200_000, max_ampdu_packets=8,
                              channel_group="ch",
                              seed_label=f"intf-b{i}-up"))
        flows.append(FlowSpec("server", sta, role="competitor"))
    return TopologySpec(nodes=tuple(nodes), edges=tuple(edges),
                        flows=tuple(flows))


def roaming_topology(ap_mode: str = "zhuge",
                     queue_kind: str = "fq_codel",
                     wan_delay: float = 0.020,
                     queue_capacity: int = 375_000) -> TopologySpec:
    """Two APs, one client: AP-B's edges start disabled (roam target).

    A ``roam@t+d/client:ap-b`` fault detaches the client from AP-A,
    flushes in-flight state, and re-attaches it to AP-B — a real
    inter-AP handoff with Fortune-Teller state restarting on AP-B while
    the out-of-band release floor carries over (release-time
    monotonicity survives the move).
    """
    nodes = (
        NodeSpec("server", "server"),
        NodeSpec("ap-a", "ap", ap_mode=ap_mode, seed_label="zhuge"),
        NodeSpec("ap-b", "ap", ap_mode=ap_mode, seed_label="zhuge-b"),
        NodeSpec("client", "client"),
    )
    edges = (
        EdgeSpec("server", "ap-a", name="wan-a", kind="wired",
                 rate_bps=1e9, delay=wan_delay),
        EdgeSpec("ap-a", "server", name="wan-a-up", kind="wired",
                 rate_bps=None, delay=wan_delay),
        EdgeSpec("server", "ap-b", name="wan-b", kind="wired",
                 rate_bps=1e9, delay=wan_delay),
        EdgeSpec("ap-b", "server", name="wan-b-up", kind="wired",
                 rate_bps=None, delay=wan_delay),
        EdgeSpec("ap-a", "client", name="a-down", kind="wifi",
                 queue_kind=queue_kind, queue_capacity=queue_capacity,
                 seed_label="intf"),
        EdgeSpec("client", "ap-a", name="a-up", kind="wifi",
                 trace_scale=0.5, queue_kind="droptail",
                 queue_capacity=200_000, max_ampdu_packets=8,
                 seed_label="intf-up"),
        EdgeSpec("ap-b", "client", name="b-down", kind="wifi",
                 queue_kind=queue_kind, queue_capacity=queue_capacity,
                 seed_label="intf-b", enabled=False),
        EdgeSpec("client", "ap-b", name="b-up", kind="wifi",
                 trace_scale=0.5, queue_kind="droptail",
                 queue_capacity=200_000, max_ampdu_packets=8,
                 seed_label="intf-b-up", enabled=False),
    )
    flows = (FlowSpec("server", "client", role="rtc"),)
    return TopologySpec(nodes=nodes, edges=edges, flows=flows)


def first_mile_topology(wan_delay: float = 0.020,
                        queue_capacity: int = 375_000,
                        access_rate_bps: float = 50e6,
                        duration: float = 60.0) -> TopologySpec:
    """§6 first-mile: the *sender's own* wireless uplink is the bottleneck.

    The station uploads video through AP-A (its uplink carries the
    scenario trace — the bottleneck), across a WAN hop to AP-B, and
    over AP-B's generous wireless hop to the receiving peer: two real
    APs, with feedback crossing both wireless segments on the way back.
    """
    access = TraceSpec.constant(access_rate_bps, duration, name="access")
    nodes = (
        NodeSpec("station", "client"),
        NodeSpec("ap-a", "ap"),
        NodeSpec("ap-b", "ap"),
        NodeSpec("peer", "client"),
    )
    edges = (
        EdgeSpec("station", "ap-a", name="a-up", kind="wifi",
                 queue_kind="droptail", queue_capacity=queue_capacity,
                 seed_label="intf"),
        EdgeSpec("ap-a", "ap-b", name="wan-ab", kind="wired",
                 rate_bps=1e9, delay=wan_delay),
        EdgeSpec("ap-b", "peer", name="b-down", kind="wifi",
                 trace=access, queue_kind="droptail",
                 queue_capacity=queue_capacity, seed_label="intf-b"),
        EdgeSpec("peer", "ap-b", name="b-up", kind="wifi",
                 trace=access, trace_scale=0.5, queue_kind="droptail",
                 queue_capacity=200_000, max_ampdu_packets=8,
                 seed_label="intf-b-up"),
        EdgeSpec("ap-b", "ap-a", name="wan-ba", kind="wired",
                 rate_bps=None, delay=wan_delay),
        EdgeSpec("ap-a", "station", name="a-down", kind="wifi",
                 trace=access, queue_kind="droptail",
                 queue_capacity=200_000, max_ampdu_packets=8,
                 seed_label="intf-a-down"),
    )
    flows = (FlowSpec("station", "peer", role="rtc", protocol="rtp"),)
    return TopologySpec(nodes=nodes, edges=edges, flows=flows)
