"""Bandwidth traces: container, analysis, and synthetic generators.

The paper evaluates on five real traces (W1 restaurant WiFi, W2 office
WiFi, C1 indoor mixed 4G/5G, C2 city 4G, C3 city 5G) plus the legacy
traces of the ABC paper. We do not have the raw captures, so
:mod:`repro.traces.synthetic` generates seeded traces calibrated to the
statistics the paper reports (mean goodput and the Fig. 3b tail of
available-bandwidth reduction ratios).
"""

from repro.traces.trace import BandwidthTrace
from repro.traces.abw import abw_reduction_ratios, reduction_tail_fraction
from repro.traces.synthetic import (
    TRACE_NAMES,
    ethernet_trace,
    make_trace,
    abc_legacy_trace,
)

__all__ = [
    "BandwidthTrace",
    "abw_reduction_ratios",
    "reduction_tail_fraction",
    "TRACE_NAMES",
    "make_trace",
    "ethernet_trace",
    "abc_legacy_trace",
]
