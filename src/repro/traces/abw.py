"""Available-bandwidth reduction analysis (paper Fig. 3b).

The paper computes the available bandwidth in 200 ms windows and looks
at the ratio between consecutive windows: ``ratio = abw[i] / abw[i+1]``
(a value of 10 means bandwidth dropped by 10x). Fig. 3b reports the
distribution of these reduction ratios; wireless traces show 0.6–7.3%
of ratios above 10x against <0.1% for Ethernet.
"""

from __future__ import annotations

from repro.traces.trace import BandwidthTrace


def abw_reduction_ratios(trace: BandwidthTrace,
                         window: float = 0.200,
                         floor_bps: float = 1_000.0) -> list[float]:
    """Reduction ratios between consecutive ABW windows (>= 1.0 only).

    ``floor_bps`` guards against division by near-zero windows: both
    windows are floored before taking the ratio, mirroring the minimum
    measurable goodput of the paper's capture methodology.
    """
    means = trace.windows(window)
    ratios = []
    for prev, nxt in zip(means, means[1:]):
        prev = max(prev, floor_bps)
        nxt = max(nxt, floor_bps)
        ratio = prev / nxt
        if ratio >= 1.0:
            ratios.append(ratio)
    return ratios


def reduction_tail_fraction(trace: BandwidthTrace, threshold: float,
                            window: float = 0.200) -> float:
    """Fraction of window transitions whose reduction ratio exceeds ``threshold``.

    This is the statistic the Fig. 3b bench reports per trace (e.g. the
    fraction of >10x drops).
    """
    means = trace.windows(window)
    transitions = max(1, len(means) - 1)
    ratios = abw_reduction_ratios(trace, window)
    exceeding = sum(1 for ratio in ratios if ratio >= threshold)
    return exceeding / transitions
