"""Pure-data references to bandwidth traces.

A :class:`TraceSpec` names a trace (a calibrated synthetic family, a
constant rate, or a file) without holding the live
:class:`~repro.traces.trace.BandwidthTrace`, so it can be embedded in
content-hashed specs (:class:`~repro.campaign.spec.ScenarioSpec`,
:class:`~repro.topology.spec.EdgeSpec`), pickled across process
boundaries, and rebuilt bit-identically in any worker.

This module lives under :mod:`repro.traces` (rather than
:mod:`repro.campaign`, where it was born) so the topology layer can
reference traces per edge without importing the campaign machinery;
:mod:`repro.campaign.spec` re-exports it unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from repro.traces.synthetic import (TRACE_NAMES, abc_legacy_trace,
                                    ethernet_trace, make_trace)
from repro.traces.trace import BandwidthTrace

#: Families :meth:`TraceSpec.family` accepts, beyond the five synthetic
#: wireless traces: wired access and the Appendix-B legacy cellular model.
EXTRA_FAMILIES = ("eth", "abc-legacy")


def _canonical_family(name: str) -> str:
    if name.lower() == "abc-legacy":
        return "abc-legacy"
    return name


@dataclass(frozen=True)
class TraceSpec:
    """Reference to a bandwidth trace, buildable in any process.

    ``kind`` selects the source:

    * ``"family"`` — a calibrated synthetic generator (``W1``..``C3``,
      ``eth``, ``abc-legacy``), identified by (family, duration, seed);
    * ``"constant"`` — a flat rate (fairness/competition scenarios);
    * ``"file"`` — a JSON trace file (the hash covers the file bytes).
    """

    kind: str
    family: Optional[str] = None
    duration: float = 60.0
    seed: int = 1
    interval: Optional[float] = None   # None -> the generator's default
    rate_bps: Optional[float] = None
    name: Optional[str] = None
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("family", "constant", "file"):
            raise ValueError(f"unknown trace spec kind {self.kind!r}")
        if self.kind == "family":
            family = _canonical_family(self.family or "")
            if family not in TRACE_NAMES + EXTRA_FAMILIES:
                raise ValueError(f"unknown trace family {self.family!r}")
            object.__setattr__(self, "family", family)
        elif self.kind == "constant" and (self.rate_bps is None
                                          or self.rate_bps <= 0):
            raise ValueError(f"constant trace needs rate_bps > 0: "
                             f"{self.rate_bps}")
        elif self.kind == "file" and not self.path:
            raise ValueError("file trace needs a path")

    # -- constructors --------------------------------------------------------

    @classmethod
    def for_family(cls, family: str, duration: float, seed: int,
                   interval: Optional[float] = None) -> "TraceSpec":
        return cls(kind="family", family=family, duration=duration,
                   seed=seed, interval=interval)

    @classmethod
    def constant(cls, rate_bps: float, duration: float,
                 interval: float = 0.200,
                 name: str = "constant") -> "TraceSpec":
        return cls(kind="constant", rate_bps=rate_bps, duration=duration,
                   interval=interval, name=name)

    @classmethod
    def from_file(cls, path: str | Path) -> "TraceSpec":
        return cls(kind="file", path=str(path))

    # -- materialization -----------------------------------------------------

    def build(self) -> BandwidthTrace:
        """Generate / load the referenced trace."""
        if self.kind == "file":
            return BandwidthTrace.load(self.path)
        if self.kind == "constant":
            return BandwidthTrace.constant(self.rate_bps, self.duration,
                                           self.interval or 0.200,
                                           self.name or "constant")
        kwargs = {} if self.interval is None else {"interval": self.interval}
        if self.family == "eth":
            return ethernet_trace(duration=self.duration, seed=self.seed,
                                  **kwargs)
        if self.family == "abc-legacy":
            return abc_legacy_trace(duration=self.duration, seed=self.seed,
                                    **kwargs)
        return make_trace(self.family, duration=self.duration,
                          seed=self.seed, **kwargs)

    def label(self) -> str:
        if self.kind == "family":
            return self.family
        if self.kind == "constant":
            return self.name or "constant"
        return Path(self.path).stem

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict:
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceSpec":
        return cls(**payload)

    def _hash_payload(self) -> dict:
        payload = self.as_dict()
        if self.kind == "file":
            payload["file_sha256"] = hashlib.sha256(
                Path(self.path).read_bytes()).hexdigest()
        return payload
