"""Synthetic bandwidth-trace generators calibrated to the paper.

We cannot ship the paper's captures (production WiFi/cellular networks),
so each generator is a seeded stochastic model tuned so that:

* mean goodput matches what the paper reports (Appendix A: ~21 Mbps for
  the restaurant WiFi, ~27 Mbps for the office WiFi; typical 4G/5G
  ranges for the cellular traces), and
* the tail of available-bandwidth reduction ratios matches Fig. 3b
  (0.6–7.3% of 200 ms windows showing a >=10x drop for wireless,
  <0.1% for Ethernet).

The model per trace: a slowly-wandering base rate (bounded random walk
in log space, capturing user mobility / load shifts), multiplicative
per-sample fading noise (lognormal), and Poisson "deep fade" events in
which the rate collapses by a heavy-tailed factor for a short duration
(wireless contention bursts / handovers). ``tests/traces`` and the
Fig. 3b bench validate the calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.random import DeterministicRandom
from repro.traces.trace import BandwidthTrace

TRACE_NAMES = ("W1", "W2", "C1", "C2", "C3")


@dataclass(frozen=True)
class TraceModel:
    """Parameters of one synthetic trace family."""

    name: str
    mean_bps: float
    fade_sigma: float          # lognormal sigma of per-sample fading
    walk_sigma: float          # log-space random-walk step of the base rate
    deep_fade_rate: float      # deep fades per second
    deep_fade_depth: float     # pareto alpha for the collapse factor
    deep_fade_duration: float  # mean fade duration (seconds)
    min_bps: float = 100_000.0


# Calibrated families. Depth alpha smaller => heavier >=10x tail.
# Targets from Fig. 3b: wireless traces show 0.6-7.3% of 200 ms windows
# with a >=10x reduction; 5G mmWave (C3) is the most violent.
TRACE_MODELS: dict[str, TraceModel] = {
    # W1: crowded-restaurant 2.4 GHz WiFi, mean ~21 Mbps, heavy contention.
    "W1": TraceModel("W1", 21e6, fade_sigma=0.45, walk_sigma=0.06,
                     deep_fade_rate=0.5, deep_fade_depth=0.5,
                     deep_fade_duration=0.5, min_bps=300_000.0),
    # W2: office 5 GHz WiFi, mean ~27 Mbps, milder but still bursty.
    "W2": TraceModel("W2", 27e6, fade_sigma=0.35, walk_sigma=0.05,
                     deep_fade_rate=0.3, deep_fade_depth=0.55,
                     deep_fade_duration=0.4, min_bps=300_000.0),
    # C1: indoor mixed 4G/5G; RAT switches produce large rate jumps.
    "C1": TraceModel("C1", 60e6, fade_sigma=0.55, walk_sigma=0.08,
                     deep_fade_rate=0.4, deep_fade_depth=0.6,
                     deep_fade_duration=0.6, min_bps=300_000.0),
    # C2: metropolitan 4G; moderate mean with mobility fades.
    "C2": TraceModel("C2", 35e6, fade_sigma=0.50, walk_sigma=0.07,
                     deep_fade_rate=0.4, deep_fade_depth=0.6,
                     deep_fade_duration=0.5, min_bps=300_000.0),
    # C3: metropolitan 5G (mmWave-like): high mean, violent blockage fades.
    "C3": TraceModel("C3", 120e6, fade_sigma=0.60, walk_sigma=0.09,
                     deep_fade_rate=0.8, deep_fade_depth=0.45,
                     deep_fade_duration=0.7, min_bps=300_000.0),
}


def make_trace(name: str, duration: float = 300.0, seed: int = 1,
               interval: float = 0.040) -> BandwidthTrace:
    """Generate one synthetic trace of family ``name``.

    ``interval`` defaults to 40 ms so that the 200 ms ABW windows of the
    Fig. 3b analysis each average five samples, as in the paper's
    methodology.
    """
    if name not in TRACE_MODELS:
        raise ValueError(f"unknown trace {name!r}; expected one of {TRACE_NAMES}")
    model = TRACE_MODELS[name]
    rng = DeterministicRandom(seed).fork(f"trace-{name}")
    count = max(2, round(duration / interval))

    rates: list[float] = []
    log_base = math.log(model.mean_bps)
    log_anchor = log_base
    fade_until = -1.0
    fade_factor = 1.0
    time = 0.0
    for _ in range(count):
        # Bounded random walk of the base rate (mean-reverting in log space).
        log_anchor += rng.gauss(0.0, model.walk_sigma)
        log_anchor += 0.05 * (log_base - log_anchor)

        # Poisson deep-fade arrivals.
        if time >= fade_until and rng.random() < model.deep_fade_rate * interval:
            collapse = 1.0 + rng.pareto(model.deep_fade_depth)
            fade_factor = 1.0 / collapse
            fade_until = time + rng.expovariate(1.0 / model.deep_fade_duration)
        if time >= fade_until:
            fade_factor = 1.0

        fading = rng.lognormal(0.0, model.fade_sigma)
        rate = math.exp(log_anchor) * fading * fade_factor
        rates.append(max(model.min_bps, rate))
        time += interval

    # Normalize so the realized mean matches the model mean.
    realized = sum(rates) / len(rates)
    scale = model.mean_bps / realized
    rates = [max(model.min_bps, r * scale) for r in rates]
    return BandwidthTrace(rates, interval, name,
                          extra={"family": name, "seed": seed})


def ethernet_trace(duration: float = 300.0, seed: int = 1,
                   mean_bps: float = 100e6,
                   interval: float = 0.040) -> BandwidthTrace:
    """Wired access: near-constant rate with tiny jitter (<0.1% big drops)."""
    rng = DeterministicRandom(seed).fork("trace-eth")
    count = max(2, round(duration / interval))
    rates = [mean_bps * (1.0 + rng.gauss(0.0, 0.02)) for _ in range(count)]
    rates = [max(mean_bps * 0.5, r) for r in rates]
    return BandwidthTrace(rates, interval, "eth", extra={"family": "eth"})


def abc_legacy_trace(duration: float = 300.0, seed: int = 1,
                     interval: float = 0.040) -> BandwidthTrace:
    """Legacy cellular trace in the style of the ABC paper's datasets.

    Appendix B notes these traces have an average available bandwidth an
    order of magnitude below the five main traces, with strong
    fluctuation — we model a ~3 Mbps mean Verizon-LTE-like channel.
    """
    model = TraceModel("abc-legacy", 3e6, fade_sigma=0.6, walk_sigma=0.10,
                       deep_fade_rate=0.15, deep_fade_depth=1.2,
                       deep_fade_duration=0.8, min_bps=50_000.0)
    rng = DeterministicRandom(seed).fork("trace-abc-legacy")
    count = max(2, round(duration / interval))
    rates: list[float] = []
    log_base = math.log(model.mean_bps)
    log_anchor = log_base
    fade_until = -1.0
    fade_factor = 1.0
    time = 0.0
    for _ in range(count):
        log_anchor += rng.gauss(0.0, model.walk_sigma)
        log_anchor += 0.05 * (log_base - log_anchor)
        if time >= fade_until and rng.random() < model.deep_fade_rate * interval:
            collapse = 1.0 + rng.pareto(model.deep_fade_depth)
            fade_factor = 1.0 / collapse
            fade_until = time + rng.expovariate(1.0 / model.deep_fade_duration)
        if time >= fade_until:
            fade_factor = 1.0
        fading = rng.lognormal(0.0, model.fade_sigma)
        rates.append(max(model.min_bps,
                         math.exp(log_anchor) * fading * fade_factor))
        time += interval
    realized = sum(rates) / len(rates)
    rates = [max(model.min_bps, r * model.mean_bps / realized) for r in rates]
    return BandwidthTrace(rates, interval, "abc-legacy",
                          extra={"family": "abc-legacy", "seed": seed})


def drop_trace(base_bps: float, k: float, drop_at: float,
               duration: float, recover_at: float | None = None,
               interval: float = 0.010) -> BandwidthTrace:
    """Step trace for the bandwidth-drop microbenchmarks (Figs. 4/14/15).

    Rate is ``base_bps`` until ``drop_at``, then ``base_bps / k`` until
    ``recover_at`` (or the end).
    """
    if k < 1:
        raise ValueError(f"drop factor k must be >= 1: {k}")
    steps = [(drop_at, base_bps)]
    low = base_bps / k
    if recover_at is None:
        steps.append((duration - drop_at, low))
    else:
        steps.append((recover_at - drop_at, low))
        steps.append((duration - recover_at, base_bps))
    return BandwidthTrace.from_steps(steps, interval, f"drop-{k:g}x")
