"""Bandwidth trace container.

A trace is a step function: ``rates_bps[i]`` holds for
``[i * interval, (i+1) * interval)``. Playback past the end wraps
around, which lets short generated traces drive long simulations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable


@dataclass
class BandwidthTrace:
    """Time-varying available bandwidth of a bottleneck link."""

    rates_bps: list[float]
    interval: float = 0.200
    name: str = "trace"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.rates_bps:
            raise ValueError("trace must contain at least one rate sample")
        if self.interval <= 0:
            raise ValueError(f"interval must be positive: {self.interval}")
        for rate in self.rates_bps:
            if rate < 0:
                raise ValueError(f"negative rate in trace: {rate}")

    @property
    def duration(self) -> float:
        """Length of one playback pass in seconds."""
        return len(self.rates_bps) * self.interval

    @property
    def mean_bps(self) -> float:
        return sum(self.rates_bps) / len(self.rates_bps)

    def rate_at(self, time: float) -> float:
        """Bandwidth at virtual ``time``; wraps past the trace end."""
        if time < 0:
            raise ValueError(f"time must be non-negative: {time}")
        index = int(time / self.interval) % len(self.rates_bps)
        return self.rates_bps[index]

    def next_change(self, time: float) -> float:
        """The next instant at which the rate (may) change."""
        index = int(time / self.interval)
        return (index + 1) * self.interval

    def scaled(self, factor: float) -> "BandwidthTrace":
        """A copy with every rate multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        return BandwidthTrace([r * factor for r in self.rates_bps],
                              self.interval, f"{self.name}*{factor:g}",
                              dict(self.extra))

    def clipped(self, min_bps: float) -> "BandwidthTrace":
        """A copy with rates floored at ``min_bps``."""
        return BandwidthTrace([max(r, min_bps) for r in self.rates_bps],
                              self.interval, self.name, dict(self.extra))

    def resampled(self, interval: float) -> "BandwidthTrace":
        """A copy resampled to a new step ``interval`` (nearest sample)."""
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        count = max(1, round(self.duration / interval))
        rates = [self.rate_at(i * interval) for i in range(count)]
        return BandwidthTrace(rates, interval, self.name, dict(self.extra))

    def windows(self, window: float) -> list[float]:
        """Mean rate over consecutive windows of ``window`` seconds."""
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        per_window = max(1, round(window / self.interval))
        means = []
        for start in range(0, len(self.rates_bps), per_window):
            chunk = self.rates_bps[start:start + per_window]
            means.append(sum(chunk) / len(chunk))
        return means

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON."""
        payload = {
            "name": self.name,
            "interval": self.interval,
            "rates_bps": self.rates_bps,
            "extra": self.extra,
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "BandwidthTrace":
        payload = json.loads(Path(path).read_text())
        return cls(rates_bps=payload["rates_bps"],
                   interval=payload["interval"],
                   name=payload.get("name", "trace"),
                   extra=payload.get("extra", {}))

    @classmethod
    def constant(cls, rate_bps: float, duration: float,
                 interval: float = 0.200, name: str = "constant") -> "BandwidthTrace":
        count = max(1, round(duration / interval))
        return cls([rate_bps] * count, interval, name)

    @classmethod
    def from_steps(cls, steps: Iterable[tuple[float, float]],
                   interval: float = 0.010,
                   name: str = "steps") -> "BandwidthTrace":
        """Build from (duration_seconds, rate_bps) segments."""
        rates: list[float] = []
        for duration, rate in steps:
            count = max(1, round(duration / interval))
            rates.extend([rate] * count)
        return cls(rates, interval, name)

    def __len__(self) -> int:
        return len(self.rates_bps)
