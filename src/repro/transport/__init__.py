"""Transport protocol stacks.

``tcp`` implements a byte-stream transport with cumulative ACKs, RTT
estimation, fast retransmit and RTO — the out-of-band-feedback protocol
family of the paper (Table 2). ``rtp`` implements RTP media transport
with TWCC (transport-wide congestion control) RTCP feedback — the
in-band family.
"""

from repro.transport.tcp import TcpSender, TcpReceiver
from repro.transport.rtp import RtpSender, RtpReceiver, TwccFeedback

__all__ = ["TcpSender", "TcpReceiver", "RtpSender", "RtpReceiver",
           "TwccFeedback"]
