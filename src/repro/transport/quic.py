"""QUIC-style transport: encrypted out-of-band feedback (§6 scalability).

The paper argues Zhuge keeps working when the transport encrypts
everything end-to-end: the AP identifies the flow by five-tuple only and
manipulates ACK *timing*, never content. This module provides that
transport so the claim is testable:

* packet-number-based acknowledgements (monotonic; retransmissions get
  NEW packet numbers — no retransmission ambiguity, unlike TCP),
* an ACK-delay field like QUIC's, which the sender subtracts from its
  RTT samples,
* all headers that matter to endpoints are OPAQUE to middleboxes: they
  live under ``headers["quic_sealed"]`` and middlebox code must never
  read them (enforced by tests).

The sender reuses the window-CCA interface, so Copa/BBR/CUBIC run over
QUIC unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cca.base import WindowCca
from repro.metrics.recorder import RateRecorder, RttRecorder
from repro.net.packet import ACK_SIZE, FiveTuple, Packet, PacketKind
from repro.sim.engine import Event, Simulator

TransmitCallback = Callable[[Packet], None]


class QuicSender:
    """QUIC-like sending endpoint (packet-number space, sealed headers)."""

    def __init__(self, sim: Simulator, flow: FiveTuple, cca: WindowCca,
                 mss: int = 1200, rto_min: float = 0.2,
                 max_buffer_bytes: int = 4_000_000):
        self.sim = sim
        self.flow = flow
        self.cca = cca
        self.mss = mss
        self.rto_min = rto_min
        self.max_buffer_bytes = max_buffer_bytes
        self.transmit: Optional[TransmitCallback] = None

        self._next_pn = 0
        self._buffered: list[tuple[int, dict]] = []
        self._buffered_bytes = 0
        # pn -> (size, sent_at, payload-descriptor)
        self._inflight: dict[int, tuple[int, float, dict]] = {}
        self._largest_acked = -1
        self._srtt = 0.0
        self._rttvar = 0.0
        self._loss_event_pn = -1
        self._pto_event: Optional[Event] = None
        self.unlimited = False

        self.rtt_recorder = RttRecorder()
        self.rate_recorder = RateRecorder()
        self.packets_sent = 0
        self.retransmissions = 0
        self.pto_count = 0

    # -- application interface ------------------------------------------------

    def write(self, nbytes: int, meta: Optional[dict] = None) -> bool:
        if nbytes <= 0:
            raise ValueError(f"write size must be positive: {nbytes}")
        if self._buffered_bytes + nbytes > self.max_buffer_bytes:
            return False
        self._buffered.append((nbytes, dict(meta or {})))
        self._buffered_bytes += nbytes
        self._try_send()
        return True

    @property
    def buffered_bytes(self) -> int:
        return self._buffered_bytes

    @property
    def inflight_bytes(self) -> int:
        return sum(size for size, _, _ in self._inflight.values())

    @property
    def srtt(self) -> float:
        return self._srtt if self._srtt > 0 else 0.1

    def estimated_rate_bps(self) -> float:
        return self.cca.cwnd * 8 / self.srtt

    # -- sending ----------------------------------------------------------------

    def _try_send(self) -> None:
        while (self.cca.cwnd - self.inflight_bytes >= self.mss
               and self._send_one()):
            pass

    def _send_one(self) -> bool:
        payload: dict = {}
        if self.unlimited:
            size = self.mss
        else:
            if not self._buffered:
                return False
            pending, meta = self._buffered[0]
            size = min(pending, self.mss)
            payload = dict(meta)
            if pending <= size:
                self._buffered.pop(0)
                payload["last_of_write"] = True
            else:
                self._buffered[0] = (pending - size, meta)
            self._buffered_bytes -= size
        self._emit(size, payload)
        return True

    def _emit(self, size: int, payload: dict,
              retransmission_of: Optional[int] = None) -> None:
        pn = self._next_pn
        self._next_pn += 1
        packet = Packet(self.flow, size, PacketKind.DATA, seq=pn,
                        sent_at=self.sim.now)
        # Everything an endpoint needs is sealed; a middlebox reading it
        # would be breaking encryption.
        packet.headers["quic_sealed"] = {"pn": pn, "payload": dict(payload)}
        self._inflight[pn] = (size, self.sim.now, dict(payload))
        self.packets_sent += 1
        if retransmission_of is not None:
            self.retransmissions += 1
        if self.transmit is not None:
            self.transmit(packet)
        self._arm_pto()

    # -- ACK processing -----------------------------------------------------------

    def on_ack(self, packet: Packet) -> None:
        sealed = packet.headers.get("quic_sealed")
        if sealed is None:
            return
        acked: list[int] = sealed.get("acked", [])
        ack_delay: float = sealed.get("ack_delay", 0.0)
        newly_acked_bytes = 0
        rtt_sample = None
        largest = max(acked, default=-1)
        for pn in acked:
            entry = self._inflight.pop(pn, None)
            if entry is None:
                continue
            size, sent_at, _ = entry
            newly_acked_bytes += size
            if pn == largest:
                rtt_sample = max(0.0, self.sim.now - sent_at - ack_delay)
        if largest > self._largest_acked:
            self._largest_acked = largest
        if rtt_sample is not None:
            self._update_rtt(rtt_sample)
            self.rtt_recorder.record(self.sim.now, rtt_sample)
        if newly_acked_bytes:
            self.cca.on_ack(self.sim.now, rtt_sample or self.srtt,
                            newly_acked_bytes)
            self.rate_recorder.record(self.sim.now,
                                      self.cca.cwnd * 8 / self.srtt)
        self._detect_losses()
        self._arm_pto()
        self._try_send()

    def _detect_losses(self) -> None:
        """QUIC packet-threshold loss detection (kPacketThreshold = 3)."""
        lost = [pn for pn in self._inflight
                if pn + 3 <= self._largest_acked]
        if not lost:
            return
        if max(lost) > self._loss_event_pn:
            self.cca.on_loss(self.sim.now)
            self._loss_event_pn = self._next_pn - 1
        for pn in sorted(lost):
            size, _, payload = self._inflight.pop(pn)
            self._emit(size, payload, retransmission_of=pn)

    def _update_rtt(self, rtt: float) -> None:
        if self._srtt == 0:
            self._srtt = rtt
            self._rttvar = rtt / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt

    # -- probe timeout ----------------------------------------------------------

    def _arm_pto(self) -> None:
        if self._pto_event is not None:
            self._pto_event.cancel()
            self._pto_event = None
        if not self._inflight:
            return
        timeout = max(self.rto_min, self.srtt + 4 * self._rttvar)
        self._pto_event = self.sim.schedule(timeout * 2, self._on_pto)

    def _on_pto(self) -> None:
        self._pto_event = None
        if not self._inflight:
            return
        self.pto_count += 1
        self.cca.on_rto(self.sim.now)
        pn = min(self._inflight)
        size, _, payload = self._inflight.pop(pn)
        self._emit(size, payload, retransmission_of=pn)


class QuicReceiver:
    """QUIC-like receiving endpoint: ACKs every packet with ack_delay=0.

    Delivers stream data in packet-number order per write (packets carry
    whole application chunks; ordering within a write is by pn).
    """

    def __init__(self, sim: Simulator, flow: FiveTuple,
                 ack_size: int = ACK_SIZE):
        self.sim = sim
        self.flow = flow
        self.ack_size = ack_size
        self.transmit: Optional[TransmitCallback] = None
        self.on_deliver: Optional[Callable[[dict, float], None]] = None
        self.packets_received = 0
        self.acks_sent = 0
        self._received: set[int] = set()

    def on_data(self, packet: Packet) -> None:
        sealed = packet.headers.get("quic_sealed")
        if sealed is None:
            return
        pn = sealed["pn"]
        self.packets_received += 1
        if pn not in self._received:
            self._received.add(pn)
            if self.on_deliver is not None:
                self.on_deliver(dict(sealed["payload"]), self.sim.now)
        self._send_ack(pn)

    def _send_ack(self, pn: int) -> None:
        ack = Packet(self.flow.reversed(), self.ack_size, PacketKind.ACK,
                     sent_at=self.sim.now)
        ack.headers["quic_sealed"] = {"acked": [pn], "ack_delay": 0.0}
        self.acks_sent += 1
        if self.transmit is not None:
            self.transmit(ack)
