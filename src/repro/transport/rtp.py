"""RTP media transport with TWCC (transport-wide CC) RTCP feedback.

The in-band-feedback protocol family of the paper (Table 2, §5.3):

* every RTP data packet carries a transport-wide sequence number
  (``twcc_seq``) readable even under SRTP encryption;
* the receiver records per-packet arrival times and periodically packs
  them into a TWCC feedback packet sent back to the sender;
* the sender matches reports against its send history and feeds the
  (send_time, recv_time) pairs to the GCC controller.

The Zhuge in-band Feedback Updater impersonates the receiver: it builds
TWCC packets at the AP from *predicted* arrival times and drops the
client's own TWCC packets (§5.3 step 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cca.base import FeedbackPacketReport, RateCca
from repro.metrics.recorder import RateRecorder, RttRecorder
from repro.net.packet import (FiveTuple, Packet, PacketKind, RTCP_SIZE,
                              RTP_PAYLOAD_SIZE)
from repro.sim.engine import Simulator, Timer

TransmitCallback = Callable[[Packet], None]


@dataclass
class TwccFeedback:
    """Payload of a TWCC feedback packet: (twcc_seq -> arrival time)."""

    base_seq: int
    arrivals: dict[int, float] = field(default_factory=dict)
    constructed_at: float = 0.0
    constructed_by: str = "receiver"


class RtpSender:
    """RTP sending endpoint driving a rate-based CCA.

    The application (video encoder) calls :meth:`send_packet` for each
    RTP packet; pacing and bitrate choice live in the application/pacer,
    which reads ``cca.target_bps``.
    """

    def __init__(self, sim: Simulator, flow: FiveTuple, cca: RateCca,
                 history_window: float = 2.0):
        self.sim = sim
        self.flow = flow
        self.cca = cca
        self.history_window = history_window
        self.transmit: Optional[TransmitCallback] = None

        self._twcc_seq = 0
        # seq -> (sent_at, size, headers); headers kept so NACKed media
        # packets can be retransmitted with their frame metadata.
        self._history: dict[int, tuple[float, int, dict]] = {}
        self._oldest_seq = 0  # seqs below this have been evicted
        self._reported: set[int] = set()
        self._retransmitted: set[int] = set()
        self.rtt_recorder = RttRecorder()
        self.rate_recorder = RateRecorder()
        self.packets_sent = 0
        self.feedback_received = 0
        self.nacks_received = 0
        self.retransmissions = 0

    def send_packet(self, size: int = RTP_PAYLOAD_SIZE,
                    headers: Optional[dict] = None) -> Packet:
        """Emit one RTP packet stamped with the next TWCC sequence number."""
        packet = Packet(self.flow, size, PacketKind.DATA,
                        seq=self._twcc_seq, sent_at=self.sim.now,
                        headers=dict(headers or {}))
        packet.headers["twcc_seq"] = self._twcc_seq
        self._history[self._twcc_seq] = (self.sim.now, size,
                                         dict(headers or {}))
        self._twcc_seq += 1
        self.packets_sent += 1
        self._trim_history()
        if self.transmit is not None:
            self.transmit(packet)
        return packet

    def _trim_history(self) -> None:
        # Seqs are emitted in send-time order, so evict from the front.
        horizon = self.sim.now - self.history_window
        while self._oldest_seq < self._twcc_seq:
            entry = self._history.get(self._oldest_seq)
            if entry is not None and entry[0] >= horizon:
                break
            self._history.pop(self._oldest_seq, None)
            self._reported.discard(self._oldest_seq)
            self._retransmitted.discard(self._oldest_seq)
            self._oldest_seq += 1

    def on_feedback(self, packet: Packet) -> None:
        """Process an incoming TWCC feedback packet."""
        feedback: TwccFeedback | None = packet.headers.get("twcc_feedback")
        if feedback is None:
            return
        self.feedback_received += 1
        reports = []
        max_reported_seq = max(feedback.arrivals, default=-1)
        for seq, (sent, size, _) in sorted(self._history.items()):
            if seq in self._reported:
                continue
            if seq in feedback.arrivals:
                recv = feedback.arrivals[seq]
                reports.append(FeedbackPacketReport(seq, size, sent, recv))
                self._reported.add(seq)
                self.rtt_recorder.record(self.sim.now, self.sim.now - sent)
            elif seq < max_reported_seq:
                # Skipped by the feedback window => treat as lost.
                reports.append(FeedbackPacketReport(seq, size, sent, None))
                self._reported.add(seq)
        if reports:
            self.cca.on_feedback(self.sim.now, reports)
            self.rate_recorder.record(self.sim.now, self.cca.target_bps)

    def on_nack(self, packet: Packet) -> None:
        """Retransmit media the receiver reports missing (RFC 4585 NACK).

        The retransmission is a fresh RTP packet (new transport-wide
        sequence number, as with WebRTC's RTX) carrying the original
        frame metadata, so the receiver can complete the frame.
        """
        seqs = packet.headers.get("nack_seqs") or ()
        self.nacks_received += 1
        for seq in seqs:
            entry = self._history.get(seq)
            if entry is None or seq in self._retransmitted:
                continue
            _, size, headers = entry
            self._retransmitted.add(seq)
            self.retransmissions += 1
            self.send_packet(size, headers)


class RtpReceiver:
    """RTP receiving endpoint: records arrivals, emits TWCC feedback.

    Feedback is sent every ``feedback_interval`` (WebRTC sends roughly
    once per frame / per RTT). Data packets are also handed to an
    application callback for frame reassembly.
    """

    def __init__(self, sim: Simulator, flow: FiveTuple,
                 feedback_interval: float = 0.040,
                 feedback_size: int = RTCP_SIZE,
                 nack_enabled: bool = True,
                 nack_delay: float = 0.015,
                 nack_retries: int = 3):
        self.sim = sim
        self.flow = flow
        self.feedback_interval = feedback_interval
        self.feedback_size = feedback_size
        self.nack_enabled = nack_enabled
        self.nack_delay = nack_delay
        self.nack_retries = nack_retries
        self.transmit: Optional[TransmitCallback] = None
        self.on_media: Optional[Callable[[Packet], None]] = None

        self._pending: dict[int, float] = {}
        self._base_seq = 0
        self._highest_seq = -1
        self._missing: dict[int, tuple[float, int]] = {}  # seq -> (since, tries)
        self.packets_received = 0
        self.feedback_sent = 0
        self.nacks_sent = 0
        self._timer = Timer(sim, feedback_interval, self._emit_feedback)
        self._nack_timer = Timer(sim, nack_delay, self._nack_tick)

    def on_data(self, packet: Packet) -> None:
        self.packets_received += 1
        twcc_seq = packet.headers.get("twcc_seq")
        if twcc_seq is not None:
            self._pending[twcc_seq] = self.sim.now
            self._missing.pop(twcc_seq, None)
            if self.nack_enabled and twcc_seq > self._highest_seq + 1:
                for gap_seq in range(self._highest_seq + 1, twcc_seq):
                    self._missing[gap_seq] = (self.sim.now, 0)
            self._highest_seq = max(self._highest_seq, twcc_seq)
        if self.on_media is not None:
            self.on_media(packet)

    def _nack_tick(self) -> None:
        """Request retransmission of gaps that persisted past nack_delay."""
        if not self._missing:
            return
        now = self.sim.now
        to_request: list[int] = []
        for seq, (since, tries) in list(self._missing.items()):
            if now - since < self.nack_delay:
                continue
            if tries >= self.nack_retries:
                del self._missing[seq]  # give up; the frame will be skipped
                continue
            to_request.append(seq)
            self._missing[seq] = (now, tries + 1)
        if not to_request or self.transmit is None:
            return
        nack = Packet(self.flow.reversed(), self.feedback_size,
                      PacketKind.RTCP_OTHER, sent_at=self.sim.now)
        nack.headers["nack_seqs"] = to_request
        self.nacks_sent += 1
        self.transmit(nack)

    def _emit_feedback(self) -> None:
        if not self._pending:
            return
        feedback = TwccFeedback(base_seq=self._base_seq,
                                arrivals=dict(self._pending),
                                constructed_at=self.sim.now,
                                constructed_by="receiver")
        self._base_seq = max(self._pending) + 1
        self._pending.clear()
        packet = Packet(self.flow.reversed(), self.feedback_size,
                        PacketKind.RTCP_TWCC, sent_at=self.sim.now)
        packet.headers["twcc_feedback"] = feedback
        self.feedback_sent += 1
        if self.transmit is not None:
            self.transmit(packet)

    def stop(self) -> None:
        self._timer.stop()
        self._nack_timer.stop()
