"""TCP-like reliable byte stream with pluggable window CCAs.

Segments carry byte-based sequence numbers; the receiver acknowledges
every data packet with a cumulative ACK (the per-packet acking the
paper attributes to RTC TCP clients). The sender:

* samples RTT from unretransmitted segments (Karn's rule) and keeps
  SRTT/RTTVAR per RFC 6298,
* fast-retransmits after three duplicate ACKs,
* falls back to an exponentially backed-off RTO,
* drives a :class:`~repro.cca.base.WindowCca` and optionally paces.

Application payloads are modelled as byte counts plus per-segment
metadata (frame ids), so a video-over-TCP app can track frame delivery
without simulating actual payload bytes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.cca.base import WindowCca
from repro.metrics.recorder import RateRecorder, RttRecorder
from repro.net.packet import ACK_SIZE, FiveTuple, Packet, PacketKind
from repro.sim.engine import Event, Simulator

TransmitCallback = Callable[[Packet], None]


class TcpSender:
    """Sending endpoint of the byte stream."""

    def __init__(self, sim: Simulator, flow: FiveTuple, cca: WindowCca,
                 mss: int = 1448, rto_min: float = 0.2,
                 max_buffer_bytes: int = 4_000_000):
        self.sim = sim
        self.flow = flow
        self.cca = cca
        self.mss = mss
        self.rto_min = rto_min
        self.max_buffer_bytes = max_buffer_bytes
        self.transmit: Optional[TransmitCallback] = None

        self._next_seq = 0              # next new byte to send
        self._highest_acked = 0         # cumulative ACK point
        self._buffered: deque[tuple[int, dict]] = deque()  # (bytes, meta)
        self._buffered_bytes = 0
        self._inflight: dict[int, tuple[int, float, bool]] = {}
        # seq -> (size, sent_at, retransmitted)
        self._dup_acks = 0
        self._srtt = 0.0
        self._rttvar = 0.0
        self._rto = 1.0
        self._rto_backoff = 1
        self._rto_event: Optional[Event] = None
        self._pacing_event: Optional[Event] = None
        self._recovery_until = 0        # seq: loss events collapse to one
        self.unlimited = False          # bulk mode: infinite data

        self.rtt_recorder = RttRecorder()
        self.rate_recorder = RateRecorder()
        self.segments_sent = 0
        self.retransmissions = 0
        self.rto_count = 0

    # -- application interface ------------------------------------------------

    def write(self, nbytes: int, meta: Optional[dict] = None) -> bool:
        """Append application bytes; False when the buffer is full."""
        if nbytes <= 0:
            raise ValueError(f"write size must be positive: {nbytes}")
        if self._buffered_bytes + nbytes > self.max_buffer_bytes:
            return False
        self._buffered.append((nbytes, dict(meta or {})))
        self._buffered_bytes += nbytes
        self._try_send()
        return True

    @property
    def buffered_bytes(self) -> int:
        return self._buffered_bytes

    @property
    def inflight_bytes(self) -> int:
        return sum(size for size, _, _ in self._inflight.values())

    @property
    def srtt(self) -> float:
        return self._srtt if self._srtt > 0 else 0.1

    def estimated_rate_bps(self) -> float:
        """cwnd/srtt estimate the application uses to pick its bitrate."""
        return self.cca.cwnd * 8 / self.srtt

    # -- sending ----------------------------------------------------------------

    def _window_available(self) -> int:
        return max(0, self.cca.cwnd - self.inflight_bytes)

    def _try_send(self) -> None:
        if self._pacing_event is not None:
            return  # pacing loop is already driving transmission
        pacing = self.cca.pacing_rate(self.srtt)
        if pacing is not None and pacing > 0:
            self._pacing_event = self.sim.schedule(0.0, self._paced_send)
            return
        while self._window_available() >= self.mss and self._send_one():
            pass

    def _paced_send(self) -> None:
        self._pacing_event = None
        if self._window_available() < self.mss:
            return
        if not self._send_one():
            return
        pacing = self.cca.pacing_rate(self.srtt) or (self.cca.cwnd * 8 / self.srtt)
        gap = self.mss * 8 / max(pacing, 1_000.0)
        self._pacing_event = self.sim.schedule(gap, self._paced_send)

    def _send_one(self) -> bool:
        """Emit one new segment from the buffer; False when nothing to send."""
        meta: dict = {}
        if self.unlimited:
            size = self.mss
        else:
            if not self._buffered:
                return False
            pending, write_meta = self._buffered[0]
            size = min(pending, self.mss)
            meta = dict(write_meta)
            if pending <= size:
                self._buffered.popleft()
                meta["last_of_write"] = True
            else:
                self._buffered[0] = (pending - size, write_meta)
            self._buffered_bytes -= size
        seq = self._next_seq
        self._next_seq += size
        self._emit(seq, size, meta, retransmitted=False)
        return True

    def _emit(self, seq: int, size: int, meta: dict,
              retransmitted: bool) -> None:
        packet = Packet(self.flow, size, PacketKind.DATA, seq=seq,
                        sent_at=self.sim.now, headers=dict(meta))
        packet.headers["end_seq"] = seq + size
        self._inflight[seq] = (size, self.sim.now, retransmitted)
        self.segments_sent += 1
        if retransmitted:
            self.retransmissions += 1
        if self.transmit is not None:
            self.transmit(packet)
        self._arm_rto()

    # -- receiving ACKs -----------------------------------------------------------

    def on_ack(self, packet: Packet) -> None:
        """Process an incoming cumulative ACK."""
        ack = packet.ack
        mark = packet.headers.get("abc_mark")
        if mark is not None:
            self.cca.on_explicit_feedback(self.sim.now, mark)

        if ack > self._highest_acked:
            self._dup_acks = 0
            self._rto_backoff = 1
            acked_bytes = ack - self._highest_acked
            self._highest_acked = ack
            self._validate_cwnd()
            rtt_sample = self._ack_inflight(ack)
            if rtt_sample is not None:
                self._update_rtt(rtt_sample)
                self.rtt_recorder.record(self.sim.now, rtt_sample)
                self.cca.on_ack(self.sim.now, rtt_sample, acked_bytes)
            else:
                self.cca.on_ack(self.sim.now, self.srtt, acked_bytes)
            self.rate_recorder.record(self.sim.now, self.cca.cwnd * 8 / self.srtt)
            self._process_sack(packet)
            self._arm_rto()
        elif ack == self._highest_acked and self._inflight:
            self._dup_acks += 1
            self._process_sack(packet)
            if self._dup_acks >= 3:
                self._enter_recovery()
        self._try_send()

    def _process_sack(self, packet: Packet) -> None:
        """Handle SACK information: clear sacked segments, fill holes.

        Out-of-order segments the receiver already holds are removed
        from the in-flight set (their bytes are delivered for windowing
        purposes), and every hole below the highest sacked byte is
        retransmitted — at most once per SRTT per hole. Without this,
        a slow-start overshoot that drops hundreds of segments recovers
        one hole per RTT (NewReno) or one per backed-off RTO.
        """
        ranges = packet.headers.get("sack_ranges")
        if not ranges:
            return
        highest_sacked = max(end for _, end in ranges)
        for seq in list(self._inflight):
            size, _, _ = self._inflight[seq]
            for start, end in ranges:
                if start <= seq and seq + size <= end:
                    del self._inflight[seq]
                    break
        # Retransmit remaining holes below the sacked frontier.
        if any(seq < highest_sacked for seq in self._inflight):
            self._enter_recovery()
            for seq in sorted(self._inflight):
                if seq >= highest_sacked:
                    break
                size, sent_at, _ = self._inflight[seq]
                if self.sim.now - sent_at > max(self.srtt, 0.01):
                    self._emit(seq, size, {}, retransmitted=True)

    def _enter_recovery(self) -> None:
        """One congestion notification per window of loss; retransmit
        the first hole immediately."""
        if self._highest_acked >= self._recovery_until:
            self.cca.on_loss(self.sim.now)
            self._recovery_until = self._next_seq
        if self._highest_acked in self._inflight:
            size, sent_at, _ = self._inflight[self._highest_acked]
            if self.sim.now - sent_at > max(self.srtt / 2, 0.005):
                self._emit(self._highest_acked, size, {},
                           retransmitted=True)

    def _validate_cwnd(self) -> None:
        """Congestion-window validation (RFC 7661, simplified).

        An application-limited sender never tests the window it holds, so
        letting the CCA grow it unboundedly (e.g. ABC's per-ACK
        accelerate marks against a rate-capped video) stores up a burst
        that devastates the queue on the next rate change. When the
        buffer is empty and the window is mostly unused, decay it toward
        what the flow actually uses.
        """
        if self.unlimited or self._buffered:
            return
        used = self.inflight_bytes
        if self.cca.cwnd > max(4 * used, 10 * self.mss):
            self.cca.cwnd = max(int(self.cca.cwnd * 0.98), 10 * self.mss)

    def _ack_inflight(self, ack: int) -> Optional[float]:
        """Drop acked segments; return an RTT sample per Karn's rule."""
        sample: Optional[float] = None
        for seq in sorted(self._inflight):
            size, sent_at, retransmitted = self._inflight[seq]
            if seq + size <= ack:
                del self._inflight[seq]
                if not retransmitted:
                    sample = self.sim.now - sent_at
        return sample

    def _update_rtt(self, rtt: float) -> None:
        if self._srtt == 0:
            self._srtt = rtt
            self._rttvar = rtt / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = max(self.rto_min, self._srtt + 4 * self._rttvar)

    # -- loss recovery ---------------------------------------------------------------

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if not self._inflight:
            return
        timeout = self._rto * self._rto_backoff
        self._rto_event = self.sim.schedule(timeout, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if not self._inflight:
            return
        self.rto_count += 1
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        self.cca.on_rto(self.sim.now)
        self._recovery_until = self._next_seq
        first = min(self._inflight)
        size, _, _ = self._inflight[first]
        self._emit(first, size, {}, retransmitted=True)


class TcpReceiver:
    """Receiving endpoint: cumulative ACK per data packet.

    Tracks received byte ranges so out-of-order arrivals are buffered,
    and delivers in-order segment metadata to an application callback
    (used by the video receiver to detect frame completion).
    """

    def __init__(self, sim: Simulator, flow: FiveTuple,
                 ack_size: int = ACK_SIZE):
        self.sim = sim
        self.flow = flow
        self.ack_size = ack_size
        self.transmit: Optional[TransmitCallback] = None
        self.on_deliver: Optional[Callable[[int, int, dict, float], None]] = None
        # (seq, end_seq, meta, arrival_time) for each in-order delivery

        self._ack_point = 0
        self._out_of_order: dict[int, tuple[int, dict, float]] = {}
        self.packets_received = 0
        self.acks_sent = 0
        self.sack_enabled = True

    def on_data(self, packet: Packet) -> None:
        self.packets_received += 1
        end_seq = packet.headers.get("end_seq", packet.seq + packet.size)
        if packet.seq >= self._ack_point:
            self._out_of_order.setdefault(
                packet.seq, (end_seq, dict(packet.headers), self.sim.now))
        self._advance()
        self._send_ack(echo_mark=packet.headers.get("abc_mark"))

    def _advance(self) -> None:
        while self._ack_point in self._out_of_order:
            end_seq, meta, arrived = self._out_of_order.pop(self._ack_point)
            if self.on_deliver is not None:
                self.on_deliver(self._ack_point, end_seq, meta, self.sim.now)
            self._ack_point = end_seq

    def _sack_ranges(self, limit: int = 32) -> list[tuple[int, int]]:
        """Merged (start, end) ranges of out-of-order data held."""
        if not self._out_of_order:
            return []
        ranges: list[tuple[int, int]] = []
        for start in sorted(self._out_of_order):
            end = self._out_of_order[start][0]
            if ranges and start <= ranges[-1][1]:
                ranges[-1] = (ranges[-1][0], max(ranges[-1][1], end))
            else:
                ranges.append((start, end))
        return ranges[:limit]

    def _send_ack(self, echo_mark: Optional[str]) -> None:
        ack = Packet(self.flow.reversed(), self.ack_size, PacketKind.ACK,
                     ack=self._ack_point, sent_at=self.sim.now)
        if echo_mark is not None:
            ack.headers["abc_mark"] = echo_mark
        if self.sack_enabled:
            ranges = self._sack_ranges()
            if ranges:
                ack.headers["sack_ranges"] = ranges
        self.acks_sent += 1
        if self.transmit is not None:
            self.transmit(ack)
