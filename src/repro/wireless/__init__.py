"""Wireless link models.

The downlink wireless hop is the bottleneck the paper studies. We model:

* a trace-driven channel capacity (:class:`WirelessChannel`),
* MAC-layer frame aggregation (AMPDU) causing bursty departures,
* channel contention from interferers causing bursty access delays,
* MCS (modulation and coding scheme) selection capping the PHY rate.

:class:`WirelessLink` ties these together and serves a network-layer
queue, exposing departures through the queue's callbacks so the Zhuge
Fortune Teller can observe them without special hooks.
"""

from repro.wireless.mcs import MCS_TABLE_80211N, McsController
from repro.wireless.channel import WirelessChannel
from repro.wireless.contention import ContentionDomain
from repro.wireless.interference import InterferenceModel
from repro.wireless.link import WirelessLink
from repro.wireless.cellular import CellularLink

__all__ = [
    "MCS_TABLE_80211N",
    "McsController",
    "WirelessChannel",
    "ContentionDomain",
    "InterferenceModel",
    "WirelessLink",
    "CellularLink",
]
