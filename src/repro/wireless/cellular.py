"""Cellular downlink model: per-UE queues, slotted scheduling.

The paper's cellular traces (C1-C3) come from 4G/5G networks, whose
base stations differ from WiFi APs in two ways that matter here:

* **flow isolation** — each UE (and in practice each bearer) has its own
  queue at the eNB/gNB, so competing flows cannot directly bloat the RTC
  flow's queue (§4.1);
* **slotted service** — the scheduler grants resources per TTI
  (~1 ms), producing regular, small service quanta rather than WiFi's
  contention-gated AMPDU bursts.

:class:`CellularLink` serves a :class:`~repro.aqm.fq_codel.FqCoDelQueue`
(or any flow-isolating queue) in round-robin TTIs at the trace-driven
cell rate. The Fortune Teller observes it exactly as it observes WiFi —
per-flow, through the queue callbacks.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.wireless.channel import WirelessChannel

DeliverCallback = Callable[[Packet], None]


class CellularLink:
    """Slotted cellular downlink serving a (possibly flow-isolating) queue."""

    def __init__(self, sim: Simulator, channel: WirelessChannel,
                 queue: DropTailQueue, tti: float = 0.001,
                 propagation_delay: float = 0.010,
                 name: str = "cell"):
        if tti <= 0:
            raise ValueError(f"tti must be positive: {tti}")
        self.sim = sim
        self.channel = channel
        self.queue = queue
        self.tti = tti
        self.propagation_delay = propagation_delay
        self.name = name
        self.deliver: Optional[DeliverCallback] = None
        self._serving = False
        self._carryover_bytes = 0.0
        self.ttis = 0
        self.packets_sent = 0
        #: Fault hooks (:mod:`repro.faults`); same contract as
        #: :class:`~repro.wireless.link.WirelessLink`.
        self.blocked = False
        self.fault_drop: Optional[Callable[[Packet], bool]] = None
        self.fault_dropped = 0

    def send(self, packet: Packet) -> None:
        accepted = self.queue.enqueue(packet, self.sim.now)
        if accepted and not self._serving and not self.blocked:
            self._serving = True
            self.sim.schedule(0.0, self._serve_tti)

    def block(self) -> None:
        """Stop serving (cell outage); arrivals keep queueing."""
        self.blocked = True

    def unblock(self) -> None:
        """Resume serving; kicks the loop if a backlog accumulated."""
        self.blocked = False
        if not self._serving and not self.queue.is_empty:
            self._serving = True
            self.sim.schedule(0.0, self._serve_tti)

    def _serve_tti(self) -> None:
        """Serve up to one TTI's worth of bytes, then re-arm."""
        if self.blocked:
            # No grants during the outage, and no hoarded budget after.
            self._serving = False
            self._carryover_bytes = 0.0
            return
        if self.queue.is_empty:
            self._serving = False
            self._carryover_bytes = 0.0
            return
        rate = self.channel.rate_at(self.sim.now)
        budget = rate / 8 * self.tti + self._carryover_bytes
        sent: list[Packet] = []
        while not self.queue.is_empty:
            head = self.queue.front()
            if head is not None and head.size > budget:
                break
            packet = self.queue.dequeue(self.sim.now)
            if packet is None:
                break
            budget -= packet.size
            sent.append(packet)
        # Unused grant carries to the next TTI only when a head-of-line
        # packet was too large for this one (no idle hoarding).
        self._carryover_bytes = budget if not self.queue.is_empty else 0.0
        self._carryover_bytes = min(self._carryover_bytes, 3000.0)
        self.ttis += 1
        self.packets_sent += len(sent)
        if sent:
            self.sim.schedule(self.propagation_delay,
                              lambda pkts=sent: self._arrive(pkts))
        self.sim.schedule(self.tti, self._serve_tti)

    def _arrive(self, packets: list[Packet]) -> None:
        if self.deliver is None:
            return
        self.sim.packets_processed += len(packets)
        for packet in packets:
            fault_drop = self.fault_drop
            if fault_drop is not None and fault_drop(packet):
                self.fault_dropped += 1
                continue
            packet.received_at = self.sim.now
            self.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CellularLink({self.name}, {self.ttis} TTIs)"
