"""Trace-driven wireless channel capacity.

The channel answers "what is the deliverable rate right now?" by
combining the bandwidth trace (external fluctuation: contention from
other APs, fading, mobility) with the current MCS cap. It also knows
when the rate next changes so the serving link can reschedule.
"""

from __future__ import annotations

from typing import Optional

from repro.traces.trace import BandwidthTrace
from repro.wireless.mcs import McsController


class WirelessChannel:
    """Instantaneous service rate = min(trace rate, MCS PHY rate * efficiency)."""

    def __init__(self, trace: BandwidthTrace,
                 mcs: Optional[McsController] = None,
                 mac_efficiency: float = 0.7):
        if not 0 < mac_efficiency <= 1:
            raise ValueError(f"mac_efficiency must be in (0, 1]: {mac_efficiency}")
        self.trace = trace
        self.mcs = mcs
        self.mac_efficiency = mac_efficiency
        #: Fault hook (:mod:`repro.faults`): multiplicative rate scale
        #: during an MCS/rate-crash window; 1.0 = healthy.
        self.fault_scale = 1.0

    def rate_at(self, time: float) -> float:
        """Deliverable rate (bps) at virtual ``time``; always positive."""
        rate = self.trace.rate_at(time)
        if self.mcs is not None:
            rate = min(rate, self.mcs.phy_rate_bps * self.mac_efficiency)
        if self.fault_scale != 1.0:
            rate *= self.fault_scale
        return max(rate, 1_000.0)

    def next_change(self, time: float) -> float:
        """Next instant the trace steps (MCS switches are event-driven)."""
        return self.trace.next_change(time)
