"""Shared-channel contention across APs (multi-AP topologies).

A :class:`ContentionDomain` models one physical channel that several
:class:`~repro.wireless.link.WirelessLink` instances (different APs,
both directions) share. Unlike :class:`InterferenceModel` — which is a
*statistical* stand-in for stations the simulation does not carry — the
domain arbitrates airtime between links that really exist in the
topology: every transmitted AMPDU occupies the channel, and every other
member that wants a txop during that window defers until the channel
frees, then backs off.

The model is deliberately coarse (no per-slot CSMA, no capture effect):
defer-until-idle plus a uniform random backoff that grows with the
number of contending members, which is enough to reproduce the
first-order effect the paper's Fig. 17 measures — cross-AP traffic
consuming the victim AP's airtime. Single-AP topologies never create a
domain, so the legacy datapath is untouched.
"""

from __future__ import annotations

from repro.sim.random import DeterministicRandom

#: 802.11n/ac-ish timing constants.
SLOT_TIME = 9e-6
DIFS = 34e-6


class ContentionDomain:
    """Airtime arbiter for wireless links sharing one channel."""

    def __init__(self, rng: DeterministicRandom,
                 slot_time: float = SLOT_TIME,
                 difs: float = DIFS,
                 cw_slots: int = 16):
        self.rng = rng
        self.slot_time = slot_time
        self.difs = difs
        self.cw_slots = cw_slots
        self._members: list = []
        #: Time until which the channel is occupied by someone's AMPDU.
        self.busy_until = 0.0
        self.deferrals = 0

    def register(self, link) -> None:
        if link not in self._members:
            self._members.append(link)

    @property
    def members(self) -> int:
        return len(self._members)

    def access_delay(self, now: float) -> float:
        """Extra wait before a member's txop may start.

        Defer until the channel is idle, then DIFS plus a uniform
        backoff whose expected value scales with the number of *other*
        members — each is a station that may win the slot first.
        """
        wait = max(0.0, self.busy_until - now)
        if wait > 0.0:
            self.deferrals += 1
        contenders = max(1, self.members - 1)
        backoff = self.rng.uniform(0.0, self.cw_slots * contenders)
        return wait + self.difs + backoff * self.slot_time

    def occupy(self, start: float, airtime: float) -> None:
        """Mark the channel busy for one member's transmission."""
        self.busy_until = max(self.busy_until, start + airtime)
