"""Channel-contention model for co-channel interferers.

Interferers (paper §7.4) are bulk-transfer stations on *other* APs
sharing the channel. They do not share our AP's queue; they steal
airtime. We model CSMA/CA contention at the txop level: before each
transmission opportunity the AP waits a random access delay whose mean
grows with the number of active interferers, and the long-run airtime
share shrinks accordingly.
"""

from __future__ import annotations

from repro.sim.random import DeterministicRandom


class InterferenceModel:
    """Per-txop access delay and airtime share under contention."""

    def __init__(self, rng: DeterministicRandom, interferers: int = 0,
                 slot_time: float = 9e-6, base_backoff_slots: float = 8.0,
                 per_interferer_busy: float = 0.0018):
        if interferers < 0:
            raise ValueError(f"interferers must be non-negative: {interferers}")
        self.rng = rng
        self.interferers = interferers
        self.slot_time = slot_time
        self.base_backoff_slots = base_backoff_slots
        self.per_interferer_busy = per_interferer_busy

    @property
    def airtime_share(self) -> float:
        """Long-run fraction of airtime our AP wins (1 / (1 + n))."""
        return 1.0 / (1.0 + self.interferers)

    def access_delay(self) -> float:
        """Random channel-access wait before one txop.

        DIFS + random backoff, plus — with probability growing in the
        number of interferers — a busy period while another station
        holds the channel (its frame duration, exponentially
        distributed around a typical AMPDU airtime).
        """
        backoff_slots = self.rng.uniform(0.0, 2.0 * self.base_backoff_slots)
        delay = 34e-6 + backoff_slots * self.slot_time
        busy_probability = min(0.9, self.per_interferer_busy * self.interferers * 100)
        while self.rng.random() < busy_probability:
            delay += self.rng.expovariate(1.0 / 0.002)
            busy_probability *= 0.5
        return delay
