"""The wireless downlink: serves a queue with AMPDU bursts under contention.

The serving loop models one transmission opportunity (txop) at a time:

1. wait the contention access delay (grows with interferers),
2. aggregate up to ``max_ampdu_packets`` / ``max_ampdu_bytes`` of the
   queue head into one AMPDU — this is the bursty-departure behaviour
   that motivates the Fortune Teller's qShort/maxBurstSize handling,
3. transmit the AMPDU at the channel's current rate (airtime-share
   scaled), then deliver all aggregated packets simultaneously after
   the propagation delay.

Departure callbacks fire at dequeue time (when packets leave the
network-layer queue to the driver), matching where Zhuge measures
``txRate`` and ``dequeueIntvl``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.wireless.channel import WirelessChannel
from repro.wireless.interference import InterferenceModel

DeliverCallback = Callable[[Packet], None]


class WirelessLink:
    """Queue-serving wireless hop (AP -> client)."""

    def __init__(self, sim: Simulator, channel: WirelessChannel,
                 queue: DropTailQueue,
                 interference: Optional[InterferenceModel] = None,
                 propagation_delay: float = 0.002,
                 max_ampdu_packets: int = 16,
                 max_ampdu_bytes: int = 24_000,
                 per_txop_overhead: float = 0.0003,
                 name: str = "wifi",
                 domain=None):
        if max_ampdu_packets < 1:
            raise ValueError("max_ampdu_packets must be >= 1")
        self.sim = sim
        self.channel = channel
        self.queue = queue
        self.interference = interference
        #: Shared-channel arbiter (:mod:`repro.wireless.contention`);
        #: ``None`` for single-AP topologies — the legacy fast path.
        self.domain = domain
        if domain is not None:
            domain.register(self)
        self.propagation_delay = propagation_delay
        self.max_ampdu_packets = max_ampdu_packets
        self.max_ampdu_bytes = max_ampdu_bytes
        self.per_txop_overhead = per_txop_overhead
        self.name = name
        self.deliver: Optional[DeliverCallback] = None
        self._serving = False
        self.txops = 0
        self.packets_sent = 0
        #: Fault hooks (:mod:`repro.faults`). While ``blocked`` the
        #: serving loop parks (arrivals keep queueing); ``fault_drop``
        #: is an optional ``packet -> bool`` predicate consulted at
        #: delivery time (True = the packet is lost over the air).
        self.blocked = False
        self.fault_drop: Optional[Callable[[Packet], bool]] = None
        self.fault_dropped = 0
        #: Tracing probe (:class:`repro.obs.bus.TraceBus`); ``None`` =
        #: disabled. Rate-change events are deduplicated against the
        #: last traced rate so the track stays step-shaped.
        self.trace = None
        self._traced_rate: Optional[float] = None
        #: AMPDU currently on the air (between transmit and finish) and
        #: AMPDUs propagating to the client, oldest first. Bound-method
        #: events pop from these instead of closing over per-txop
        #: lambdas — one less allocation per txop on the hot path.
        self._tx_ampdu: Optional[list[Packet]] = None
        from collections import deque
        self._arrivals: "deque[list[Packet]]" = deque()
        #: Optional whole-AMPDU delivery callback (macro mode): must be
        #: observably identical to calling ``deliver`` per packet; used
        #: only when no fault predicate or trace hooks are active.
        self.deliver_batch: Optional[Callable[[list[Packet]], None]] = None
        #: Macro event model: the per-txop finish/arrive event pair is
        #: replaced by two TimedRun streams keyed on the same times and
        #: seq-consumption points as the classic events, so trajectories
        #: are bit-identical.  Serve/transmit stay classic events — the
        #: contention RNG draws and queue reads must happen at their
        #: exact classic instants.
        self._macro = sim.event_model == "macro"
        if self._macro:
            self._finish_run = sim.timed_run(self._macro_finish)
            self._arrive_run = sim.timed_run(self._macro_arrive)

    def send(self, packet: Packet) -> None:
        """Accept a downlink packet (enqueue; kick the server if idle)."""
        queue = self.queue
        if queue._plain and queue.trace is None and not queue.on_arrival:
            # Inlined plain ``DropTailQueue.enqueue`` — identical stats,
            # stamps, and drop path, one call frame less on the
            # per-packet downlink edge.  Probed/subclassed queues take
            # the generic call.
            size = packet.size
            if queue._bytes + size > queue.capacity_bytes:
                queue._drop(packet, "tail-overflow")
                return
            packet.enqueued_at = self.sim._now
            queue._packets.append(packet)
            queue._bytes += size
            stats = queue.stats
            stats.enqueued += 1
            stats.bytes_enqueued += size
        elif not queue.enqueue(packet, self.sim.now):
            return
        if not self._serving and not self.blocked:
            self._serving = True
            self.sim.schedule(0.0, self._serve_txop)

    def block(self) -> None:
        """Stop serving (link blackout); arrivals keep queueing."""
        self.blocked = True

    def unblock(self) -> None:
        """Resume serving; kicks the loop if a backlog accumulated."""
        self.blocked = False
        if not self._serving and not self.queue.is_empty:
            self._serving = True
            self.sim.schedule(0.0, self._serve_txop)

    def _serve_txop(self) -> None:
        if self.blocked:
            self._serving = False
            return
        if self.queue.is_empty:
            self._serving = False
            return
        access_delay = 0.0
        if self.interference is not None:
            access_delay = self.interference.access_delay()
        if self.domain is not None:
            access_delay += self.domain.access_delay(self.sim.now)
        self.sim.schedule(access_delay, self._transmit_ampdu)

    def _transmit_ampdu(self) -> None:
        if self.blocked:
            # A blackout hit between the access-delay grant and the
            # transmission; the txop is forfeited.
            self._serving = False
            return
        # Aggregate the head of the queue into one AMPDU. All packets in
        # the AMPDU dequeue at the same instant (bursty departures).
        ampdu = self.queue.dequeue_burst(self.sim.now,
                                         self.max_ampdu_packets,
                                         self.max_ampdu_bytes)
        if not ampdu:
            # The AQM dropped the rest of the backlog; try again.
            self.sim.schedule(0.0, self._serve_txop)
            return
        ampdu_bytes = 0
        for packet in ampdu:
            ampdu_bytes += packet.size

        rate = self.channel.rate_at(self.sim.now)
        if self.interference is not None:
            rate *= self.interference.airtime_share
        rate = max(rate, 1_000.0)
        airtime = (ampdu_bytes * 8) / rate + self.per_txop_overhead
        if self.domain is not None:
            self.domain.occupy(self.sim.now, airtime)
        self.txops += 1
        self.packets_sent += len(ampdu)
        if self.trace is not None:
            if rate != self._traced_rate:
                self.trace.link_rate(self, rate)
                self._traced_rate = rate
            self.trace.link_txop(self, len(ampdu), ampdu_bytes, airtime,
                                 rate)
        if self._macro:
            self._finish_run.push(self.sim._now + airtime, ampdu)
        else:
            self._tx_ampdu = ampdu
            self.sim.schedule(airtime, self._finish)

    def _macro_finish(self, ampdu: list[Packet]) -> None:
        """TimedRun twin of :meth:`_finish` (same order of operations)."""
        self._arrive_run.push(self.sim._now + self.propagation_delay, ampdu)
        self._serve_txop()

    def _macro_arrive(self, ampdu: list[Packet]) -> None:
        """TimedRun twin of :meth:`_arrive`, with a batch fast path."""
        if self.deliver is None:
            return
        sim = self.sim
        sim.packets_processed += len(ampdu)
        if self.fault_drop is None and self.trace is None:
            now = sim._now
            deliver_batch = self.deliver_batch
            if deliver_batch is not None:
                for packet in ampdu:
                    packet.received_at = now
                deliver_batch(ampdu)
                return
            deliver = self.deliver
            for packet in ampdu:
                packet.received_at = now
                deliver(packet)
            return
        for packet in ampdu:
            fault_drop = self.fault_drop
            if fault_drop is not None and fault_drop(packet):
                self.fault_dropped += 1
                continue
            packet.received_at = sim.now
            if self.trace is not None:
                self.trace.link_delivery(self, packet)
            self.deliver(packet)

    def _finish(self) -> None:
        # Only one AMPDU occupies the air at a time: the next txop is
        # granted from here, so the slot is always ours to take.
        self._arrivals.append(self._tx_ampdu)
        self._tx_ampdu = None
        self.sim.schedule(self.propagation_delay, self._arrive)
        self._serve_txop()

    def _arrive(self) -> None:
        # Arrival events fire in the order their AMPDUs were appended
        # (finish times and propagation delay are monotone), so the
        # oldest in-flight AMPDU is the one landing now.
        ampdu = self._arrivals.popleft()
        if self.deliver is None:
            return
        self.sim.packets_processed += len(ampdu)
        for packet in ampdu:
            fault_drop = self.fault_drop
            if fault_drop is not None and fault_drop(packet):
                self.fault_dropped += 1
                continue
            packet.received_at = self.sim.now
            if self.trace is not None:
                self.trace.link_delivery(self, packet)
            self.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"WirelessLink({self.name}, {self.txops} txops)"
