"""Modulation and coding scheme (MCS) model.

802.11 devices adapt the PHY rate to channel quality by switching MCS
index. The testbed experiment ``mcs`` of the paper (§7.5) forces random
MCS changes every 30 s with ``iw``; :class:`McsController` reproduces
that behaviour, and the link caps its service rate at the current MCS
PHY rate.
"""

from __future__ import annotations

from repro.sim.engine import Simulator, Timer
from repro.sim.random import DeterministicRandom

# 802.11n single-stream, 20 MHz, long guard interval (bps).
MCS_TABLE_80211N: tuple[float, ...] = (
    6.5e6, 13e6, 19.5e6, 26e6, 39e6, 52e6, 58.5e6, 65e6,
)


class McsController:
    """Holds the current MCS index; optionally re-picks it periodically."""

    def __init__(self, table: tuple[float, ...] = MCS_TABLE_80211N,
                 index: int | None = None):
        if not table:
            raise ValueError("MCS table must not be empty")
        self.table = table
        self._index = len(table) - 1 if index is None else index
        if not 0 <= self._index < len(table):
            raise ValueError(f"MCS index {self._index} out of range")
        self._timer: Timer | None = None

    @property
    def index(self) -> int:
        return self._index

    @index.setter
    def index(self, value: int) -> None:
        if not 0 <= value < len(self.table):
            raise ValueError(f"MCS index {value} out of range")
        self._index = value

    @property
    def phy_rate_bps(self) -> float:
        return self.table[self._index]

    def start_random_switching(self, sim: Simulator, period: float,
                               rng: DeterministicRandom,
                               min_index: int = 1) -> None:
        """Re-pick a random MCS every ``period`` seconds (the `mcs` scenario).

        ``min_index`` avoids the lowest rung so the link never fully
        starves (matching a testbed that keeps association alive).
        """
        if self._timer is not None:
            self._timer.stop()

        def switch() -> None:
            self._index = rng.randint(min_index, len(self.table) - 1)

        self._timer = Timer(sim, period, switch, first_delay=period)

    def stop_switching(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
