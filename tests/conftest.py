"""Shared fixtures for the test suite."""

import pytest

from repro.net.packet import FiveTuple, Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.random import DeterministicRandom


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rng():
    return DeterministicRandom(42)


@pytest.fixture
def flow():
    return FiveTuple("server", "client", 5000, 6000, "udp")


def make_packet(flow, size=1200, seq=0, kind=PacketKind.DATA, **headers):
    return Packet(flow, size, kind, seq=seq, headers=dict(headers))


@pytest.fixture
def packet_factory(flow):
    def factory(size=1200, seq=0, kind=PacketKind.DATA, **headers):
        return make_packet(flow, size, seq, kind, **headers)
    return factory
