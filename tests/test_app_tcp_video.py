"""Unit tests for the video-over-TCP application."""

import pytest

from repro.app.video import TcpVideoApp, VideoEncoder
from repro.cca.copa import CopaCca
from repro.sim.random import DeterministicRandom
from repro.transport.tcp import TcpReceiver, TcpSender


@pytest.fixture
def stack(sim, flow):
    sender = TcpSender(sim, flow, CopaCca())
    receiver = TcpReceiver(sim, flow)
    encoder = VideoEncoder(fps=25, rng=DeterministicRandom(1))
    app = TcpVideoApp(sim, sender, receiver, encoder)
    return sender, receiver, app


def wire(sim, sender, receiver, delay=0.008):
    sender.transmit = (
        lambda p: sim.schedule(delay, lambda pp=p: receiver.on_data(pp)))
    receiver.transmit = (
        lambda p: sim.schedule(delay, lambda pp=p: sender.on_ack(pp)))


class TestTcpVideoApp:
    def test_frames_decode_in_order(self, sim, stack):
        sender, receiver, app = stack
        wire(sim, sender, receiver)
        sim.run(until=2.0)
        assert app.frame_recorder.count >= 40
        times = app.frame_recorder.frame_times
        assert times == sorted(times)

    def test_rate_follows_transport_estimate(self, sim, stack):
        sender, receiver, app = stack
        wire(sim, sender, receiver)
        sim.run(until=1.0)
        expected = min(app.max_rate_bps,
                       max(app.min_rate_bps,
                           sender.estimated_rate_bps() * app.rate_headroom))
        assert app.current_target_bps() == pytest.approx(expected)

    def test_encoder_drops_when_transport_stalls(self, sim, stack):
        sender, receiver, app = stack
        sender.transmit = lambda p: None
        sim.run(until=2.0)
        assert app.frames_dropped_at_encoder > 0
        # Dropped frames are not counted as sent.
        assert app.frames_sent < 50

    def test_stop(self, sim, stack):
        sender, receiver, app = stack
        wire(sim, sender, receiver)
        sim.run(until=0.5)
        app.stop()
        before = app.frames_sent
        sim.run(until=1.0)
        assert app.frames_sent == before


class TestBulkApps:
    def test_bulk_sender_keeps_backlog(self, sim, flow):
        from repro.app.bulk import BulkSenderApp
        sender = TcpSender(sim, flow, CopaCca())
        sent = []
        sender.transmit = sent.append
        BulkSenderApp(sim, sender)
        sim.run(until=0.1)
        assert sender.unlimited
        assert len(sent) > 0

    def test_periodic_bulk_toggles(self, sim, flow):
        from repro.app.bulk import PeriodicBulkApp
        sender = TcpSender(sim, flow, CopaCca())
        sender.transmit = lambda p: None
        app = PeriodicBulkApp(sim, sender, period=1.0)
        assert sender.unlimited
        sim.run(until=1.5)
        assert not sender.unlimited
        sim.run(until=2.5)
        assert sender.unlimited
        app.stop()
        assert not sender.unlimited

    def test_invalid_period(self, sim, flow):
        from repro.app.bulk import PeriodicBulkApp
        sender = TcpSender(sim, flow, CopaCca())
        with pytest.raises(ValueError):
            PeriodicBulkApp(sim, sender, period=0.0)
