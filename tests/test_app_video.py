"""Tests for the video application models."""

import pytest

from repro.app.video import VideoEncoder, _FrameTracker
from repro.sim.random import DeterministicRandom


class TestVideoEncoder:
    def test_average_frame_size_tracks_bitrate(self):
        encoder = VideoEncoder(fps=25, rng=DeterministicRandom(1))
        target = 2e6
        sizes = [encoder.next_frame(i / 25, target).size_bytes
                 for i in range(500)]
        mean_size = sum(sizes) / len(sizes)
        expected = target / 8 / 25
        assert mean_size == pytest.approx(expected, rel=0.15)

    def test_keyframes_periodic_and_larger(self):
        encoder = VideoEncoder(fps=25, rng=DeterministicRandom(1),
                               keyframe_interval=10, keyframe_scale=3.0,
                               size_sigma=0.0)
        frames = [encoder.next_frame(i / 25, 2e6) for i in range(20)]
        assert frames[0].keyframe and frames[10].keyframe
        assert not frames[1].keyframe
        assert frames[0].size_bytes > 2 * frames[1].size_bytes

    def test_frame_ids_increment(self):
        encoder = VideoEncoder(rng=DeterministicRandom(1))
        a = encoder.next_frame(0.0, 1e6)
        b = encoder.next_frame(0.04, 1e6)
        assert b.frame_id == a.frame_id + 1

    def test_minimum_frame_size(self):
        encoder = VideoEncoder(rng=DeterministicRandom(1),
                               min_frame_bytes=400)
        frame = encoder.next_frame(0.0, 1_000.0)  # absurdly low rate
        assert frame.size_bytes >= 400

    def test_invalid_fps(self):
        with pytest.raises(ValueError):
            VideoEncoder(fps=0)


class TestFrameTracker:
    def test_frame_decodes_when_all_packets_arrive(self):
        tracker = _FrameTracker()
        tracker.on_packet(0, 0.0, 3, 0.01)
        tracker.on_packet(0, 0.0, 3, 0.02)
        assert tracker.recorder.count == 0
        tracker.on_packet(0, 0.0, 3, 0.03)
        assert tracker.recorder.count == 1
        assert tracker.recorder.frame_delays[0] == pytest.approx(0.03)

    def test_decode_order_dependency(self):
        tracker = _FrameTracker()
        # Frame 1 complete before frame 0: must wait.
        tracker.on_packet(1, 0.04, 1, 0.05)
        assert tracker.recorder.count == 0
        tracker.on_packet(0, 0.0, 1, 0.06)
        assert tracker.recorder.count == 2
        # Frame 1 decoded at the same instant frame 0 unblocked it.
        assert tracker.recorder.frame_times == [0.06, 0.06]

    def test_skip_missing_frames(self):
        tracker = _FrameTracker()
        tracker.on_packet(2, 0.08, 1, 0.1)
        tracker.skip_missing_before(2, 0.5)
        assert tracker.recorder.count == 1

    def test_skip_does_not_lose_complete_later_frames(self):
        tracker = _FrameTracker()
        tracker.on_packet(1, 0.04, 1, 0.05)
        tracker.on_packet(2, 0.08, 1, 0.09)
        tracker.skip_missing_before(1, 0.5)
        assert tracker.recorder.count == 2
